"""Out-of-core evaluation at million-entity scale: flat RSS, full speed.

Wraps the staged driver (``python -m repro.bench.out_of_core all``) under
pytest.  Each stage runs as its own subprocess so the evaluation stage's
peak RSS is an honest high-water mark, uncontaminated by the generator's
or ingester's allocations.  Asserted claims:

1. **Flat memory** — a sampled evaluation over a 1M-entity graph with
   the mmap backend peaks below ``DEFAULT_CEILING_MB`` resident.  The
   in-memory equivalent (materialised embeddings + dict filter index)
   needs well over a gigabyte, so a regression to materialisation
   cannot clear the ceiling.
2. **Exactness** — at a scale where the in-memory twin is buildable,
   mmap ranks are bitwise-identical to in-memory ranks.
3. **Throughput** — the mmap backend stays within 2x of in-memory at
   the same worker count (warm page cache; in practice it is on par).

The emitted ``BENCH_out_of_core.json`` record feeds the bench gate:
``rss_headroom`` (ceiling / measured peak) and ``throughput_ratio``
gate relatively, ``evaluate_peak_rss_mb`` gates under ``--absolute``.
"""

from __future__ import annotations

from repro.bench.out_of_core import (
    DEFAULT_CEILING_MB,
    DEFAULT_MIN_THROUGHPUT_RATIO,
    build_parser,
    run_all,
)

#: Headline scale: the bench contract's >= 1M entities.
ENTITIES = 1_000_000
TRAIN = 1_500_000
WORKERS = 4
NUM_SAMPLES = 1_000

#: Compare-stage scale (needs an in-memory twin, so deliberately smaller).
COMPARE_ENTITIES = 50_000
COMPARE_TRAIN = 100_000


def test_out_of_core_flat_rss(benchmark, emit, emit_json):
    args = build_parser().parse_args(
        [
            "all",
            "--entities", str(ENTITIES),
            "--train", str(TRAIN),
            "--workers", str(WORKERS),
            "--num-samples", str(NUM_SAMPLES),
            "--ceiling-mb", str(DEFAULT_CEILING_MB),
            "--min-ratio", str(DEFAULT_MIN_THROUGHPUT_RATIO),
            "--compare-entities", str(COMPARE_ENTITIES),
            "--compare-train", str(COMPARE_TRAIN),
        ]
    )
    summary = benchmark.pedantic(run_all, args=(args,), rounds=1, iterations=1)

    # The stage driver already hard-fails on ceiling/ratio breaches;
    # re-assert here so the pytest report names the failing claim.
    assert summary["ranks_equal"], "mmap ranks diverged from in-memory"
    assert summary["evaluate_peak_rss_mb"] <= DEFAULT_CEILING_MB
    assert summary["throughput_ratio"] >= DEFAULT_MIN_THROUGHPUT_RATIO

    rows = [
        {
            "Stage": name,
            "Seconds": stage.get("seconds", "-"),
            "Peak RSS (MB)": stage["peak_rss_mb"],
        }
        for name, stage in summary["stages"].items()
    ]
    from repro.bench import render_table

    emit(
        "out_of_core",
        render_table(
            rows,
            title=(
                f"Out-of-core evaluation: {ENTITIES:,} entities, "
                f"{WORKERS} workers, ceiling {DEFAULT_CEILING_MB:.0f} MB"
            ),
        ),
    )
    emit_json(
        "out_of_core",
        {
            "bench": "bench_out_of_core",
            "entities": ENTITIES,
            "workers": WORKERS,
            "evaluate_peak_rss_mb": summary["evaluate_peak_rss_mb"],
            "rss_headroom": summary["rss_headroom"],
            "queries_per_second": summary["queries_per_second"],
            "throughput_ratio": summary["throughput_ratio"],
            "ranks_equal": summary["ranks_equal"],
        },
        config={
            "entities": ENTITIES,
            "train": TRAIN,
            "workers": WORKERS,
            "num_samples": NUM_SAMPLES,
            "ceiling_mb": DEFAULT_CEILING_MB,
            "min_throughput_ratio": DEFAULT_MIN_THROUGHPUT_RATIO,
            "compare_entities": COMPARE_ENTITIES,
            "compare_train": COMPARE_TRAIN,
            "model": "distmult",
            "dim": 16,
            "dtype": "float32",
        },
    )
