"""Fused analytic training kernels: speed-up, exactness, and float32.

Four claims, all asserted:

1. **Gradient exactness** — for *every* (kernel model, loss) pair, the
   fused analytic gradients match the autodiff engine's to 1e-9 in
   float64 (they agree to ~1e-16; the bound absorbs accumulation-order
   rounding).
2. **Throughput** — on a 5k-entity synthetic graph, a fused float64
   training epoch (ComplEx, the paper's headline model, with its
   canonical softplus loss and the trainer's default Adam) sustains
   >= 4x the epoch throughput of the autodiff path.
3. **Same destination** — fused and autodiff SGD runs from identical
   seeds land on the same final MRR (sparse SGD *is* dense SGD when the
   gradients agree; only ~1e-16 rounding separates the trajectories).
4. **float32** — the reduced-precision fused path finishes within 1e-3
   MRR of its float64 twin (while cutting parameter memory in half).

The measured ratios are persisted to ``benchmarks/results/
BENCH_training.json`` so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import render_table
from repro.core.ranking import evaluate_full
from repro.datasets import SyntheticConfig, generate
from repro.models import Trainer, TrainingConfig, build_model
from repro.models.kernels import autodiff_gradients, available_kernels, fused_gradients

#: Acceptance floor: fused vs autodiff epoch throughput (float64, Adam).
MIN_SPEEDUP = 4.0

#: Gradient equivalence bound (float64, every model x loss pair).
GRAD_TOL = 1e-9

#: float32 vs float64 final-MRR tolerance.
FLOAT32_MRR_TOL = 1e-3

LOSSES = ("margin", "bce", "softplus")

#: The benched training configuration (paper-style: ComplEx + softplus).
MODEL = "complex"
DIM = 64
BATCH_SIZE = 128
NUM_NEGATIVES = 8
EPOCHS = 2

_GRAPH = None


def _graph():
    """The 5k-entity synthetic benchmark graph (built once per process)."""
    global _GRAPH
    if _GRAPH is None:
        _GRAPH = generate(
            SyntheticConfig(
                num_entities=5000, num_relations=20, num_triples=20000, seed=0
            )
        ).graph
    return _GRAPH


def _train(graph, use_fused, optimizer="adam", dtype="float64", loss="softplus"):
    model = build_model(
        MODEL, graph.num_entities, graph.num_relations, dim=DIM, seed=0, dtype=dtype
    )
    config = TrainingConfig(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        num_negatives=NUM_NEGATIVES,
        lr=0.05,
        loss=loss,
        optimizer=optimizer,
        seed=0,
        use_fused=use_fused,
        # Collision filtering is an orthogonal (and identical) cost on
        # both paths; keep the measurement about the training kernels.
        filter_false_negatives=False,
    )
    start = time.perf_counter()
    history = Trainer(config).fit(model, graph)
    seconds = time.perf_counter() - start
    return model, history, seconds / EPOCHS


def test_gradient_equivalence_every_model_and_loss():
    """Claim 1: fused == autodiff to 1e-9 for all (model, loss) pairs."""
    rng = np.random.default_rng(7)
    num_entities, num_relations, b, k = 50, 6, 32, 6
    batch = (
        rng.integers(num_entities, size=b),
        rng.integers(num_relations, size=b),
        rng.integers(num_entities, size=b),
        rng.integers(num_entities, size=(b, k)),
        rng.random(b) < 0.5,
    )
    worst = 0.0
    pairs = 0
    for name in available_kernels():
        variants = [{"norm": 1}, {"norm": 2}] if name == "transe" else [{}]
        for extra in variants:
            model = build_model(name, num_entities, num_relations, dim=8, seed=1, **extra)
            for loss in LOSSES:
                loss_a, grads_a = autodiff_gradients(model, loss, *batch, margin=1.0)
                loss_f, grads_f = fused_gradients(model, loss, *batch, margin=1.0)
                assert abs(loss_a - loss_f) <= GRAD_TOL, (name, loss)
                for key in grads_a:
                    diff = float(np.abs(grads_a[key] - grads_f[key]).max())
                    worst = max(worst, diff)
                    assert diff <= GRAD_TOL, f"{name}/{loss}/{key}: {diff:.3e}"
                pairs += 1
    assert pairs >= len(available_kernels()) * len(LOSSES)
    print(f"\n{pairs} (model, loss) pairs; worst gradient difference {worst:.2e}")


def test_training_speedup_and_metric_parity(emit, emit_json):
    """Claims 2-4: >= 4x epoch throughput, same MRR, float32 within 1e-3."""
    graph = _graph()
    triples_per_epoch = len(graph.train)

    # -- Throughput: the trainer's default Adam, float64. ---------------
    _, _, fused_epoch = _train(graph, use_fused=True)
    _, _, auto_epoch = _train(graph, use_fused=False)
    speedup = auto_epoch / fused_epoch

    # -- Destination parity: SGD, where sparse == dense exactly. --------
    sgd_fused_model, fused_history, _ = _train(graph, True, optimizer="sgd")
    sgd_auto_model, auto_history, _ = _train(graph, False, optimizer="sgd")
    mrr_fused = evaluate_full(sgd_fused_model, graph).metrics.mrr
    mrr_auto = evaluate_full(sgd_auto_model, graph).metrics.mrr

    # -- float32 vs float64 on the fused path. --------------------------
    f32_model, _, f32_epoch = _train(graph, True, dtype="float32")
    f64_model, _, _ = _train(graph, True)
    mrr_f32 = evaluate_full(f32_model, graph).metrics.mrr
    mrr_f64 = evaluate_full(f64_model, graph).metrics.mrr

    rows = [
        {
            "Path": "autodiff (graph + dense grads)",
            "s/epoch": round(auto_epoch, 3),
            "Triples/s": round(triples_per_epoch / auto_epoch),
            "Speed-up": 1.0,
        },
        {
            "Path": "fused kernels (sparse rows)",
            "s/epoch": round(fused_epoch, 3),
            "Triples/s": round(triples_per_epoch / fused_epoch),
            "Speed-up": round(speedup, 2),
        },
        {
            "Path": "fused kernels, float32",
            "s/epoch": round(f32_epoch, 3),
            "Triples/s": round(triples_per_epoch / f32_epoch),
            "Speed-up": round(auto_epoch / f32_epoch, 2),
        },
    ]
    emit(
        "training_speedup",
        render_table(
            rows,
            title=(
                f"Fused training kernels: {MODEL} dim={DIM} on {graph.name} "
                f"(|E|={graph.num_entities}, {triples_per_epoch} train triples, "
                f"batch {BATCH_SIZE}, {NUM_NEGATIVES} negatives, adam)"
            ),
        ),
    )
    emit_json(
        "training",
        {
            "bench": "bench_training",
            "model": MODEL,
            "dim": DIM,
            "batch_size": BATCH_SIZE,
            "num_entities": graph.num_entities,
            "train_triples": triples_per_epoch,
            "autodiff_seconds_per_epoch": auto_epoch,
            "fused_seconds_per_epoch": fused_epoch,
            "fused_float32_seconds_per_epoch": f32_epoch,
            "speedup_fused_vs_autodiff": speedup,
            "speedup_float32_vs_autodiff": auto_epoch / f32_epoch,
            "min_speedup_asserted": MIN_SPEEDUP,
            "mrr_sgd_fused": mrr_fused,
            "mrr_sgd_autodiff": mrr_auto,
            "mrr_float32": mrr_f32,
            "mrr_float64": mrr_f64,
        },
        config={
            "model": MODEL,
            "dim": DIM,
            "batch_size": BATCH_SIZE,
            "num_negatives": NUM_NEGATIVES,
            "epochs": EPOCHS,
            "num_entities": 5000,
            "num_triples": 20000,
        },
    )

    assert np.array_equal(fused_history.losses, auto_history.losses) or np.allclose(
        fused_history.losses, auto_history.losses, atol=1e-9
    )
    assert abs(mrr_fused - mrr_auto) <= 1e-3, (mrr_fused, mrr_auto)
    assert abs(mrr_f32 - mrr_f64) <= FLOAT32_MRR_TOL, (mrr_f32, mrr_f64)
    assert speedup >= MIN_SPEEDUP, (
        f"fused path only {speedup:.2f}x faster (floor {MIN_SPEEDUP}x); "
        f"autodiff {auto_epoch:.3f}s vs fused {fused_epoch:.3f}s per epoch"
    )


def test_tracing_overhead_under_five_percent():
    """Enabled span tracing costs <5% of a fused training epoch.

    The tracer's spans sit permanently in ``Trainer.fit``'s hot loop, so
    this is the acceptance bound that keeps them there.  Losses must
    also match bitwise — tracing never touches the RNG stream.  The
    median of three runs per side absorbs scheduler noise; the bound
    gets a small absolute slack for the same reason.
    """
    from repro.obs import set_tracing

    graph = _graph()

    def epochs(samples=3):
        return sorted(_train(graph, use_fused=True)[2] for _ in range(samples))[1]

    set_tracing(False)
    _, baseline_history, _ = _train(graph, use_fused=True)
    baseline = epochs()
    try:
        set_tracing(True)
        _, traced_history, _ = _train(graph, use_fused=True)
        traced = epochs()
    finally:
        set_tracing(False)

    assert np.array_equal(baseline_history.losses, traced_history.losses), (
        "tracing must not perturb training"
    )
    assert traced <= baseline * 1.05 + 0.02, (
        f"tracing overhead too high: {traced:.4f}s vs {baseline:.4f}s per epoch "
        f"({traced / baseline - 1:+.1%})"
    )
    print(
        f"\ntracing overhead: {traced / baseline - 1:+.2%} "
        f"({baseline:.4f}s -> {traced:.4f}s per epoch)"
    )


def test_fallback_models_unchanged():
    """ConvE (no kernel) trains bit-identically with use_fused on or off."""
    graph = generate(
        SyntheticConfig(num_entities=300, num_relations=6, num_triples=1500, seed=1)
    ).graph

    def run(use_fused):
        model = build_model("conve", graph.num_entities, graph.num_relations, dim=16, seed=0)
        Trainer(
            TrainingConfig(epochs=1, loss="bce", seed=0, use_fused=use_fused)
        ).fit(model, graph)
        return model.entity.data

    np.testing.assert_array_equal(run(True), run(False))
