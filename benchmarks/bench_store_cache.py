"""Experiment-store cache-hit speed-up: the warm-rerun headline.

The store's promise is that re-running a study (same dataset, model and
hyperparameters) costs an artifact load, not a retrain: no trainer
epochs, no pool construction, no full-ranking recomputation.  This bench
measures exactly that — one cold ``run_training_study`` into a fresh
store, then the identical call warm — and asserts the ≥ 5x acceptance
floor (in practice the hit is orders of magnitude faster).
"""

import time

from repro.bench import render_table, run_training_study
from repro.store import ExperimentStore

#: Acceptance floor for the warm/cold wall-clock ratio.
MIN_SPEEDUP = 5.0


def test_store_cache_speedup(benchmark, emit, tmp_path):
    store = ExperimentStore(tmp_path / "store")
    config = dict(
        dataset_name="codex-s-lite",
        model_name="distmult",
        epochs=3,
        dim=16,
        sample_fraction=0.1,
        with_kp=True,
        kp_triples=150,
        seed=0,
    )

    start = time.perf_counter()
    cold_study = run_training_study(**config, store=store)
    cold_seconds = time.perf_counter() - start

    def warm_run():
        return run_training_study(**config, store=store)

    warm_study = benchmark.pedantic(warm_run, rounds=1, iterations=1)
    warm_seconds = max(benchmark.stats.stats.mean, 1e-9)
    speedup = cold_seconds / warm_seconds

    rows = [
        {
            "Run": "cold (train + full eval)",
            "Seconds": round(cold_seconds, 3),
            "Trainer epochs": config["epochs"],
        },
        {
            "Run": "warm (store hit)",
            "Seconds": round(warm_seconds, 5),
            "Trainer epochs": 0,
        },
        {"Run": "speed-up (x)", "Seconds": round(speedup, 1), "Trainer epochs": ""},
    ]
    emit(
        "store_cache_speedup",
        render_table(rows, title="Experiment-store warm-rerun speed-up"),
    )

    # The warm study must be the same study, not merely a fast one.
    assert [r.true_metrics.mrr for r in warm_study.records] == [
        r.true_metrics.mrr for r in cold_study.records
    ]
    journal = store.journal.records()
    assert [r.cache_hit for r in journal if r.kind == "training_study"] == [False, True]
    assert speedup >= MIN_SPEEDUP


def test_store_shares_pools_across_models(emit, tmp_path):
    """A second model on the same dataset reuses the cached pools."""
    store = ExperimentStore(tmp_path / "store")
    common = dict(
        dataset_name="codex-s-lite",
        epochs=1,
        dim=8,
        sample_fraction=0.1,
        with_kp=False,
        seed=0,
    )
    run_training_study(model_name="distmult", **common, store=store)
    pool_artifacts = [e for e in store.artifacts.entries() if e.kind == "pools"]
    run_training_study(model_name="transe", **common, store=store)
    pool_artifacts_after = [e for e in store.artifacts.entries() if e.kind == "pools"]

    # Three strategies' pools, built once, shared by both studies.
    assert len(pool_artifacts) == 3
    assert [e.key for e in pool_artifacts] == [e.key for e in pool_artifacts_after]
    emit(
        "store_shared_pools",
        render_table(
            [e.as_row() for e in pool_artifacts_after],
            title="Pools shared across same-dataset studies",
        ),
    )
