"""Extension (§7): ROC-AUC / AUC-PR against random vs hard negatives.

The paper's future-work proposal, motivated by Safavi & Koutra's CoDEx
finding: triple classification against random negatives is a nearly
solved task, so AUC numbers measured that way flatter the model.  Shape:
the same model's AUC drops substantially when negatives come from the
recommender-guided pools, and the drop widens for weaker models.
"""

import numpy as np

from repro.bench import render_table
from repro.core import build_pools, estimate_auc
from repro.datasets import load
from repro.models import OracleModel
from repro.recommenders import build_recommender


def run_auc_extension():
    dataset = load("codex-m-lite")
    graph = dataset.graph
    fitted = build_recommender("l-wd").fit(graph)
    pools = build_pools(
        graph,
        "probabilistic",
        rng=np.random.default_rng(0),
        sample_fraction=0.2,
        fitted=fitted,
    )
    rows = []
    for skill, label in ((0.0, "weak model"), (2.0, "strong model")):
        model = OracleModel(graph, skill=skill, seed=0)
        easy = estimate_auc(model, graph, pools=None, seed=1)
        hard = estimate_auc(model, graph, pools=pools, seed=1)
        rows.append(
            {
                "Model": label,
                "ROC-AUC (random negs)": round(easy.roc_auc, 3),
                "ROC-AUC (guided negs)": round(hard.roc_auc, 3),
                "AUC-PR (random negs)": round(easy.average_precision, 3),
                "AUC-PR (guided negs)": round(hard.average_precision, 3),
            }
        )
    return rows


def test_extension_auc_hard_negatives(benchmark, emit):
    rows = benchmark.pedantic(run_auc_extension, rounds=1, iterations=1)
    emit(
        "extension_auc",
        render_table(
            rows, title="Extension (§7): AUC against random vs guided negatives"
        ),
    )
    for row in rows:
        # Guided negatives are consistently harder on both AUC flavours.
        assert row["ROC-AUC (guided negs)"] < row["ROC-AUC (random negs)"], row
        assert row["AUC-PR (guided negs)"] < row["AUC-PR (random negs)"], row
    # Random-negative AUC is inflated to near-ceiling even for the weak model
    # (Safavi & Koutra's "nearly solved task" observation).
    weak = rows[0]
    assert weak["ROC-AUC (random negs)"] > 0.9
    assert weak["ROC-AUC (guided negs)"] < weak["ROC-AUC (random negs)"] - 0.01
