"""Table 6 / Table 15: MAE of the estimated filtered metrics per strategy.

Paper shape: Random's MAE is one to two orders of magnitude larger than
Probabilistic/Static on every (dataset, model) pair; Static is usually the
best absolute estimator.  MAEs are measured against the true filtered
validation metrics across training epochs.
"""

from repro.bench import render_table, table6_mae


def test_table6_mae_mrr(benchmark, emit, studies):
    rows = benchmark.pedantic(table6_mae, args=(studies,), rounds=1, iterations=1)
    emit(
        "table6_mae",
        render_table(rows, title="Table 6: MAE of estimated filtered MRR (R / P / S)"),
    )
    for row in rows:
        assert row["R"] > row["P"], row
        assert row["R"] > row["S"], row


def test_table15_mae_hits(benchmark, emit, studies):
    sections = []
    for metric in ("hits@1", "hits@3", "hits@10"):
        rows = table6_mae(studies, metric=metric)
        sections.append(
            render_table(rows, title=f"Table 15 ({metric}): MAE of estimates")
        )
        for row in rows:
            assert row["R"] >= row["P"] or row["R"] >= row["S"], (metric, row)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("table15_mae_hits", "\n\n".join(sections))
