"""Tables 7 / 12 / 13 / 14: Pearson correlation with the true metrics.

Paper shape: rank estimates correlate > 0.95 almost everywhere; KP's
correlation is unstable — sometimes high, sometimes near zero or negative
— which is exactly the argument for estimating ranks instead of proxies.
"""

import numpy as np

from repro.bench import render_table, table7_correlation


def test_table7_correlation_mrr(benchmark, emit, studies):
    rows = benchmark.pedantic(table7_correlation, args=(studies,), rounds=1, iterations=1)
    emit(
        "table7_correlation",
        render_table(rows, title="Table 7: Pearson correlation with true filtered MRR"),
    )
    rank_correlations = [row[f"Rank {s}"] for row in rows for s in ("P", "S")]
    kp_correlations = [row[f"KP {s}"] for row in rows for s in ("R", "P", "S")]
    # Guided rank estimates track the truth tightly on average...
    assert float(np.mean(rank_correlations)) > 0.8
    # ... and are more stable than KP (higher worst case).
    assert min(rank_correlations) > min(kp_correlations) - 1e-9


def test_tables12_to_14_hits_correlations(benchmark, emit, studies):
    sections = []
    for metric in ("hits@1", "hits@3", "hits@10"):
        rows = table7_correlation(studies, metric=metric)
        sections.append(
            render_table(rows, title=f"Correlation with true filtered {metric}")
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    emit("tables12_14_hits_correlation", "\n\n".join(sections))
