"""Benchmark fixtures: result emission and the shared training-study cache.

Benchmarks print their paper-style tables *and* persist them under
``benchmarks/results/`` so a run leaves a durable reproduction record
(``EXPERIMENTS.md`` quotes those files).  Speed-up benches additionally
write machine-readable ``BENCH_<name>.json`` records (the ``emit_json``
fixture) so the perf trajectory is trackable across PRs.

The training studies behind Tables 6-9 are expensive (train a model,
evaluate it fully every epoch), so they are computed once per pytest
process and shared by every bench that consumes them — and routed through
a persistent :class:`repro.store.ExperimentStore` under
``benchmarks/results/store``, so a *re-run* of the suite (same code, same
configs) reloads every study from the artifact cache instead of
retraining, and the fig/table benches share pools and ground truths.
Delete that directory (or run ``repro cache gc``) to force a cold run.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from pathlib import Path

import pytest

from repro.bench import run_training_study, stamp_bench_record
from repro.store import ExperimentStore

RESULTS_DIR = Path(__file__).parent / "results"

#: Where BENCH_*.json perf records land; the CI gate redirects fresh
#: candidate records away from the committed baselines with this.
BENCH_RESULTS_DIR = Path(os.environ.get("REPRO_BENCH_RESULTS", RESULTS_DIR))

#: The persistent store every benchmark study goes through.
STORE = ExperimentStore(RESULTS_DIR / "store")

#: The (dataset, model) grid the correlation/MAE/speed-up benches train.
STUDY_GRID: tuple[tuple[str, str], ...] = (
    ("codex-s-lite", "transe"),
    ("codex-s-lite", "distmult"),
    ("codex-s-lite", "complex"),
    ("codex-s-lite", "rescal"),
    ("codex-m-lite", "complex"),
    ("codex-m-lite", "conve"),
)

STUDY_EPOCHS = 6


@lru_cache(maxsize=None)
def _study(dataset_name: str, model_name: str):
    return run_training_study(
        dataset_name,
        model_name,
        epochs=STUDY_EPOCHS,
        dim=16,
        sample_fraction=0.1,
        with_kp=True,
        kp_triples=150,
        seed=0,
        store=STORE,
    )


@pytest.fixture(scope="session")
def studies():
    """All grid studies (trained lazily, cached for the whole session)."""
    return [_study(dataset, model) for dataset, model in STUDY_GRID]


@pytest.fixture(scope="session")
def codex_s_studies():
    """The >= 3-model single-dataset slice Table 8 needs."""
    return [
        _study(dataset, model)
        for dataset, model in STUDY_GRID
        if dataset == "codex-s-lite"
    ]


@pytest.fixture
def emit():
    """Print a rendered table and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n")

    return _emit


def _jsonable(value):
    """numpy scalars/arrays -> plain Python for json.dumps."""
    if hasattr(value, "item") and getattr(value, "size", 1) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"not JSON-serialisable: {type(value)!r}")


@pytest.fixture
def emit_json():
    """Persist a machine-readable perf record as BENCH_<name>.json.

    Records are stamped (schema version, timestamp, config fingerprint
    when the bench passes ``config=``) and land in ``BENCH_RESULTS_DIR``
    — ``benchmarks/results/`` unless ``$REPRO_BENCH_RESULTS`` redirects
    them (the CI gate's candidate directory).
    """

    def _emit(name: str, payload: dict, config: dict | None = None) -> None:
        BENCH_RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = BENCH_RESULTS_DIR / f"BENCH_{name}.json"
        stamped = stamp_bench_record(payload, config=config)
        path.write_text(
            json.dumps(stamped, indent=2, sort_keys=True, default=_jsonable) + "\n",
            encoding="utf-8",
        )
        print(f"\n[perf record] {path}")

    return _emit
