"""Tables 9 / 11: evaluation speed-up over the full filtered ranking.

Paper shape: small datasets leave little room (2-8x, sometimes < 1 for
KP variants); the wikikg2 column reaches two orders of magnitude.  The
scale trend is benched separately in fig3a; here we reproduce the
per-(dataset, model) table on the training studies plus one large-scale
row measured directly.
"""

import time

import numpy as np

from repro.bench import render_table, table9_speedup
from repro.core import EvaluationProtocol
from repro.datasets import load
from repro.models import build_model


def test_table9_speedup_small_datasets(benchmark, emit, emit_json, studies):
    rows = benchmark.pedantic(table9_speedup, args=(studies,), rounds=1, iterations=1)
    emit(
        "table9_speedup",
        render_table(rows, title="Table 9: evaluation speed-up vs full ranking"),
    )
    emit_json(
        "table9_speedup",
        {"bench": "bench_table9_speedup", "rows": rows},
    )
    assert len(rows) == len(studies)


def test_table9_large_scale_row(benchmark, emit):
    """The ogbl-wikikg2 column: speed-up grows with scale."""

    def measure():
        results = []
        for name, fraction in (("wikikg2-lite", 0.02), ("wikikg2-xl", 0.02)):
            graph = load(name).graph
            model = build_model("complex", graph.num_entities, graph.num_relations, dim=32)
            protocol = EvaluationProtocol(
                graph, strategy="probabilistic", sample_fraction=fraction, seed=0
            )
            protocol.prepare()
            start = time.perf_counter()
            sampled = protocol.evaluate(model)
            sampled_seconds = time.perf_counter() - start
            start = time.perf_counter()
            protocol.evaluate_full(model)
            full_seconds = time.perf_counter() - start
            results.append(
                {
                    "Dataset": name,
                    "|E|": graph.num_entities,
                    "Full eval (s)": round(full_seconds, 2),
                    "Sampled (s)": round(sampled_seconds, 3),
                    "Speed-up (x)": round(full_seconds / sampled_seconds, 1),
                }
            )
        return results

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(
        "table9_large_scale",
        render_table(rows, title="Table 9 (large-scale): probabilistic @ 2% of |E|"),
    )
    speedups = [row["Speed-up (x)"] for row in rows]
    assert all(s > 2.0 for s in speedups)
    assert speedups[-1] > speedups[0]  # grows with |E|
