"""Table 4: statistics of every zoo dataset (the paper's dataset table)."""

from repro.bench import render_table, table4_dataset_statistics


def test_table4_dataset_statistics(benchmark, emit):
    rows = benchmark.pedantic(table4_dataset_statistics, rounds=1, iterations=1)
    emit(
        "table4_dataset_statistics",
        render_table(rows, title="Table 4: zoo dataset statistics"),
    )
    assert len(rows) == 8
    for row in rows:
        assert row["Train"] > 0 and row["Test"] > 0
        assert row["|TS|"] >= row["|E|"]  # every entity carries >= 1 type
