"""Table 8: Kendall-tau of the model ordering per epoch.

Paper shape: Static > Probabilistic > Random at preserving which model is
currently best; KP's ordering power is far weaker.  Needs >= 3 models
trained on one dataset (the codex-s-lite slice of the study grid).
"""

from repro.bench import render_table, table8_kendall


def test_table8_kendall(benchmark, emit, codex_s_studies):
    rows = benchmark.pedantic(
        table8_kendall, args=(codex_s_studies,), rounds=1, iterations=1
    )
    emit(
        "table8_kendall",
        render_table(rows, title="Table 8: mean Kendall-tau of model ordering"),
    )
    row = rows[0]
    assert row["Models"] >= 3
    # Rank estimates preserve a clearly positive model ordering throughout;
    # with four near-tied models a tau of ~0.5-1.0 matches the paper's range.
    for label in ("Rank R", "Rank P", "Rank S"):
        assert row[label] > 0.3, label
