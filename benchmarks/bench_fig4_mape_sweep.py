"""Figures 4 / 5: MAPE of the estimate vs max sample size, per recommender.

Paper shape: all recommenders' MAPE falls toward 0 as the sample grows;
PT is the recommender most likely to flatten above 0 (it cannot cover
unseen candidates); the curves are otherwise close together — "good
enough" recommenders all estimate similarly (the paper's Section 6
observation).
"""

from repro.bench import fig4_mape_sweep, render_series

RECOMMENDERS = ("pt", "dbh-t", "l-wd", "l-wd-t", "ontosim", "pie")
FRACTIONS = (0.01, 0.05, 0.1, 0.2, 0.3)


def _render(result):
    series = {
        name: [interval.mean for interval in curve]
        for name, curve in result.mape_by_recommender.items()
    }
    series_ci = {
        f"{name} ±": [interval.half_width for interval in curve]
        for name, curve in result.mape_by_recommender.items()
    }
    return render_series(
        result.fractions,
        {**series, **series_ci},
        x_label="sample fraction",
        title=f"Figure 4: MAPE (%) vs sample size, {result.dataset_name} "
        f"(true MRR = {result.true_value:.3f})",
    )


def test_fig4_mape_sweep_fb15k237(benchmark, emit):
    result = benchmark.pedantic(
        fig4_mape_sweep,
        kwargs={
            "dataset_name": "fb15k237-lite",
            "recommender_names": RECOMMENDERS,
            "fractions": FRACTIONS,
            "repeats": 3,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig4_mape_fb15k237", _render(result))
    for name, curve in result.mape_by_recommender.items():
        assert curve[0].mean > curve[-1].mean, name  # MAPE falls with n_s
    # At the largest sample, every recommender estimates within ~15%.
    assert all(curve[-1].mean < 15.0 for curve in result.mape_by_recommender.values())


def test_fig5_mape_sweep_codex_m(benchmark, emit):
    result = benchmark.pedantic(
        fig4_mape_sweep,
        kwargs={
            "dataset_name": "codex-m-lite",
            "recommender_names": RECOMMENDERS,
            "fractions": FRACTIONS,
            "repeats": 3,
        },
        rounds=1,
        iterations=1,
    )
    emit("fig5_mape_codex_m", _render(result))
    for name, curve in result.mape_by_recommender.items():
        assert curve[0].mean > curve[-1].mean, name
