"""Table 2 + Table 10: easy-negative mining with L-WD.

Paper: 58.4% / 43.2% / 5.42% of slots are easy negatives on FB15k-237 /
YAGO3-10 / ogbl-wikikg2, with only a handful of false easy negatives —
all curation errors.  Expected shape here: a large easy mass on every
dataset (largest on the FB-style modular graphs), false negatives in the
single digits, and each false negative a signature-violating noise triple.
"""

from repro.bench import render_table, table2_easy_negatives, table10_false_negative_audit

DATASETS = ("fb15k237-lite", "yago310-lite", "wikikg2-lite")


def test_table2_easy_negatives(benchmark, emit):
    rows, reports = benchmark.pedantic(
        table2_easy_negatives, args=(DATASETS,), rounds=1, iterations=1
    )
    table2 = render_table(rows, title="Table 2: easy negatives mined with L-WD")
    audit = render_table(
        table10_false_negative_audit(reports),
        title="Table 10: all false easy negatives (labelled)",
    )
    emit("table2_easy_negatives", table2 + "\n\n" + audit)
    for row in rows:
        assert row["Easy negatives (%)"] > 20.0
        assert row["False easy negatives"] <= 10
