"""Figure 3b + Figure 6: estimated metric vs sample size on wikikg2-lite.

Paper shape: Random converges to the true value only as the sample
approaches |E| and over-estimates badly below that; Probabilistic and
Static land near the truth already at ~2% and coincide with it by ~10-20%.
The same pattern holds for Hits@1/3/10 (Figure 6).
"""

from repro.bench import fig3b_metric_vs_samples, render_series

FRACTIONS = (0.01, 0.02, 0.05, 0.1, 0.2)


def _check_and_render(result):
    random_err = [abs(v - result.true_value) for v in result.estimates_by_strategy["random"]]
    static_err = [abs(v - result.true_value) for v in result.estimates_by_strategy["static"]]
    prob_err = [
        abs(v - result.true_value) for v in result.estimates_by_strategy["probabilistic"]
    ]
    for i in range(len(FRACTIONS)):
        assert random_err[i] > static_err[i], (result.metric, FRACTIONS[i])
        assert random_err[i] > prob_err[i], (result.metric, FRACTIONS[i])
    # Guided estimates are within a few percent of the truth by 20%.
    assert static_err[-1] < 0.05
    series = dict(result.estimates_by_strategy)
    series["true (flat line)"] = [result.true_value] * len(FRACTIONS)
    return render_series(
        result.fractions,
        series,
        x_label="sample fraction",
        title=f"Figure {'3b' if result.metric == 'mrr' else '6'}: "
        f"estimated {result.metric} vs sample size, wikikg2-lite "
        f"(true = {result.true_value:.3f})",
    )


def test_fig3b_mrr_vs_samples(benchmark, emit):
    result = benchmark.pedantic(
        fig3b_metric_vs_samples,
        kwargs={"dataset_name": "wikikg2-lite", "fractions": FRACTIONS, "metric": "mrr"},
        rounds=1,
        iterations=1,
    )
    emit("fig3b_mrr_vs_samples", _check_and_render(result))


def test_fig6_hits_vs_samples(benchmark, emit):
    sections = []

    def sweep_all():
        return [
            fig3b_metric_vs_samples(
                dataset_name="wikikg2-lite", fractions=FRACTIONS, metric=metric
            )
            for metric in ("hits@1", "hits@3", "hits@10")
        ]

    results = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    for result in results:
        sections.append(_check_and_render(result))
    emit("fig6_hits_vs_samples", "\n\n".join(sections))
