"""Table 5: CR (Test/Unseen), RR and fit runtime for every recommender.

Paper shape: PT's CR Unseen is exactly 0; OntoSim has the best recall and
the worst reduction rate; L-WD matches or beats the learned PIE at a tiny
fraction of its fit time; the typed variants edge out their type-free
counterparts when types are clean.
"""

from repro.bench import render_table, table5_recommenders

DATASETS = ("fb15k237-lite", "yago310-lite", "wikikg2-lite")
RECOMMENDERS = ("pt", "dbh-t", "ontosim", "pie", "l-wd", "l-wd-t")


def test_table5_recommenders(benchmark, emit):
    rows = benchmark.pedantic(
        table5_recommenders, args=(DATASETS, RECOMMENDERS), rounds=1, iterations=1
    )
    emit(
        "table5_recommenders",
        render_table(rows, title="Table 5: candidate recall / reduction rate / runtime"),
    )
    by_key = {(row["Dataset"], row["Model"]): row for row in rows}
    for dataset in DATASETS:
        pt = by_key[(dataset, "pt")]
        lwd = by_key[(dataset, "l-wd")]
        pie = by_key[(dataset, "pie")]
        onto = by_key[(dataset, "ontosim")]
        assert pt["CR Unseen"] == 0.0
        assert lwd["CR Unseen"] > 0.0
        assert onto["CR Test"] >= pt["CR Test"]
        # The learned model costs orders of magnitude more fit time.
        assert pie["Runtime (s)"] > 10 * max(lwd["Runtime (s)"], 1e-4)
