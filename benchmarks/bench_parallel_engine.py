"""Parallel evaluation engine: speed-up floors and exactness guarantee.

Three claims, all asserted:

1. **Exactness** — ``workers=4`` produces bitwise-identical per-query
   ranks (and therefore identical metrics) to the serial path, on the
   full protocol and the sampled estimator alike, over both transports.
   Parallelism is purely an execution knob.
2. **Concurrency** — with a scoring backend whose per-batch latency
   dominates (the regime the engine exists for: million-entity score
   matrices, models served from an accelerator or a remote process), 4
   workers complete the same chunk schedule >= 2x faster than 1.  The
   latency-bound scorer pins the per-batch cost to a fixed,
   hardware-independent floor, so the asserted ratio measures the
   engine's chunk fan-out rather than how many idle cores this
   particular machine happens to have.
3. **CPU-bound transport win** — ``cpu_bound_speedup`` is the ratio of
   the legacy pickle transport's 4-worker wall time to the shared-memory
   transport's steady-state 4-worker wall time on pure-numpy scoring,
   both under the **spawn** start method (the only one every platform
   has, and the one where the legacy transport's serialisation cost is
   fully visible: spawn re-pickles the whole state at every pool start,
   while the shm transport publishes it once and reuses a persistent
   pool).  Floor: >= 2x.  The same ratio under fork — where the legacy
   path hides most pickling behind copy-on-write inheritance and shm's
   win shrinks to per-run pool churn — is reported
   (``cpu_bound_speedup_fork``) but not asserted.

   Measured honestly: this container is single-core, so parallel-vs-
   serial scaling of genuinely CPU-bound work is physically ~1x here and
   is reported (``cpu_bound_parallel_vs_serial``) but not asserted — it
   is a fact about the host, not the engine.  What the engine *can* win
   on any host is the transport overhead, and that is what the floor
   pins.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench import LatencyBoundScorer, render_table
from repro.core.ranking import evaluate_full
from repro.core.estimators import evaluate_sampled
from repro.core.protocol import EvaluationProtocol
from repro.datasets import SyntheticConfig, generate
from repro.engine import shutdown_engine_pools
from repro.models import build_model
from repro.obs import get_registry
from repro.obs.top import scrape, sum_family

#: Acceptance floors, both at 4 workers: latency-bound fan-out vs 1
#: worker, and shm transport vs legacy pickle transport on CPU-bound work.
MIN_SPEEDUP = 2.0

WORKERS = 4
CHUNK_SIZE = 64

#: Emulated per-batch scoring latency (seconds).  20 ms is the order of a
#: single large-graph score-matrix slab or one RPC to a scoring service.
BATCH_LATENCY = 0.02


def _large_synthetic():
    """A synthetic large graph: ~3.8k entities, ~1.8k test queries."""
    config = SyntheticConfig(
        num_entities=4000,
        num_relations=24,
        num_types=8,
        num_triples=24000,
        num_communities=3,
        seed=7,
        name="engine-bench",
    )
    return generate(config)


def _timed_full(model, graph, **kwargs):
    """One ``evaluate_full`` plus its wall time (the run's own clock)."""
    start = time.perf_counter()
    result = evaluate_full(model, graph, chunk_size=CHUNK_SIZE, **kwargs)
    return result, time.perf_counter() - start


def test_parallel_engine_speedup(emit, emit_json):
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "distmult", graph.num_entities, graph.num_relations, dim=32, seed=0
    )
    graph.filter_index  # noqa: B018 — warm once, outside every timed region

    # -- Exactness: serial, shm and pickle transports agree bit for bit. -
    serial, serial_seconds = _timed_full(model, graph, workers=1)
    warmup, _ = _timed_full(
        model, graph, workers=WORKERS, transport="shm", start_method="spawn"
    )
    assert warmup.ranks == serial.ranks  # cold shm run (pays pool + publish)
    shm, shm_seconds = _timed_full(
        model, graph, workers=WORKERS, transport="shm", start_method="spawn"
    )
    legacy, legacy_seconds = _timed_full(
        model, graph, workers=WORKERS, transport="pickle", start_method="spawn"
    )
    assert shm.ranks == serial.ranks
    assert shm.metrics == serial.metrics
    assert legacy.ranks == serial.ranks
    cpu_transport_speedup = legacy_seconds / max(shm_seconds, 1e-9)
    cpu_parallel_vs_serial = serial_seconds / max(shm_seconds, 1e-9)

    # The same comparison under fork, where copy-on-write inheritance
    # hides most of the legacy transport's pickling (reported, not gated).
    fork_warmup, _ = _timed_full(model, graph, workers=WORKERS, transport="shm")
    _, shm_fork_seconds = _timed_full(model, graph, workers=WORKERS, transport="shm")
    fork_legacy, legacy_fork_seconds = _timed_full(
        model, graph, workers=WORKERS, transport="pickle"
    )
    assert fork_warmup.ranks == serial.ranks
    assert fork_legacy.ranks == serial.ranks
    cpu_fork_speedup = legacy_fork_seconds / max(shm_fork_seconds, 1e-9)

    # -- Concurrency: latency-bound scorer, the engine's target regime. -
    throttled = LatencyBoundScorer(model, delay=BATCH_LATENCY)
    slow_serial, slow_serial_seconds = _timed_full(throttled, graph, workers=1)
    slow_parallel, slow_parallel_seconds = _timed_full(
        throttled, graph, workers=WORKERS
    )
    assert slow_parallel.ranks == slow_serial.ranks
    assert slow_serial.ranks == serial.ranks  # the wrapper changes nothing
    latency_speedup = slow_serial_seconds / max(slow_parallel_seconds, 1e-9)

    rows = [
        {
            "Regime": "latency-bound (20 ms/batch), 4 workers vs 1",
            "Baseline (s)": round(slow_serial_seconds, 2),
            "Engine (s)": round(slow_parallel_seconds, 2),
            "Speed-up": round(latency_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Regime": "CPU-bound numpy, shm vs pickle transport (spawn)",
            "Baseline (s)": round(legacy_seconds, 2),
            "Engine (s)": round(shm_seconds, 2),
            "Speed-up": round(cpu_transport_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Regime": "CPU-bound numpy, shm vs pickle transport (fork)",
            "Baseline (s)": round(legacy_fork_seconds, 2),
            "Engine (s)": round(shm_fork_seconds, 2),
            "Speed-up": round(cpu_fork_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Regime": "CPU-bound numpy, 4 shm workers vs serial (informational)",
            "Baseline (s)": round(serial_seconds, 2),
            "Engine (s)": round(shm_seconds, 2),
            "Speed-up": round(cpu_parallel_vs_serial, 2),
            "Ranks equal": "yes",
        },
    ]
    emit(
        "parallel_engine",
        render_table(
            rows,
            title=(
                f"Parallel engine, full ranking of {graph.name} "
                f"({graph.num_entities} entities, {2 * len(graph.test)} queries)"
            ),
        ),
    )
    emit_json(
        "parallel_engine",
        {
            "bench": "bench_parallel_engine",
            "workers": WORKERS,
            "latency_bound_speedup": latency_speedup,
            "cpu_bound_speedup": cpu_transport_speedup,
            "cpu_bound_speedup_fork": cpu_fork_speedup,
            "cpu_bound_parallel_vs_serial": cpu_parallel_vs_serial,
            "min_speedup_asserted": MIN_SPEEDUP,
            "ranks_equal": True,
        },
        config={
            "workers": WORKERS,
            "chunk_size": CHUNK_SIZE,
            "batch_latency": BATCH_LATENCY,
            "model": "distmult",
            "dim": 32,
            "cpu_bound_speedup_definition": (
                "pickle-transport seconds / shm-transport steady-state "
                "seconds, both at 4 workers under the spawn start method"
            ),
        },
    )
    assert latency_speedup >= MIN_SPEEDUP
    assert cpu_transport_speedup >= MIN_SPEEDUP
    shutdown_engine_pools()  # leave no pool (or segment) behind for later benches


#: Telemetry acceptance: a traced steady-state run may cost at most 5%
#: over the untraced run (plus a small absolute slack for timer noise),
#: and the workers' merged busy seconds must account for >= 80% of the
#: run's wall time — proof the spans measure where the time really goes.
TELEMETRY_OVERHEAD_FACTOR = 1.05
TELEMETRY_OVERHEAD_SLACK = 0.02
MIN_BUSY_ACCOUNTING = 0.8


def _median(values):
    return sorted(values)[len(values) // 2]


def test_worker_telemetry_accounting_and_overhead(emit, emit_json):
    """Worker telemetry: complete accounting, negligible cost, exact ranks.

    Two gated claims on the shm transport's per-chunk telemetry:

    1. **Accounting** — over one steady-state CPU-bound run, the
       ``repro_engine_worker_busy_seconds_total`` deltas merged from the
       workers cover >= 80% of the run's wall time (workers overlap, so
       the ratio can legitimately exceed 1 on multi-core hosts).
    2. **Overhead** — the median of 3 telemetry-on runs costs <= 5% over
       the median of 3 interleaved telemetry-off runs (the
       ``REPRO_ENGINE_TELEMETRY=0`` kill-switch path), and every run's
       ranks are bitwise-identical either way.
    """
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "distmult", graph.num_entities, graph.num_relations, dim=32, seed=0
    )
    graph.filter_index  # noqa: B018 — warm once, outside every timed region
    registry = get_registry()

    def _busy_total() -> float:
        return sum_family(
            scrape(registry), "repro_engine_worker_busy_seconds_total"
        )

    def _timed(telemetry: str):
        os.environ["REPRO_ENGINE_TELEMETRY"] = telemetry
        try:
            return _timed_full(model, graph, workers=WORKERS, transport="shm")
        finally:
            del os.environ["REPRO_ENGINE_TELEMETRY"]

    serial, _ = _timed_full(model, graph, workers=1)
    warmup, _ = _timed("1")  # pool start + state publish paid here
    assert warmup.ranks == serial.ranks

    # -- Accounting: merged busy seconds vs one steady-state run's wall. -
    busy_before = _busy_total()
    accounted_run, accounting_wall = _timed("1")
    busy_delta = _busy_total() - busy_before
    accounting = busy_delta / max(accounting_wall, 1e-9)
    assert accounted_run.ranks == serial.ranks

    # -- Overhead: interleaved on/off runs, median of 3 each. ------------
    baseline_seconds: list[float] = []
    traced_seconds: list[float] = []
    for _ in range(3):
        off_run, off_wall = _timed("0")
        on_run, on_wall = _timed("1")
        assert off_run.ranks == serial.ranks
        assert on_run.ranks == serial.ranks
        baseline_seconds.append(off_wall)
        traced_seconds.append(on_wall)
    baseline = _median(baseline_seconds)
    traced = _median(traced_seconds)
    overhead = traced / max(baseline, 1e-9)

    rows = [
        {
            "Claim": "busy-seconds accounting of one run's wall time",
            "Measured": f"{accounting:.2f}x",
            "Floor/ceiling": f">= {MIN_BUSY_ACCOUNTING}x",
            "Ranks equal": "yes",
        },
        {
            "Claim": "telemetry-on vs telemetry-off wall time (median of 3)",
            "Measured": f"{overhead:.3f}x",
            "Floor/ceiling": f"<= {TELEMETRY_OVERHEAD_FACTOR}x + "
            f"{TELEMETRY_OVERHEAD_SLACK}s",
            "Ranks equal": "yes",
        },
    ]
    emit(
        "worker_telemetry",
        render_table(
            rows,
            title=(
                f"Worker telemetry, full ranking of {graph.name} at "
                f"{WORKERS} shm workers"
            ),
        ),
    )
    emit_json(
        "worker_telemetry",
        {
            "bench": "bench_parallel_engine::worker_telemetry",
            "workers": WORKERS,
            "busy_accounting_ratio": accounting,
            "busy_seconds": busy_delta,
            "accounting_wall_seconds": accounting_wall,
            "telemetry_on_seconds": traced,
            "telemetry_off_seconds": baseline,
            "telemetry_overhead_ratio": overhead,
            "min_busy_accounting": MIN_BUSY_ACCOUNTING,
            "max_overhead_factor": TELEMETRY_OVERHEAD_FACTOR,
            "ranks_equal": True,
        },
        config={
            "workers": WORKERS,
            "chunk_size": CHUNK_SIZE,
            "model": "distmult",
            "dim": 32,
            "runs_per_mode": 3,
            "overhead_definition": (
                "median telemetry-on seconds / median telemetry-off "
                "seconds, interleaved steady-state shm runs"
            ),
        },
    )
    assert accounting >= MIN_BUSY_ACCOUNTING
    assert traced <= baseline * TELEMETRY_OVERHEAD_FACTOR + TELEMETRY_OVERHEAD_SLACK
    shutdown_engine_pools()


def test_parallel_sampled_matches_serial():
    """The sampled estimator is also exact under parallel execution."""
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "complex", graph.num_entities, graph.num_relations, dim=16, seed=1
    )
    protocol = EvaluationProtocol(
        graph, strategy="static", sample_fraction=0.05, types=dataset.types, seed=3
    )
    protocol.prepare()
    assert protocol.pools is not None
    serial = evaluate_sampled(model, graph, protocol.pools, workers=1)
    parallel = evaluate_sampled(
        model, graph, protocol.pools, workers=WORKERS, chunk_size=CHUNK_SIZE
    )
    assert parallel.ranks == serial.ranks
    # Different chunk sizes cannot change a rank either: chunks partition
    # the query axis and each query's rank is computed row-locally.
    rechunked = evaluate_sampled(model, graph, protocol.pools, chunk_size=17)
    assert rechunked.ranks == serial.ranks
    assert np.isfinite(serial.metrics.mrr)
    shutdown_engine_pools()
