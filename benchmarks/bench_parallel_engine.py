"""Parallel evaluation engine: speed-up floor and exactness guarantee.

Two claims, both asserted:

1. **Exactness** — ``workers=4`` produces bitwise-identical per-query
   ranks (and therefore identical metrics) to the serial path, on the
   full protocol and the sampled estimator alike.  Parallelism is purely
   an execution knob.
2. **Concurrency** — with a scoring backend whose per-batch latency
   dominates (the regime the engine exists for: million-entity score
   matrices, models served from an accelerator or a remote process), 4
   workers complete the same chunk schedule >= 2x faster than 1.  The
   latency-bound scorer below pins that per-batch cost to a fixed,
   hardware-independent floor, so the asserted ratio measures the
   engine's chunk fan-out rather than how many idle cores this
   particular machine happens to have.

The pure-CPU numbers for this host are measured and reported in the
emitted table too (README quotes it), but not asserted — numpy scoring on
a single-core container cannot speed up by adding processes, and that is
a fact about the host, not the engine.
"""

from __future__ import annotations

import numpy as np

from repro.bench import LatencyBoundScorer, render_table
from repro.core.ranking import evaluate_full
from repro.core.estimators import evaluate_sampled
from repro.core.protocol import EvaluationProtocol
from repro.datasets import SyntheticConfig, generate
from repro.models import build_model

#: Acceptance floor: 4 workers vs 1 on the latency-bound scorer.
MIN_SPEEDUP = 2.0

WORKERS = 4
CHUNK_SIZE = 64

#: Emulated per-batch scoring latency (seconds).  20 ms is the order of a
#: single large-graph score-matrix slab or one RPC to a scoring service.
BATCH_LATENCY = 0.02


def _large_synthetic():
    """A synthetic large graph: ~3.8k entities, ~1.8k test queries."""
    config = SyntheticConfig(
        num_entities=4000,
        num_relations=24,
        num_types=8,
        num_triples=24000,
        num_communities=3,
        seed=7,
        name="engine-bench",
    )
    return generate(config)


def test_parallel_engine_speedup(emit, emit_json):
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "distmult", graph.num_entities, graph.num_relations, dim=32, seed=0
    )
    graph.filter_index  # noqa: B018 — warm once, outside every timed region

    # -- Exactness: serial and 4-worker runs agree bit for bit. ---------
    serial = evaluate_full(model, graph, workers=1, chunk_size=CHUNK_SIZE)
    parallel = evaluate_full(model, graph, workers=WORKERS, chunk_size=CHUNK_SIZE)
    assert parallel.ranks == serial.ranks
    assert parallel.metrics == serial.metrics
    cpu_speedup = serial.seconds / max(parallel.seconds, 1e-9)

    # -- Concurrency: latency-bound scorer, the engine's target regime. -
    throttled = LatencyBoundScorer(model, delay=BATCH_LATENCY)
    slow_serial = evaluate_full(throttled, graph, workers=1, chunk_size=CHUNK_SIZE)
    slow_parallel = evaluate_full(
        throttled, graph, workers=WORKERS, chunk_size=CHUNK_SIZE
    )
    assert slow_parallel.ranks == slow_serial.ranks
    assert slow_serial.ranks == serial.ranks  # the wrapper changes nothing
    latency_speedup = slow_serial.seconds / max(slow_parallel.seconds, 1e-9)

    rows = [
        {
            "Scorer": "latency-bound (20 ms/batch)",
            "1 worker (s)": round(slow_serial.seconds, 2),
            f"{WORKERS} workers (s)": round(slow_parallel.seconds, 2),
            "Speed-up": round(latency_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Scorer": "numpy distmult (CPU-bound)",
            "1 worker (s)": round(serial.seconds, 2),
            f"{WORKERS} workers (s)": round(parallel.seconds, 2),
            "Speed-up": round(cpu_speedup, 2),
            "Ranks equal": "yes",
        },
    ]
    emit(
        "parallel_engine",
        render_table(
            rows,
            title=(
                f"Parallel engine, full ranking of {graph.name} "
                f"({graph.num_entities} entities, {2 * len(graph.test)} queries)"
            ),
        ),
    )
    emit_json(
        "parallel_engine",
        {
            "bench": "bench_parallel_engine",
            "workers": WORKERS,
            "latency_bound_speedup": latency_speedup,
            "cpu_bound_speedup": cpu_speedup,
            "min_speedup_asserted": MIN_SPEEDUP,
            "ranks_equal": True,
        },
        config={
            "workers": WORKERS,
            "chunk_size": CHUNK_SIZE,
            "batch_latency": BATCH_LATENCY,
            "model": "distmult",
            "dim": 32,
        },
    )
    assert latency_speedup >= MIN_SPEEDUP


def test_parallel_sampled_matches_serial():
    """The sampled estimator is also exact under parallel execution."""
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "complex", graph.num_entities, graph.num_relations, dim=16, seed=1
    )
    protocol = EvaluationProtocol(
        graph, strategy="static", sample_fraction=0.05, types=dataset.types, seed=3
    )
    protocol.prepare()
    assert protocol.pools is not None
    serial = evaluate_sampled(model, graph, protocol.pools, workers=1)
    parallel = evaluate_sampled(
        model, graph, protocol.pools, workers=WORKERS, chunk_size=CHUNK_SIZE
    )
    assert parallel.ranks == serial.ranks
    # Different chunk sizes cannot change a rank either: chunks partition
    # the query axis and each query's rank is computed row-locally.
    rechunked = evaluate_sampled(model, graph, protocol.pools, chunk_size=17)
    assert rechunked.ranks == serial.ranks
    assert np.isfinite(serial.metrics.mrr)
