"""Parallel evaluation engine: speed-up floors and exactness guarantee.

Three claims, all asserted:

1. **Exactness** — ``workers=4`` produces bitwise-identical per-query
   ranks (and therefore identical metrics) to the serial path, on the
   full protocol and the sampled estimator alike, over both transports.
   Parallelism is purely an execution knob.
2. **Concurrency** — with a scoring backend whose per-batch latency
   dominates (the regime the engine exists for: million-entity score
   matrices, models served from an accelerator or a remote process), 4
   workers complete the same chunk schedule >= 2x faster than 1.  The
   latency-bound scorer pins the per-batch cost to a fixed,
   hardware-independent floor, so the asserted ratio measures the
   engine's chunk fan-out rather than how many idle cores this
   particular machine happens to have.
3. **CPU-bound transport win** — ``cpu_bound_speedup`` is the ratio of
   the legacy pickle transport's 4-worker wall time to the shared-memory
   transport's steady-state 4-worker wall time on pure-numpy scoring,
   both under the **spawn** start method (the only one every platform
   has, and the one where the legacy transport's serialisation cost is
   fully visible: spawn re-pickles the whole state at every pool start,
   while the shm transport publishes it once and reuses a persistent
   pool).  Floor: >= 2x.  The same ratio under fork — where the legacy
   path hides most pickling behind copy-on-write inheritance and shm's
   win shrinks to per-run pool churn — is reported
   (``cpu_bound_speedup_fork``) but not asserted.

   Measured honestly: this container is single-core, so parallel-vs-
   serial scaling of genuinely CPU-bound work is physically ~1x here and
   is reported (``cpu_bound_parallel_vs_serial``) but not asserted — it
   is a fact about the host, not the engine.  What the engine *can* win
   on any host is the transport overhead, and that is what the floor
   pins.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import LatencyBoundScorer, render_table
from repro.core.ranking import evaluate_full
from repro.core.estimators import evaluate_sampled
from repro.core.protocol import EvaluationProtocol
from repro.datasets import SyntheticConfig, generate
from repro.engine import shutdown_engine_pools
from repro.models import build_model

#: Acceptance floors, both at 4 workers: latency-bound fan-out vs 1
#: worker, and shm transport vs legacy pickle transport on CPU-bound work.
MIN_SPEEDUP = 2.0

WORKERS = 4
CHUNK_SIZE = 64

#: Emulated per-batch scoring latency (seconds).  20 ms is the order of a
#: single large-graph score-matrix slab or one RPC to a scoring service.
BATCH_LATENCY = 0.02


def _large_synthetic():
    """A synthetic large graph: ~3.8k entities, ~1.8k test queries."""
    config = SyntheticConfig(
        num_entities=4000,
        num_relations=24,
        num_types=8,
        num_triples=24000,
        num_communities=3,
        seed=7,
        name="engine-bench",
    )
    return generate(config)


def _timed_full(model, graph, **kwargs):
    """One ``evaluate_full`` plus its wall time (the run's own clock)."""
    start = time.perf_counter()
    result = evaluate_full(model, graph, chunk_size=CHUNK_SIZE, **kwargs)
    return result, time.perf_counter() - start


def test_parallel_engine_speedup(emit, emit_json):
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "distmult", graph.num_entities, graph.num_relations, dim=32, seed=0
    )
    graph.filter_index  # noqa: B018 — warm once, outside every timed region

    # -- Exactness: serial, shm and pickle transports agree bit for bit. -
    serial, serial_seconds = _timed_full(model, graph, workers=1)
    warmup, _ = _timed_full(
        model, graph, workers=WORKERS, transport="shm", start_method="spawn"
    )
    assert warmup.ranks == serial.ranks  # cold shm run (pays pool + publish)
    shm, shm_seconds = _timed_full(
        model, graph, workers=WORKERS, transport="shm", start_method="spawn"
    )
    legacy, legacy_seconds = _timed_full(
        model, graph, workers=WORKERS, transport="pickle", start_method="spawn"
    )
    assert shm.ranks == serial.ranks
    assert shm.metrics == serial.metrics
    assert legacy.ranks == serial.ranks
    cpu_transport_speedup = legacy_seconds / max(shm_seconds, 1e-9)
    cpu_parallel_vs_serial = serial_seconds / max(shm_seconds, 1e-9)

    # The same comparison under fork, where copy-on-write inheritance
    # hides most of the legacy transport's pickling (reported, not gated).
    fork_warmup, _ = _timed_full(model, graph, workers=WORKERS, transport="shm")
    _, shm_fork_seconds = _timed_full(model, graph, workers=WORKERS, transport="shm")
    fork_legacy, legacy_fork_seconds = _timed_full(
        model, graph, workers=WORKERS, transport="pickle"
    )
    assert fork_warmup.ranks == serial.ranks
    assert fork_legacy.ranks == serial.ranks
    cpu_fork_speedup = legacy_fork_seconds / max(shm_fork_seconds, 1e-9)

    # -- Concurrency: latency-bound scorer, the engine's target regime. -
    throttled = LatencyBoundScorer(model, delay=BATCH_LATENCY)
    slow_serial, slow_serial_seconds = _timed_full(throttled, graph, workers=1)
    slow_parallel, slow_parallel_seconds = _timed_full(
        throttled, graph, workers=WORKERS
    )
    assert slow_parallel.ranks == slow_serial.ranks
    assert slow_serial.ranks == serial.ranks  # the wrapper changes nothing
    latency_speedup = slow_serial_seconds / max(slow_parallel_seconds, 1e-9)

    rows = [
        {
            "Regime": "latency-bound (20 ms/batch), 4 workers vs 1",
            "Baseline (s)": round(slow_serial_seconds, 2),
            "Engine (s)": round(slow_parallel_seconds, 2),
            "Speed-up": round(latency_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Regime": "CPU-bound numpy, shm vs pickle transport (spawn)",
            "Baseline (s)": round(legacy_seconds, 2),
            "Engine (s)": round(shm_seconds, 2),
            "Speed-up": round(cpu_transport_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Regime": "CPU-bound numpy, shm vs pickle transport (fork)",
            "Baseline (s)": round(legacy_fork_seconds, 2),
            "Engine (s)": round(shm_fork_seconds, 2),
            "Speed-up": round(cpu_fork_speedup, 2),
            "Ranks equal": "yes",
        },
        {
            "Regime": "CPU-bound numpy, 4 shm workers vs serial (informational)",
            "Baseline (s)": round(serial_seconds, 2),
            "Engine (s)": round(shm_seconds, 2),
            "Speed-up": round(cpu_parallel_vs_serial, 2),
            "Ranks equal": "yes",
        },
    ]
    emit(
        "parallel_engine",
        render_table(
            rows,
            title=(
                f"Parallel engine, full ranking of {graph.name} "
                f"({graph.num_entities} entities, {2 * len(graph.test)} queries)"
            ),
        ),
    )
    emit_json(
        "parallel_engine",
        {
            "bench": "bench_parallel_engine",
            "workers": WORKERS,
            "latency_bound_speedup": latency_speedup,
            "cpu_bound_speedup": cpu_transport_speedup,
            "cpu_bound_speedup_fork": cpu_fork_speedup,
            "cpu_bound_parallel_vs_serial": cpu_parallel_vs_serial,
            "min_speedup_asserted": MIN_SPEEDUP,
            "ranks_equal": True,
        },
        config={
            "workers": WORKERS,
            "chunk_size": CHUNK_SIZE,
            "batch_latency": BATCH_LATENCY,
            "model": "distmult",
            "dim": 32,
            "cpu_bound_speedup_definition": (
                "pickle-transport seconds / shm-transport steady-state "
                "seconds, both at 4 workers under the spawn start method"
            ),
        },
    )
    assert latency_speedup >= MIN_SPEEDUP
    assert cpu_transport_speedup >= MIN_SPEEDUP
    shutdown_engine_pools()  # leave no pool (or segment) behind for later benches


def test_parallel_sampled_matches_serial():
    """The sampled estimator is also exact under parallel execution."""
    dataset = _large_synthetic()
    graph = dataset.graph
    model = build_model(
        "complex", graph.num_entities, graph.num_relations, dim=16, seed=1
    )
    protocol = EvaluationProtocol(
        graph, strategy="static", sample_fraction=0.05, types=dataset.types, seed=3
    )
    protocol.prepare()
    assert protocol.pools is not None
    serial = evaluate_sampled(model, graph, protocol.pools, workers=1)
    parallel = evaluate_sampled(
        model, graph, protocol.pools, workers=WORKERS, chunk_size=CHUNK_SIZE
    )
    assert parallel.ranks == serial.ranks
    # Different chunk sizes cannot change a rank either: chunks partition
    # the query axis and each query's rank is computed row-locally.
    rechunked = evaluate_sampled(model, graph, protocol.pools, chunk_size=17)
    assert rechunked.ranks == serial.ranks
    assert np.isfinite(serial.metrics.mrr)
    shutdown_engine_pools()
