"""Serving layer load test: micro-batching speed-up and rank exactness.

Two claims, both asserted:

1. **Exactness** — a rank served by ``/v1/score`` semantics
   (``LinkPredictionService.score``) equals the rank
   :func:`repro.core.ranking.evaluate_full` reports for the same
   ``(h, r, t, side)`` query, for *every* test query of the dataset.
   Serving reuses the offline engine's scoring kernel, so batching and
   concurrency are pure execution knobs.
2. **Throughput** — with a scoring backend whose per-call latency
   dominates (the serving regime: large score slabs, accelerator or
   remote scorers), the micro-batched service sustains >= 3x the
   throughput of the sequential one-request-at-a-time baseline under 8
   concurrent clients.  The latency-bound scorer pins the per-call cost
   to a fixed, hardware-independent floor, so the asserted ratio
   measures request coalescing rather than this host's core count.

The pure-numpy throughput for this host is measured and reported in the
emitted table too (batching still wins by amortising per-call Python
overhead), but only the latency-bound ratio is asserted.
"""

from __future__ import annotations

import threading
import time

from repro.bench import LatencyBoundScorer, render_table
from repro.core.ranking import evaluate_full
from repro.datasets import load
from repro.models import build_model
from repro.serve import LinkPredictionService, ModelRegistry, ServeClient
from repro.store import ExperimentStore

#: Acceptance floor: micro-batched vs sequential throughput at 8 clients.
MIN_SPEEDUP = 3.0

NUM_CLIENTS = 8
REQUESTS_PER_CLIENT = 40
MAX_BATCH = 64
MAX_WAIT = 0.002

#: Emulated per-scoring-call latency (seconds) — the order of one large
#: score-slab computation or one RPC to a remote scoring backend.
CALL_LATENCY = 0.005


def _setup(tmp_path, model, name, persist):
    dataset = load("codex-s-lite")
    registry = ModelRegistry(
        ExperimentStore(tmp_path / f"store-{name}"), dataset.graph, types=dataset.types
    )
    registry.register(name, model, persist=persist)
    return dataset, registry


def _drive(service: LinkPredictionService, model_name: str, workload) -> float:
    """Run the workload from NUM_CLIENTS concurrent clients; seconds taken.

    ``workload`` is a list of per-client request lists; every request is
    a ``(anchor, relation)`` tail-completion query.
    """
    client = ServeClient(service=service)
    errors: list[BaseException] = []

    def run_client(requests):
        try:
            for anchor, relation in requests:
                client.rank(
                    model_name,
                    anchor,
                    relation,
                    k=10,
                    candidates="all",
                    filter_known=False,
                )
        except BaseException as error:  # noqa: BLE001 — surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=run_client, args=(requests,)) for requests in workload
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    if errors:
        raise errors[0]
    return seconds


def _workload(graph):
    """NUM_CLIENTS x REQUESTS_PER_CLIENT distinct hot-relation queries.

    The traffic shape micro-batching exists for: many concurrent users
    completing the same relation (one hot endpoint), each with their own
    anchor.  Same ``(relation, side)`` means shareable scoring calls;
    distinct anchors mean the LRU result cache cannot answer (the timed
    services disable it outright anyway), so the measured ratio is the
    scheduler's coalescing and nothing else.
    """
    hot_relation = 0
    return [
        [
            ((client * REQUESTS_PER_CLIENT + i) % graph.num_entities, hot_relation)
            for i in range(REQUESTS_PER_CLIENT)
        ]
        for client in range(NUM_CLIENTS)
    ]


def test_served_ranks_equal_offline_engine(tmp_path):
    """Claim 1: the service is the offline engine, online."""
    dataset = load("codex-s-lite")
    graph = dataset.graph
    model = build_model("distmult", graph.num_entities, graph.num_relations, dim=16, seed=0)
    _, registry = _setup(tmp_path, model, "dm", persist=True)
    truth = evaluate_full(model, graph)
    with LinkPredictionService(registry, max_batch_size=32, max_wait=0.001) as service:
        rows = ServeClient(service=service).score("dm", graph.test.as_tuples())
    assert len(rows) == 2 * len(graph.test)
    for row in rows:
        query = (row["head_id"], row["relation_id"], row["tail_id"], row["side"])
        assert truth.ranks[query] == row["rank"], f"rank mismatch for {query}"


def test_micro_batched_throughput(tmp_path, emit, emit_json):
    """Claim 2: batching >= 3x sequential under 8 concurrent clients."""
    dataset = load("codex-s-lite")
    graph = dataset.graph
    base = build_model("distmult", graph.num_entities, graph.num_relations, dim=16, seed=0)
    workload = _workload(graph)
    num_requests = NUM_CLIENTS * REQUESTS_PER_CLIENT

    def timed(model, max_batch_size, max_wait, tag):
        _, registry = _setup(tmp_path, model, tag, persist=False)
        with LinkPredictionService(
            registry,
            max_batch_size=max_batch_size,
            max_wait=max_wait,
            cache_size=0,  # measure scheduling, not caching
        ) as service:
            seconds = _drive(service, tag, workload)
            stats = service.scheduler.stats()
        return seconds, stats

    # -- The asserted regime: per-call latency dominates. ---------------
    throttled = LatencyBoundScorer(base, delay=CALL_LATENCY)
    seq_seconds, seq_stats = timed(throttled, 1, 0.0, "seq-latency")
    batch_seconds, batch_stats = timed(throttled, MAX_BATCH, MAX_WAIT, "batch-latency")
    latency_speedup = seq_seconds / max(batch_seconds, 1e-9)

    # -- The honest CPU row: pure numpy on this host (not asserted). ----
    cpu_seq_seconds, _ = timed(base, 1, 0.0, "seq-cpu")
    cpu_batch_seconds, _ = timed(base, MAX_BATCH, MAX_WAIT, "batch-cpu")
    cpu_speedup = cpu_seq_seconds / max(cpu_batch_seconds, 1e-9)

    rows = [
        {
            "Scorer": f"latency-bound ({CALL_LATENCY * 1e3:.0f} ms/call)",
            "Sequential (req/s)": round(num_requests / seq_seconds, 1),
            "Micro-batched (req/s)": round(num_requests / batch_seconds, 1),
            "Speed-up": round(latency_speedup, 2),
            "Mean batch": batch_stats["mean_batch_size"],
        },
        {
            "Scorer": "numpy distmult (CPU-bound)",
            "Sequential (req/s)": round(num_requests / cpu_seq_seconds, 1),
            "Micro-batched (req/s)": round(num_requests / cpu_batch_seconds, 1),
            "Speed-up": round(cpu_speedup, 2),
            "Mean batch": batch_stats["mean_batch_size"],
        },
    ]
    emit(
        "serve_throughput",
        render_table(
            rows,
            title=(
                f"repro.serve micro-batching, {NUM_CLIENTS} concurrent clients, "
                f"{num_requests} requests on {graph.name}"
            ),
        ),
    )
    emit_json(
        "serve",
        {
            "bench": "bench_serve",
            "clients": NUM_CLIENTS,
            "requests": num_requests,
            "latency_bound_speedup": latency_speedup,
            "cpu_bound_speedup": cpu_speedup,
            "mean_batch_size": batch_stats["mean_batch_size"],
            "min_speedup_asserted": MIN_SPEEDUP,
        },
        config={
            "clients": NUM_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "max_batch": MAX_BATCH,
            "max_wait": MAX_WAIT,
            "call_latency": CALL_LATENCY,
            "dataset": "codex-s-lite",
        },
    )
    assert seq_stats["max_batch_size"] == 1  # the baseline really is sequential
    assert batch_stats["mean_batch_size"] > 1.5  # coalescing actually happened
    assert latency_speedup >= MIN_SPEEDUP
