"""Ablation benches for the design choices DESIGN.md calls out.

Expected shapes:

* degrading entity types hurts the typed recommenders' recall while the
  type-free L-WD stays put (the paper's §4.1 warning quantified);
* dropping the PT union from static sets costs test recall (seen pairs
  fall out) while improving nothing that matters;
* recommender-guided training negatives keep the model competitive (the
  paper's §7 conjecture — harder negatives don't hurt, and may help).
"""

from repro.bench import render_table
from repro.bench.ablations import (
    ablation_include_observed,
    ablation_training_negatives,
    ablation_type_quality,
)


def test_ablation_type_quality(benchmark, emit):
    rows = benchmark.pedantic(ablation_type_quality, rounds=1, iterations=1)
    emit(
        "ablation_type_quality",
        render_table(rows, title="Ablation A: candidate recall under degraded types"),
    )
    by_cell = {(row["Types dropped"], row["Model"]): row for row in rows}
    for typed in ("dbh-t", "ontosim"):
        clean = by_cell[("0%", typed)]["CR Unseen"]
        broken = by_cell[("90%", typed)]["CR Unseen"]
        assert broken < clean, typed  # typed recommenders degrade
    # The structure-only recommender is immune to type damage.
    assert by_cell[("90%", "l-wd")]["CR Test"] == by_cell[("0%", "l-wd")]["CR Test"]


def test_ablation_include_observed(benchmark, emit):
    rows = benchmark.pedantic(ablation_include_observed, rounds=1, iterations=1)
    emit(
        "ablation_include_observed",
        render_table(rows, title="Ablation B: static sets with vs without the PT union"),
    )
    with_union = next(row for row in rows if row["PT union"] == "yes")
    without = next(row for row in rows if row["PT union"] == "no")
    assert with_union["CR Test"] >= without["CR Test"]


def test_ablation_training_negatives(benchmark, emit):
    result = benchmark.pedantic(ablation_training_negatives, rounds=1, iterations=1)
    emit(
        "ablation_training_negatives",
        render_table(
            result.rows,
            title="Ablation C: training-negative corruption schemes (final true MRR)",
        ),
    )
    mrr = result.mrr_by_label
    # The measured negative result, with its monotone structure:
    # harder negative distributions hurt more on this substrate, and
    # mixing uniform corruption back in recovers.
    assert mrr["uniform"] > mrr["support, mix 0.2"]
    assert mrr["support, mix 0.5"] >= mrr["support, mix 0.2"]
    assert mrr["support, mix 0.2"] > mrr["proportional, mix 0.2"]
