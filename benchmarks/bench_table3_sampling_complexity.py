"""Table 3: sampling cost of entity-aware vs relational candidate generation.

Paper: at a 2.5% sampling rate the relational recommender needs 62x to
440x fewer samples, growing with dataset size.  Expected shape here: a
reduction factor > 1 everywhere, increasing from the small CoDEx analogue
to the wikikg2 analogue.
"""

from repro.bench import render_table, table3_sampling_complexity

DATASETS = ("yago310-lite", "codex-l-lite", "wikikg2-lite")


def test_table3_sampling_complexity(benchmark, emit):
    rows = benchmark.pedantic(
        table3_sampling_complexity, args=(DATASETS,), rounds=1, iterations=1
    )
    emit(
        "table3_sampling_complexity",
        render_table(rows, title="Table 3: samples needed at 2.5% sampling"),
    )
    reductions = [row["Sampling reduction"] for row in rows]
    # An order-of-magnitude fewer samples on every dataset.  (Which dataset
    # reduces most depends on the pairs-per-relation ratio, not on size.)
    assert all(r > 5.0 for r in reductions)
    assert max(reductions) > 20.0
