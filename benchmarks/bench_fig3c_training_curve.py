"""Figure 3c: estimated validation MRR across training on the wikikg2 analogue.

Paper shape: the Probabilistic and Static curves hug the true validation
MRR throughout training while the Random curve floats far above it; all
three move in the same direction as the true curve (so early stopping
still works even with the biased estimate).
"""

import numpy as np

from repro.bench import fig3c_training_curve, render_series, run_training_study
from repro.metrics import mae, pearson


def test_fig3c_training_curve(benchmark, emit):
    study = benchmark.pedantic(
        run_training_study,
        kwargs={
            "dataset_name": "wikikg2-lite",
            "model_name": "complex",
            "epochs": 5,
            "dim": 24,
            "sample_fraction": 0.05,
            "with_kp": False,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    series = fig3c_training_curve(study)
    emit(
        "fig3c_training_curve",
        render_series(
            list(range(len(series["True"]))),
            series,
            x_label="epoch",
            title="Figure 3c: estimated validation MRR across training, wikikg2-lite",
        ),
    )
    truth = series["True"]
    # Random floats above the truth at every epoch ...
    assert all(r > t for r, t in zip(series["Random"], truth))
    # ... while the guided estimates are closer at every epoch.
    assert mae(series["Probabilistic"], truth) < mae(series["Random"], truth)
    assert mae(series["Static"], truth) < mae(series["Random"], truth)
    # And every strategy still tracks the shape of the curve.
    for name in ("Random", "Probabilistic", "Static"):
        if np.std(truth) > 1e-6:
            assert pearson(series[name], truth) > 0.5, name
