"""Figure 3a: (log) evaluation time vs sample size on the wikikg2 analogue.

Paper shape: sampled evaluation time grows roughly linearly in the sample
size and sits far below the full-evaluation line; Static grows slowest
because its pools are capped at the candidate-set size.
"""

from repro.bench import fig3a_time_vs_samples, render_series

FRACTIONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.4)


def test_fig3a_time_vs_samples(benchmark, emit):
    result = benchmark.pedantic(
        fig3a_time_vs_samples,
        kwargs={"dataset_name": "wikikg2-lite", "fractions": FRACTIONS},
        rounds=1,
        iterations=1,
    )
    series = {name: values for name, values in result.seconds_by_strategy.items()}
    series["full (flat line)"] = [result.full_seconds] * len(FRACTIONS)
    emit(
        "fig3a_time_vs_samples",
        render_series(
            result.fractions,
            series,
            x_label="sample fraction",
            title="Figure 3a: evaluation time (s) vs sample size, wikikg2-lite",
        ),
    )
    for strategy, seconds in result.seconds_by_strategy.items():
        # Every sampled point is faster than the full evaluation.
        assert max(seconds) < result.full_seconds, strategy
    # Static stays at or below random's cost once pools saturate.
    assert result.seconds_by_strategy["static"][-1] <= (
        result.seconds_by_strategy["random"][-1] * 1.5
    )
