"""Cache keys: canonicalisation, composition, cross-process stability."""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.models import build_model
from repro.store import (
    cache_key,
    canonical_json,
    graph_fingerprint,
    ground_truth_key,
    model_fingerprint,
    pools_key,
    preparation_key,
    study_key,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestCanonicalisation:
    def test_dict_order_is_irrelevant(self):
        assert cache_key("k", {"a": 1, "b": 2}) == cache_key("k", {"b": 2, "a": 1})

    def test_tuple_and_list_hash_identically(self):
        assert cache_key("k", {"x": (1, 2, 3)}) == cache_key("k", {"x": [1, 2, 3]})

    def test_numpy_scalars_collapse(self):
        assert cache_key("k", {"n": np.int64(7), "f": np.float64(0.5)}) == cache_key(
            "k", {"n": 7, "f": 0.5}
        )

    def test_float_precision_survives(self):
        assert cache_key("k", {"f": 0.1}) != cache_key("k", {"f": 0.1 + 1e-12})

    def test_kind_namespaces_keys(self):
        assert cache_key("a", {"x": 1}) != cache_key("b", {"x": 1})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": (2,)}) == '{"a":[2],"b":1}'


class TestComposedKeys:
    def test_preparation_key_varies_with_each_field(self, tiny_graph):
        base = preparation_key(tiny_graph, "l-wd", "static", None, 0.1, True, 0)
        assert base != preparation_key(tiny_graph, "pt", "static", None, 0.1, True, 0)
        assert base != preparation_key(tiny_graph, "l-wd", "random", None, 0.1, True, 0)
        assert base != preparation_key(tiny_graph, "l-wd", "static", None, 0.2, True, 0)
        assert base != preparation_key(tiny_graph, "l-wd", "static", None, 0.1, False, 0)
        assert base != preparation_key(tiny_graph, "l-wd", "static", None, 0.1, True, 1)

    def test_graph_content_changes_key(self, tiny_graph, gates_graph):
        assert graph_fingerprint(tiny_graph) != graph_fingerprint(gates_graph)
        assert pools_key(tiny_graph, "l-wd", "static", 0.1, 0) != pools_key(
            gates_graph, "l-wd", "static", 0.1, 0
        )

    def test_study_key_covers_all_kwargs_and_graph(self, tiny_graph, gates_graph):
        base = study_key(tiny_graph, dataset="d", model="m", epochs=3, lr=0.05)
        assert base == study_key(tiny_graph, lr=0.05, epochs=3, model="m", dataset="d")
        assert base != study_key(tiny_graph, dataset="d", model="m", epochs=4, lr=0.05)
        # A regenerated dataset with the same zoo name must miss.
        assert base != study_key(gates_graph, dataset="d", model="m", epochs=3, lr=0.05)

    def test_graph_fingerprint_is_memoized(self, tiny_graph):
        first = graph_fingerprint(tiny_graph)
        assert graph_fingerprint(tiny_graph) is first


class TestModelFingerprint:
    def test_same_seed_same_fingerprint(self):
        a = build_model("distmult", 10, 3, dim=4, seed=0)
        b = build_model("distmult", 10, 3, dim=4, seed=0)
        assert model_fingerprint(a) == model_fingerprint(b)

    def test_parameter_change_changes_fingerprint(self):
        model = build_model("distmult", 10, 3, dim=4, seed=0)
        before = model_fingerprint(model)
        next(iter(model.parameters.values())).data[0, 0] += 1.0
        assert model_fingerprint(model) != before

    def test_ground_truth_key_tracks_model_state(self, tiny_graph):
        model = build_model("distmult", 6, 3, dim=4, seed=0)
        before = ground_truth_key(tiny_graph, model, "test", (1, 3, 10))
        assert before == ground_truth_key(tiny_graph, model, "test", (1, 3, 10))
        assert before != ground_truth_key(tiny_graph, model, "valid", (1, 3, 10))
        next(iter(model.parameters.values())).data[0, 0] += 1.0
        assert before != ground_truth_key(tiny_graph, model, "test", (1, 3, 10))


@pytest.mark.parametrize(
    "fields",
    [
        {"dataset": "codex-s-lite", "fraction": 0.1, "seed": 0},
        {"nested": {"b": [1, 2], "a": None}, "flag": True},
    ],
)
def test_keys_stable_across_processes(fields):
    """The cache contract: a key computed in another process matches."""
    local = cache_key("cross-process", fields)
    script = (
        "import json, sys; from repro.store import cache_key; "
        "print(cache_key('cross-process', json.loads(sys.argv[1])))"
    )
    import json

    result = subprocess.run(
        [sys.executable, "-c", script, json.dumps(fields)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    assert result.stdout.strip() == local
