"""Artifact cache: round trips, the LRU layer, listings and gc."""

import numpy as np
import pytest

from repro.core.candidates import build_static_candidates
from repro.core.sampling import build_pools
from repro.models import build_model
from repro.recommenders.registry import build_recommender
from repro.store import ArtifactStore, LRUCache


@pytest.fixture
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "artifacts")


@pytest.fixture
def fitted(tiny_graph):
    return build_recommender("l-wd").fit(tiny_graph, None)


class TestLRU:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert len(cache) == 2

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1 and cache.misses == 1


class TestRoundTrips:
    def test_json_round_trip(self, store):
        payload = {"rows": [1, 2, 3], "label": "x"}
        store.put_json("study", "k" * 32, payload)
        assert store.get_json("study", "k" * 32) == payload
        assert store.get_json("study", "absent") is None

    def test_json_survives_process_restart(self, store, tmp_path):
        store.put_json("study", "k" * 32, {"a": 1})
        reopened = ArtifactStore(tmp_path / "artifacts")
        assert reopened.get_json("study", "k" * 32) == {"a": 1}

    def test_model_round_trip_is_bit_identical(self, store):
        model = build_model("complex", 12, 4, dim=6, seed=3)
        store.put_model("m" * 32, model)
        store.memory.clear()  # force the disk path
        loaded = store.get_model("m" * 32)
        assert loaded is not None and loaded.name == "complex"
        for name, tensor in model.parameters.items():
            np.testing.assert_array_equal(loaded.parameters[name].data, tensor.data)

    def test_pools_round_trip(self, store, tiny_graph, fitted):
        pools = build_pools(
            tiny_graph,
            "probabilistic",
            rng=np.random.default_rng(0),
            sample_fraction=0.5,
            fitted=fitted,
        )
        store.put_pools("p" * 32, pools)
        store.memory.clear()
        loaded = store.get_pools("p" * 32)
        assert loaded is not None
        assert loaded.strategy == pools.strategy
        assert loaded.sample_size == pools.sample_size
        for side in ("head", "tail"):
            assert set(loaded.pools[side]) == set(pools.pools[side])
            for relation, pool in pools.pools[side].items():
                np.testing.assert_array_equal(loaded.pools[side][relation], pool)

    def test_candidates_round_trip(self, store, tiny_graph, fitted):
        sets = build_static_candidates(fitted, tiny_graph)
        store.put_candidates("c" * 32, sets)
        store.memory.clear()
        loaded = store.get_candidates("c" * 32)
        assert loaded is not None
        assert loaded.recommender_name == sets.recommender_name
        for side in ("head", "tail"):
            assert loaded.thresholds[side] == pytest.approx(sets.thresholds[side])
            for relation in sets.sets[side]:
                np.testing.assert_array_equal(
                    loaded.candidates(relation, side), sets.candidates(relation, side)
                )

    def test_memory_layer_serves_hits(self, store):
        store.put_json("study", "k" * 32, {"a": 1})
        misses_before = store.memory.misses
        assert store.get_json("study", "k" * 32) == {"a": 1}
        assert store.memory.misses == misses_before  # served from memory

    def test_memory_eviction_falls_back_to_disk(self, tmp_path):
        store = ArtifactStore(tmp_path / "artifacts", max_memory_entries=1)
        store.put_json("study", "a" * 32, {"v": "a"})
        store.put_json("study", "b" * 32, {"v": "b"})  # evicts a
        assert len(store.memory) == 1
        assert store.get_json("study", "a" * 32) == {"v": "a"}


class TestListingAndGC:
    def test_entries_and_delete(self, store):
        store.put_json("study", "a" * 32, {"v": 1}, labels={"dataset": "tiny"})
        store.put_json("truth", "b" * 32, {"v": 2})
        entries = store.entries()
        assert {(e.kind, e.key) for e in entries} == {
            ("study", "a" * 32),
            ("truth", "b" * 32),
        }
        assert entries[0].size_bytes > 0
        assert store.delete("study", "a" * 32)
        assert not store.delete("study", "a" * 32)
        assert store.get_json("study", "a" * 32) is None
        assert len(store.entries()) == 1

    def test_gc_removes_orphans_keeps_valid(self, store):
        store.put_json("study", "a" * 32, {"v": 1})
        # Orphan payload: a write that never committed its sidecar.
        orphan_dir = store.root / "truth" / "cc"
        orphan_dir.mkdir(parents=True)
        orphan = orphan_dir / ("c" * 32 + ".json")
        orphan.write_text("{}", encoding="utf-8")
        # Dangling sidecar: payload vanished.
        dangling_dir = store.root / "pools" / "dd"
        dangling_dir.mkdir(parents=True)
        dangling = dangling_dir / ("d" * 32 + ".meta.json")
        dangling.write_text(
            '{"kind": "pools", "key": "' + "d" * 32 + '", "format": "npz"}',
            encoding="utf-8",
        )
        # Corrupt sidecar: unreadable JSON.
        corrupt_dir = store.root / "model" / "ee"
        corrupt_dir.mkdir(parents=True)
        corrupt = corrupt_dir / ("e" * 32 + ".meta.json")
        corrupt.write_text("not json {", encoding="utf-8")

        report = store.gc()
        assert not orphan.exists() and not dangling.exists() and not corrupt.exists()
        assert report.num_removed == 3
        assert report.freed_bytes > 0
        assert store.get_json("study", "a" * 32) == {"v": 1}

    def test_gc_on_clean_store_is_a_noop(self, store):
        store.put_json("study", "a" * 32, {"v": 1})
        report = store.gc()
        assert report.num_removed == 0 and report.freed_bytes == 0
        assert len(store.entries()) == 1

    def test_torn_payload_reads_as_miss_and_heals(self, store):
        """A truncated payload under an intact sidecar must not brick the key."""
        store.put_json("study", "a" * 32, {"v": 1})
        store.memory.clear()
        payload = store.root / "study" / "aa" / ("a" * 32 + ".json")
        payload.write_text('{"v": 1', encoding="utf-8")  # torn write
        assert store.get_json("study", "a" * 32) is None
        store.put_json("study", "a" * 32, {"v": 2})  # recompute-and-overwrite heals
        store.memory.clear()
        assert store.get_json("study", "a" * 32) == {"v": 2}

    def test_torn_npz_reads_as_miss(self, store):
        model = build_model("distmult", 6, 2, dim=4, seed=0)
        store.put_model("m" * 32, model)
        store.memory.clear()
        payload = store.root / "model" / "mm" / ("m" * 32 + ".npz")
        payload.write_bytes(payload.read_bytes()[:40])  # truncate the archive
        assert store.get_model("m" * 32) is None

    def test_gc_collects_stray_tmp_files(self, store):
        store.put_json("study", "a" * 32, {"v": 1})
        stray = store.root / "study" / "aa" / ("tmp-999-" + "a" * 32 + ".json")
        stray.write_text("partial", encoding="utf-8")
        report = store.gc()
        assert str(stray) in report.removed_payloads
        assert store.get_json("study", "a" * 32) == {"v": 1}

    def test_entries_skips_corrupt_sidecars(self, store):
        store.put_json("study", "a" * 32, {"v": 1})
        bad_dir = store.root / "study" / "zz"
        bad_dir.mkdir(parents=True)
        (bad_dir / ("z" * 32 + ".meta.json")).write_text("not json", encoding="utf-8")
        assert [e.key for e in store.entries()] == ["a" * 32]
