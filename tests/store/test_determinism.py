"""Store round-trip determinism: save → load → re-evaluate, bit-identical.

Extends the checkpoint round-trip guarantee of ``repro.models.io`` to the
store path: a checkpoint pulled back out of the artifact cache scores
exactly like the model that went in, so cached ground truths and fresh
evaluations can never disagree.
"""

import numpy as np

from repro.core.protocol import EvaluationProtocol
from repro.core.ranking import evaluate_full
from repro.models import Trainer, TrainingConfig, build_model
from repro.store import ExperimentStore, model_fingerprint


def _trained_model(graph, seed=0):
    model = build_model(
        "complex", graph.num_entities, graph.num_relations, dim=8, seed=seed
    )
    Trainer(TrainingConfig(epochs=1, lr=0.05, loss="softplus", seed=seed)).fit(
        model, graph
    )
    return model


def test_store_checkpoint_scores_bit_identically(tmp_path, codex_s):
    graph = codex_s.graph
    model = _trained_model(graph)
    store = ExperimentStore(tmp_path / "store")
    store.artifacts.put_model("checkpoint", model)
    store.artifacts.memory.clear()  # force deserialisation from disk
    loaded = store.artifacts.get_model("checkpoint")

    assert model_fingerprint(loaded) == model_fingerprint(model)
    triples = graph.test.array
    original = model.score_triples(
        triples[:, 0], triples[:, 1], triples[:, 2]
    ).data
    restored = loaded.score_triples(
        triples[:, 0], triples[:, 1], triples[:, 2]
    ).data
    np.testing.assert_array_equal(restored, original)


def test_reevaluation_of_loaded_checkpoint_matches(tmp_path, codex_s):
    graph = codex_s.graph
    model = _trained_model(graph)
    store = ExperimentStore(tmp_path / "store")
    store.artifacts.put_model("checkpoint", model)
    store.artifacts.memory.clear()
    loaded = store.artifacts.get_model("checkpoint")

    fresh = evaluate_full(model, graph, split="test")
    replayed = evaluate_full(loaded, graph, split="test")
    assert replayed.ranks == fresh.ranks
    assert replayed.metrics == fresh.metrics


def test_cached_ground_truth_equals_fresh_computation(tmp_path, codex_s):
    """The cache can only ever return what recomputation would produce."""
    graph = codex_s.graph
    model = _trained_model(graph)
    store = ExperimentStore(tmp_path / "store")
    protocol = EvaluationProtocol(
        graph, strategy="random", sample_fraction=0.1, store=store
    )
    cached = protocol.evaluate_full(model)  # miss: computes and persists
    store.artifacts.memory.clear()
    replayed = protocol.evaluate_full(model)  # hit: loaded from disk
    fresh = evaluate_full(model, graph, split="test")
    assert replayed.ranks == fresh.ranks == cached.ranks
    assert replayed.metrics == fresh.metrics
