"""The store wired through the stack: protocol, runner, report layer.

The acceptance headline lives here: a repeated ``run_training_study``
with a warm store performs **zero trainer epochs** and recomputes no
full-ranking ground truth.
"""

import numpy as np
import pytest

import repro.bench.runner as runner_module
from repro.bench.runner import run_training_study
from repro.core.protocol import EvaluationProtocol
from repro.models import build_model
from repro.models.training import Trainer
from repro.store import ExperimentStore, journal_rows, render_cache, render_rows


@pytest.fixture
def store(tmp_path) -> ExperimentStore:
    return ExperimentStore(tmp_path / "store")


STUDY_CONFIG = dict(
    dataset_name="codex-s-lite",
    model_name="distmult",
    epochs=2,
    dim=8,
    sample_fraction=0.1,
    with_kp=False,
    seed=0,
)


class SpyTrainer(Trainer):
    """Counts every fit() call and epoch actually trained."""

    fit_calls = 0
    epochs_trained = 0

    def fit(self, model, graph, callbacks=None):
        SpyTrainer.fit_calls += 1
        history = super().fit(model, graph, callbacks=callbacks)
        SpyTrainer.epochs_trained += len(history.records)
        return history


@pytest.fixture
def spy_trainer(monkeypatch):
    SpyTrainer.fit_calls = 0
    SpyTrainer.epochs_trained = 0
    monkeypatch.setattr(runner_module, "Trainer", SpyTrainer)
    return SpyTrainer


class TestWarmStudy:
    def test_second_run_performs_zero_trainer_epochs(self, store, spy_trainer):
        cold = run_training_study(**STUDY_CONFIG, store=store)
        assert spy_trainer.fit_calls == 1
        assert spy_trainer.epochs_trained == STUDY_CONFIG["epochs"]

        warm = run_training_study(**STUDY_CONFIG, store=store)
        # The headline guarantee: the cache served everything.
        assert spy_trainer.fit_calls == 1
        assert spy_trainer.epochs_trained == STUDY_CONFIG["epochs"]

        assert warm.dataset_name == cold.dataset_name
        assert len(warm.records) == len(cold.records)
        for cold_rec, warm_rec in zip(cold.records, warm.records):
            assert warm_rec.true_metrics == cold_rec.true_metrics
            assert warm_rec.estimated == cold_rec.estimated
            assert warm_rec.true_seconds == cold_rec.true_seconds

    def test_config_change_misses_the_cache(self, store, spy_trainer):
        run_training_study(**STUDY_CONFIG, store=store)
        changed = dict(STUDY_CONFIG, seed=1)
        run_training_study(**changed, store=store)
        assert spy_trainer.fit_calls == 2

    def test_journal_records_hit_and_miss(self, store):
        run_training_study(**STUDY_CONFIG, store=store)
        run_training_study(**STUDY_CONFIG, store=store)
        hits = [r.cache_hit for r in store.journal.records()]
        assert hits == [False, True]
        miss, hit = store.journal.records()
        assert miss.config["dataset"] == "codex-s-lite"
        assert miss.metrics["mrr"] == pytest.approx(hit.metrics["mrr"])

    def test_checkpoint_persisted_on_miss(self, store):
        run_training_study(**STUDY_CONFIG, store=store)
        models = [e for e in store.artifacts.entries() if e.kind == "model"]
        assert len(models) == 1
        loaded = store.artifacts.get_model(models[0].key)
        assert loaded is not None and loaded.name == "distmult"

    def test_warm_study_survives_process_restart(self, tmp_path, spy_trainer):
        run_training_study(**STUDY_CONFIG, store=ExperimentStore(tmp_path / "s"))
        reopened = ExperimentStore(tmp_path / "s")
        run_training_study(**STUDY_CONFIG, store=reopened)
        assert spy_trainer.fit_calls == 1


class TestProtocolStore:
    def test_prepare_restores_pools_and_candidates(self, store, codex_s):
        first = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, store=store,
        )
        report = first.prepare()
        assert not report.from_cache

        second = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, store=store,
        )
        restored = second.prepare()
        assert restored.from_cache
        assert restored.fit_seconds == report.fit_seconds
        assert second.fitted is None  # no refit on the warm path
        for side in ("head", "tail"):
            for relation, pool in first.pools.pools[side].items():
                np.testing.assert_array_equal(second.pools.pools[side][relation], pool)
                np.testing.assert_array_equal(
                    second.candidates.candidates(relation, side),
                    first.candidates.candidates(relation, side),
                )

    def test_cached_prepare_gives_identical_estimates(self, store, codex_s):
        model = build_model(
            "distmult", codex_s.graph.num_entities, codex_s.graph.num_relations,
            dim=8, seed=0,
        )
        cold = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, store=store,
        )
        warm = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, store=store,
        )
        assert warm.evaluate(model).metrics == cold.evaluate(model).metrics

    def test_evaluate_full_is_cached_by_model_state(self, store, codex_s):
        graph = codex_s.graph
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
        protocol = EvaluationProtocol(
            graph, strategy="random", sample_fraction=0.1, store=store
        )
        first = protocol.evaluate_full(model)
        second = protocol.evaluate_full(model)
        assert second.metrics == first.metrics
        assert second.seconds == first.seconds  # replayed artifact, not re-timed
        assert second.ranks == first.ranks
        truths = [e for e in store.artifacts.entries() if e.kind == "truth"]
        assert len(truths) == 1

    def test_resample_refits_when_restored_from_cache(self, store, codex_s):
        EvaluationProtocol(
            codex_s.graph, strategy="probabilistic", sample_fraction=0.1,
            types=codex_s.types, store=store,
        ).prepare()
        warm = EvaluationProtocol(
            codex_s.graph, strategy="probabilistic", sample_fraction=0.1,
            types=codex_s.types, store=store,
        )
        warm.prepare()
        assert warm.fitted is None
        warm.resample(seed=7)  # must refit rather than crash
        assert warm.fitted is not None
        assert warm.pools is not None


def _all_pools(pools) -> np.ndarray:
    """Every pool flattened in a canonical order (for draw comparison).

    Individual (relation, side) pools can saturate — the sample is the
    whole candidate set, identical under any seed — so seed sensitivity
    must be asserted on the full draw.
    """
    return np.concatenate(
        [
            pools.pool(relation, side)
            for side in ("head", "tail")
            for relation in sorted(pools.pools[side])
        ]
    )


class TestResampleSeedKeying:
    """resample(seed) threads the new pool seed into the store cache key."""

    def test_resample_updates_the_preparation_key(self, store, codex_s):
        protocol = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=0, store=store,
        )
        protocol.prepare()
        original_key = protocol._preparation_key()
        protocol.resample(seed=7)
        assert protocol.seed == 7
        assert protocol._preparation_key() != original_key

    def test_resample_does_not_clobber_the_original_draw(self, store, codex_s):
        protocol = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=0, store=store,
        )
        protocol.prepare()
        original = _all_pools(protocol.pools).copy()
        protocol.resample(seed=7)
        resampled = _all_pools(protocol.pools).copy()
        assert not np.array_equal(original, resampled)
        # A fresh seed-0 protocol still restores the *original* pools.
        fresh = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=0, store=store,
        )
        fresh.prepare()
        assert fresh.preparation.from_cache
        assert np.array_equal(_all_pools(fresh.pools), original)

    def test_resampled_draw_is_cached_under_the_new_seed(self, store, codex_s):
        protocol = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=0, store=store,
        )
        protocol.prepare()
        protocol.resample(seed=7)
        resampled = _all_pools(protocol.pools).copy()
        # A fresh seed-7 protocol restores the resampled draw from cache.
        fresh = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=7, store=store,
        )
        fresh.prepare()
        assert fresh.preparation.from_cache
        assert np.array_equal(_all_pools(fresh.pools), resampled)
        # And resampling back to a cached seed restores rather than redraws.
        protocol.resample(seed=0)
        assert protocol.preparation.from_cache

    def test_resample_matches_fresh_prepare_without_store(self, codex_s):
        """The resampled draw equals what prepare(seed) would build."""
        resampled = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=0,
        )
        resampled.prepare()
        resampled.resample(seed=7)
        direct = EvaluationProtocol(
            codex_s.graph, strategy="static", sample_fraction=0.1,
            types=codex_s.types, seed=7,
        )
        direct.prepare()
        assert np.array_equal(_all_pools(resampled.pools), _all_pools(direct.pools))


class TestReportLayer:
    def test_journal_rows_and_formats(self, store):
        run_training_study(**STUDY_CONFIG, store=store)
        run_training_study(**STUDY_CONFIG, store=store)
        rows = journal_rows(store.journal)
        assert [row["Cache"] for row in rows] == ["miss", "hit"]
        assert journal_rows(store.journal, limit=1)[0]["Cache"] == "hit"
        assert journal_rows(store.journal, limit=0) == []

        csv_text = render_rows(rows, fmt="csv")
        assert csv_text.splitlines()[0].startswith("Run,When,Kind,Cache,Seconds")
        json_text = render_rows(rows, fmt="json")
        assert '"Cache": "miss"' in json_text
        with pytest.raises(ValueError):
            render_rows(rows, fmt="yaml")

    def test_cache_listing_renders(self, store):
        run_training_study(**STUDY_CONFIG, store=store)
        text = render_cache(store.artifacts)
        assert "pools" in text and "study" in text and "model" in text
