"""Run journal: append/replay, lookup, corrupt-entry tolerance."""

import json

from repro.store import RunJournal, RunRecord


def test_append_replay_round_trip(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    first = journal.append(
        "training_study",
        config={"dataset": "codex-s-lite", "epochs": 3},
        seconds=1.25,
        metrics={"mrr": 0.4},
    )
    second = journal.append("cli:evaluate", cache_hit=True, note="warm rerun")
    records = journal.records()
    assert [r.run_id for r in records] == [first.run_id, second.run_id]
    assert records[0].config == {"dataset": "codex-s-lite", "epochs": 3}
    assert records[0].seconds == 1.25
    assert records[0].metrics == {"mrr": 0.4}
    assert records[1].cache_hit and records[1].note == "warm rerun"
    assert len(journal) == 2


def test_replay_survives_process_restart(tmp_path):
    path = tmp_path / "journal.jsonl"
    RunJournal(path).append("a")
    RunJournal(path).append("b")
    assert [r.kind for r in RunJournal(path).records()] == ["a", "b"]


def test_corrupt_lines_are_skipped_and_counted(tmp_path):
    path = tmp_path / "journal.jsonl"
    journal = RunJournal(path)
    journal.append("good-1")
    with path.open("a", encoding="utf-8") as handle:
        handle.write("{truncated json\n")
        handle.write('{"valid_json": "but not a record"}\n')
        handle.write("\n")  # blank lines are not corruption
    journal.append("good-2")
    records = journal.records()
    assert [r.kind for r in records] == ["good-1", "good-2"]
    assert journal.last_corrupt_count == 2


def test_get_by_id_and_prefix(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    record = journal.append("training_study")
    assert journal.get(record.run_id) == record
    assert journal.get(record.run_id[:6]) == record
    assert journal.get("nonexistent") is None


def test_tail(tmp_path):
    journal = RunJournal(tmp_path / "journal.jsonl")
    for i in range(5):
        journal.append(f"run-{i}")
    assert [r.kind for r in journal.tail(2)] == ["run-3", "run-4"]
    assert journal.tail(0) == []


def test_record_json_round_trip():
    record = RunRecord(
        run_id="abc123",
        timestamp="2026-07-30T00:00:00",
        kind="test",
        config={"x": 1},
        seconds=0.5,
        metrics={"mrr": 0.2},
        cache_hit=True,
        note="n",
    )
    assert RunRecord.from_json(record.to_json()) == record


def test_spec_field_round_trips(tmp_path):
    """Spec-driven runs journal their originating spec; others omit it."""
    journal = RunJournal(tmp_path / "journal.jsonl")
    spec = {"task": "evaluate", "model": {"name": "distmult", "dim": 8}}
    with_spec = journal.append("cli:run", spec=spec)
    without = journal.append("cli:evaluate")
    records = journal.records()
    assert records[0].spec == spec
    assert records[1].spec is None
    # Non-spec lines stay byte-identical to the pre-spec format.
    assert '"spec"' not in without.to_json()
    assert journal.get(with_spec.run_id).spec == spec


def test_render_run_detail_includes_spec():
    from repro.store import render_run_detail

    record = RunRecord(
        run_id="abc123",
        timestamp="2026-07-30T00:00:00",
        kind="cli:run",
        spec={"task": "train", "model": {"name": "transe"}},
    )
    detail = render_run_detail(record)
    assert '"spec"' in detail and '"transe"' in detail
    plain = RunRecord(run_id="def456", timestamp="t", kind="cli:evaluate")
    assert '"spec"' not in render_run_detail(plain)


def test_obs_field_round_trips(tmp_path):
    """Traced runs journal their span summary; others omit the field."""
    journal = RunJournal(tmp_path / "journal.jsonl")
    obs = {"spans": [{"name": "train.fit", "count": 1, "seconds": 0.5}]}
    traced = journal.append("cli:train", obs=obs)
    plain = journal.append("cli:train")
    records = journal.records()
    assert records[0].obs == obs
    assert records[1].obs is None
    assert '"obs"' not in plain.to_json()
    assert journal.get(traced.run_id).obs == obs


def test_old_format_lines_render_byte_identically():
    """`repro runs show` output for pre-spec / pre-obs journal lines is
    byte-identical to what those records produced before either field
    existed (the backward-compat regression guard)."""
    from repro.store import render_run_detail

    # A line exactly as the pre-PR-5 journal wrote it: no spec, no obs.
    legacy_line = json.dumps(
        {
            "run_id": "0123456789ab",
            "timestamp": "2026-06-01T12:00:00",
            "kind": "cli:evaluate",
            "config": {"dataset": "codex-s-lite", "epochs": 4},
            "seconds": 12.5,
            "metrics": {"mrr": 0.31, "hits@10": 0.5},
            "cache_hit": False,
            "note": "",
        },
        sort_keys=True,
    )
    record = RunRecord.from_json(legacy_line)
    # Re-serialising the replayed record reproduces the original line.
    assert record.to_json() == legacy_line
    # The detail view is exactly the fixed eight-field payload.
    expected = json.dumps(
        {
            "run_id": "0123456789ab",
            "timestamp": "2026-06-01T12:00:00",
            "kind": "cli:evaluate",
            "cache_hit": False,
            "seconds": 12.5,
            "config": {"dataset": "codex-s-lite", "epochs": 4},
            "metrics": {"mrr": 0.31, "hits@10": 0.5},
            "note": "",
        },
        indent=2,
        sort_keys=True,
    )
    assert render_run_detail(record) == expected
    # Spec-era (PR-5) lines without obs also round-trip untouched.
    spec_line = json.dumps(
        json.loads(legacy_line) | {"spec": {"task": "evaluate"}}, sort_keys=True
    )
    assert RunRecord.from_json(spec_line).to_json() == spec_line


def test_render_run_detail_includes_obs():
    from repro.store import render_run_detail

    record = RunRecord(
        run_id="abc123",
        timestamp="t",
        kind="cli:train",
        obs={"spans": [{"name": "train.fit", "count": 1, "seconds": 1.0}]},
    )
    detail = render_run_detail(record)
    assert '"obs"' in detail and '"train.fit"' in detail
    plain = RunRecord(run_id="def456", timestamp="t", kind="cli:train")
    assert '"obs"' not in render_run_detail(plain)
