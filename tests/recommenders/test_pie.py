"""PIE: the learned recommender's contracts (slow path kept tiny)."""

import numpy as np
import pytest

from repro.kg.graph import HEAD, TAIL
from repro.recommenders import PIE, PseudoTyped


@pytest.fixture(scope="module")
def fitted(codex_s_module):
    return PIE(epochs=8, hidden_dim=16, seed=0).fit(codex_s_module.graph)


@pytest.fixture(scope="module")
def codex_s_module():
    from repro.datasets import load

    return load("codex-s-lite")


class TestPIE:
    def test_validation(self):
        with pytest.raises(ValueError):
            PIE(mask_fraction=1.5)

    def test_shape(self, fitted, codex_s_module):
        graph = codex_s_module.graph
        assert fitted.matrix.shape == (graph.num_entities, 2 * graph.num_relations)

    def test_seen_slots_kept_at_full_score(self, fitted, codex_s_module):
        """Observed membership is never forgotten (score >= 1)."""
        graph = codex_s_module.graph
        pt = PseudoTyped().fit(graph)
        for relation in (0, 1):
            for side in (HEAD, TAIL):
                seen = pt.column_support(relation, side)
                column = fitted.column(relation, side)
                assert (column[seen] >= 1.0).all()

    def test_predicts_unseen_slots(self, fitted, codex_s_module):
        """The learned model must generalise beyond PT's support."""
        graph = codex_s_module.graph
        pt = PseudoTyped().fit(graph)
        extra = 0
        for relation in range(graph.num_relations):
            for side in (HEAD, TAIL):
                extra += fitted.column_support(relation, side).size - pt.column_support(
                    relation, side
                ).size
        assert extra > 0

    def test_scores_bounded_by_probability_or_seen(self, fitted):
        assert fitted.matrix.data.max() <= 1.0 + 1e-9

    def test_deterministic_given_seed(self, codex_s_module):
        graph = codex_s_module.graph
        a = PIE(epochs=2, hidden_dim=8, seed=3).fit(graph)
        b = PIE(epochs=2, hidden_dim=8, seed=3).fit(graph)
        assert (a.matrix != b.matrix).nnz == 0

    def test_fit_slower_than_lwd(self, fitted, codex_s_module):
        """The Table 5 cost story: learned >> closed-form."""
        from repro.recommenders import LinearWD

        lwd = LinearWD().fit(codex_s_module.graph)
        assert fitted.fit_seconds > lwd.fit_seconds
