"""FittedRecommender and incidence-matrix plumbing."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.kg.graph import HEAD, TAIL
from repro.recommenders import (
    FittedRecommender,
    binary_incidence,
    column_index,
    count_incidence,
)


class TestColumnIndex:
    def test_domains_then_ranges(self):
        assert column_index(0, HEAD, 5) == 0
        assert column_index(4, HEAD, 5) == 4
        assert column_index(0, TAIL, 5) == 5
        assert column_index(4, TAIL, 5) == 9

    def test_out_of_range_rejected(self):
        with pytest.raises(IndexError):
            column_index(5, HEAD, 5)


class TestIncidence:
    def test_binary_marks_seen_slots(self, tiny_graph):
        b = binary_incidence(tiny_graph)
        assert b.shape == (6, 6)
        assert b[0, 0] == 1.0  # e0 head of likes
        assert b[1, 0 + 3] == 1.0  # e1 tail of likes
        assert b[3, 0] == 0.0  # e3 never heads likes

    def test_binary_collapses_duplicates(self, tiny_graph):
        b = binary_incidence(tiny_graph)
        assert b[0, 0] == 1.0  # e0 heads likes twice, still 1

    def test_counts_keep_multiplicity(self, tiny_graph):
        c = count_incidence(tiny_graph)
        assert c[0, 0] == 2.0
        assert c[2, 0 + 3] == 2.0  # e2 is a likes-tail twice

    def test_only_train_split_counts(self, tiny_graph):
        b = binary_incidence(tiny_graph)
        assert b[3, 0 + 3] == 0.0  # e3 is a likes-tail only in test


class TestFittedRecommender:
    def _fitted(self, tiny_graph):
        return FittedRecommender(
            matrix=binary_incidence(tiny_graph).tocsr(),
            name="pt",
            num_relations=tiny_graph.num_relations,
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="columns"):
            FittedRecommender(matrix=sp.csr_matrix((4, 5)), name="x", num_relations=3)

    def test_negative_scores_rejected(self):
        bad = sp.csr_matrix(np.array([[-1.0, 0.0]]))
        with pytest.raises(ValueError, match="non-negative"):
            FittedRecommender(matrix=bad, name="x", num_relations=1)

    def test_column_dense_vector(self, tiny_graph):
        fitted = self._fitted(tiny_graph)
        col = fitted.column(0, HEAD)
        assert col.shape == (6,)
        assert col[0] == 1.0 and col[1] == 1.0 and col[3] == 0.0

    def test_column_support_sorted(self, tiny_graph):
        fitted = self._fitted(tiny_graph)
        support = fitted.column_support(0, TAIL)
        assert support.tolist() == [1, 2]

    def test_probabilities_normalise(self, tiny_graph):
        fitted = self._fitted(tiny_graph)
        probs = fitted.column_probabilities(0, HEAD)
        assert probs.sum() == pytest.approx(1.0)
        assert probs[3] == 0.0

    def test_empty_column_falls_back_to_uniform(self, tiny_graph):
        matrix = sp.csr_matrix((6, 6))
        fitted = FittedRecommender(matrix=matrix, name="empty", num_relations=3)
        probs = fitted.column_probabilities(0, HEAD)
        np.testing.assert_allclose(probs, np.full(6, 1 / 6))

    def test_zero_mask_complements_support(self, tiny_graph):
        fitted = self._fitted(tiny_graph)
        mask = fitted.zero_mask(0, TAIL)
        assert mask.sum() == 6 - 2
        assert not mask[1] and not mask[2]

    def test_score_of_single_cell(self, tiny_graph):
        fitted = self._fitted(tiny_graph)
        assert fitted.score_of(0, 0, HEAD) == 1.0
        assert fitted.score_of(3, 0, HEAD) == 0.0

    def test_typed_recommenders_demand_types(self, tiny_graph):
        from repro.recommenders import build_recommender

        for name in ("dbh-t", "ontosim", "l-wd-t"):
            with pytest.raises(ValueError, match="types"):
                build_recommender(name).fit(tiny_graph, types=None)
