"""PT, DBH, DBH-T, OntoSim: the heuristic recommenders' defining properties."""

import numpy as np
import pytest

from repro.kg.graph import HEAD, TAIL
from repro.kg.typing import build_type_store
from repro.recommenders import (
    DegreeBased,
    DegreeBasedTyped,
    OntoSim,
    PseudoTyped,
    build_recommender,
    type_slot_evidence,
)

MELINDA, BILL, MICROSOFT, WASHINGTON, JENNIFER, US = range(6)
DIVORCED, FOUNDER, BORN_IN, DAUGHTER, LOCATED = range(5)


@pytest.fixture
def gates_types():
    return build_type_store(
        {
            MELINDA: ["Person"],
            BILL: ["Person"],
            JENNIFER: ["Person"],
            MICROSOFT: ["Org"],
            WASHINGTON: ["Place"],
            US: ["Place"],
        }
    )


class TestPseudoTyped:
    def test_scores_are_binary_seen_flags(self, gates_graph):
        fitted = PseudoTyped().fit(gates_graph)
        assert fitted.score_of(BILL, FOUNDER, HEAD) == 1.0
        assert fitted.score_of(JENNIFER, FOUNDER, HEAD) == 0.0

    def test_cannot_propose_unseen(self, gates_graph):
        """PT's structural blind spot: CR Unseen = 0 by construction."""
        fitted = PseudoTyped().fit(gates_graph)
        # Melinda is a person but never seen as bornIn-head.
        assert fitted.score_of(MELINDA, BORN_IN, HEAD) == 0.0


class TestDBH:
    def test_scores_are_occurrence_counts(self, tiny_graph):
        fitted = DegreeBased().fit(tiny_graph)
        assert fitted.score_of(0, 0, HEAD) == 2.0  # e0 heads likes twice
        assert fitted.score_of(2, 0, TAIL) == 2.0

    def test_support_equals_pt_support(self, gates_graph):
        """DBH is upper-bounded by PT: identical non-zero pattern."""
        pt = PseudoTyped().fit(gates_graph)
        dbh = DegreeBased().fit(gates_graph)
        for relation in range(gates_graph.num_relations):
            for side in (HEAD, TAIL):
                np.testing.assert_array_equal(
                    pt.column_support(relation, side),
                    dbh.column_support(relation, side),
                )


class TestTypeSlotEvidence:
    def test_marks_types_seen_on_slots(self, gates_graph, gates_types):
        evidence = type_slot_evidence(gates_graph, gates_types)
        person = gates_types.types.id_of("Person")
        place = gates_types.types.id_of("Place")
        assert evidence[person, DIVORCED] == 1.0  # persons head divorcedWith
        assert evidence[place, DIVORCED] == 0.0

    def test_binary_even_with_repeats(self, gates_graph, gates_types):
        evidence = type_slot_evidence(gates_graph, gates_types)
        assert evidence.max() == 1.0


class TestDBHT:
    def test_generalises_to_unseen_entities(self, gates_graph, gates_types):
        fitted = DegreeBasedTyped().fit(gates_graph, gates_types)
        # Melinda (Person) inherits bornIn-head evidence from Bill/Jennifer.
        assert fitted.score_of(MELINDA, BORN_IN, HEAD) > 0.0

    def test_score_counts_matching_types(self, gates_graph, gates_types):
        fitted = DegreeBasedTyped().fit(gates_graph, gates_types)
        # Washington is a Place; Places are locatedIn-heads (Washington itself).
        assert fitted.score_of(US, LOCATED, HEAD) == 1.0


class TestOntoSim:
    def test_binary_closure(self, gates_graph, gates_types):
        fitted = OntoSim().fit(gates_graph, gates_types)
        assert set(np.unique(fitted.matrix.data)) <= {1.0}

    def test_superset_of_pt_support(self, gates_graph, gates_types):
        """Everything seen is type-compatible with itself, so OntoSim's
        candidate sets contain PT's."""
        pt = PseudoTyped().fit(gates_graph)
        onto = OntoSim().fit(gates_graph, gates_types)
        for relation in range(gates_graph.num_relations):
            for side in (HEAD, TAIL):
                pt_support = set(pt.column_support(relation, side).tolist())
                onto_support = set(onto.column_support(relation, side).tolist())
                assert pt_support <= onto_support

    def test_whole_type_included(self, gates_graph, gates_types):
        fitted = OntoSim().fit(gates_graph, gates_types)
        # All three Persons belong to D(divorcedWith) via the closure.
        support = set(fitted.column_support(DIVORCED, HEAD).tolist())
        assert {MELINDA, BILL, JENNIFER} <= support


class TestRegistry:
    def test_all_seven_available(self):
        from repro.recommenders import available_recommenders

        assert available_recommenders() == [
            "dbh",
            "dbh-t",
            "l-wd",
            "l-wd-t",
            "ontosim",
            "pie",
            "pt",
        ]

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            build_recommender("gnn-xxl")

    def test_pie_accepts_config(self):
        pie = build_recommender("pie", epochs=3, hidden_dim=8)
        assert pie.epochs == 3

    def test_lwd_rejects_kwargs(self):
        with pytest.raises(TypeError):
            build_recommender("l-wd", epochs=3)
