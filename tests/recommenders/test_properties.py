"""Property-based invariants of the recommenders on random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import KnowledgeGraph, TripleSet, Vocabulary
from repro.kg.graph import HEAD, TAIL
from repro.recommenders import (
    DegreeBased,
    LinearWD,
    PseudoTyped,
    binary_incidence,
    confidence_matrix,
)


def random_graph(seed: int, num_entities: int = 20, num_relations: int = 4, num_triples: int = 60):
    rng = np.random.default_rng(seed)
    triples = np.stack(
        [
            rng.integers(num_entities, size=num_triples),
            rng.integers(num_relations, size=num_triples),
            rng.integers(num_entities, size=num_triples),
        ],
        axis=1,
    )
    return KnowledgeGraph(
        entities=Vocabulary(f"e{i}" for i in range(num_entities)),
        relations=Vocabulary(f"r{i}" for i in range(num_relations)),
        train=TripleSet(triples),
        name=f"random-{seed}",
    )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_confidences_are_probabilities(seed):
    """Every entry of the row-normalised co-occurrence matrix is in [0, 1]."""
    graph = random_graph(seed)
    w = confidence_matrix(binary_incidence(graph))
    dense = w.toarray()
    assert dense.min() >= 0.0
    assert dense.max() <= 1.0 + 1e-12


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_lwd_support_contains_pt_support(seed):
    """X = BW fires at least the self-rule, so PT support ⊆ L-WD support."""
    graph = random_graph(seed)
    pt = PseudoTyped().fit(graph)
    lwd = LinearWD().fit(graph)
    for relation in range(graph.num_relations):
        for side in (HEAD, TAIL):
            pt_support = set(pt.column_support(relation, side).tolist())
            lwd_support = set(lwd.column_support(relation, side).tolist())
            assert pt_support <= lwd_support


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_lwd_scores_nonnegative(seed):
    graph = random_graph(seed)
    lwd = LinearWD().fit(graph)
    assert lwd.matrix.data.min() >= 0.0 if lwd.matrix.nnz else True


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_dbh_counts_sum_to_triples(seed):
    """DBH's column sums count every training triple exactly twice
    (once per side)."""
    graph = random_graph(seed)
    dbh = DegreeBased().fit(graph)
    assert dbh.matrix.sum() == 2 * len(graph.train)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_probabilities_match_support(seed):
    """Probability mass lives exactly on the non-zero support."""
    graph = random_graph(seed)
    lwd = LinearWD().fit(graph)
    for relation in range(graph.num_relations):
        probs = lwd.column_probabilities(relation, TAIL)
        support = lwd.column_support(relation, TAIL)
        assert probs.sum() == pytest.approx(1.0)
        if support.size:
            mask = np.zeros(graph.num_entities, dtype=bool)
            mask[support] = True
            assert probs[~mask].sum() == pytest.approx(0.0)
