"""L-WD on the paper's Figure 2 toy KG — hand-computed confidences.

Entity / relation ids in the ``gates_graph`` fixture (insertion order):
Melinda=0, Bill=1, Microsoft=2, Washington=3, Jennifer=4, US=5;
divorcedWith=0, founderOf=1, bornIn=2, daughterOf=3, locatedIn=4.
"""

import numpy as np
import pytest

from repro.kg.graph import HEAD, TAIL
from repro.kg.typing import build_type_store
from repro.recommenders import LinearWD, binary_incidence, confidence_matrix

MELINDA, BILL, MICROSOFT, WASHINGTON, JENNIFER, US = range(6)
DIVORCED, FOUNDER, BORN_IN, DAUGHTER, LOCATED = range(5)


@pytest.fixture
def fitted(gates_graph):
    return LinearWD().fit(gates_graph)


class TestConfidenceMatrix:
    def test_figure2_confidences(self, gates_graph):
        """The 0.5 / 1.0 edges drawn in the paper's co-occurrence graph."""
        w = confidence_matrix(binary_incidence(gates_graph))
        num_r = gates_graph.num_relations
        d = lambda r: r
        r_ = lambda r: r + num_r
        # D(divorcedWith) -> D(founderOf): only Bill of {Melinda, Bill} founded.
        assert w[d(DIVORCED), d(FOUNDER)] == pytest.approx(0.5)
        # D(founderOf) -> D(divorcedWith): Bill, its only member, divorced.
        assert w[d(FOUNDER), d(DIVORCED)] == pytest.approx(1.0)
        # D(divorcedWith) <-> R(divorcedWith): same two people.
        assert w[d(DIVORCED), r_(DIVORCED)] == pytest.approx(1.0)
        # R(locatedIn) shares nobody with D(divorcedWith).
        assert w[r_(LOCATED), d(DIVORCED)] == pytest.approx(0.0)
        # Diagonal of every non-empty slot is 1.
        assert w[d(BORN_IN), d(BORN_IN)] == pytest.approx(1.0)

    def test_rows_of_empty_slots_stay_zero(self, tiny_graph):
        w = confidence_matrix(binary_incidence(tiny_graph))
        # Relation "made" (id 2) has no heads besides e5; every row is fine,
        # but a wholly absent slot (none here) would be all-zero; check no NaN.
        assert np.isfinite(w.toarray()).all()


class TestLWDScores:
    def test_bill_dominates_founder_domain(self, fitted):
        """Hand-computed: X[Bill, D(founderOf)] = 3.0 (five firing rules)."""
        assert fitted.score_of(BILL, FOUNDER, HEAD) == pytest.approx(3.0)

    def test_unseen_candidate_gets_nonzero_score(self, fitted):
        """Jennifer never divorced, but her slots co-occur with the domain."""
        assert fitted.score_of(JENNIFER, DIVORCED, HEAD) == pytest.approx(0.5)

    def test_easy_negative_scores_zero(self, fitted):
        """The US shares no slot members with D(divorcedWith)."""
        assert fitted.score_of(US, DIVORCED, HEAD) == 0.0

    def test_seen_entities_score_at_least_their_own_rule(self, gates_graph, fitted):
        b = binary_incidence(gates_graph)
        for entity in range(gates_graph.num_entities):
            for col in range(2 * gates_graph.num_relations):
                if b[entity, col]:
                    side = HEAD if col < gates_graph.num_relations else TAIL
                    relation = col % gates_graph.num_relations
                    assert fitted.score_of(entity, relation, side) >= 1.0

    def test_matrix_shape_and_name(self, fitted, gates_graph):
        assert fitted.matrix.shape == (6, 10)
        assert fitted.name == "l-wd"
        assert fitted.fit_seconds >= 0.0


class TestLWDTyped:
    def test_types_extend_reach(self, gates_graph):
        """With Person types, Melinda gains bornIn-domain evidence she
        lacks structurally (she was never born anywhere in the graph)."""
        untyped = LinearWD().fit(gates_graph)
        types = build_type_store(
            {
                MELINDA: ["Person"],
                BILL: ["Person"],
                JENNIFER: ["Person"],
                MICROSOFT: ["Org"],
                WASHINGTON: ["Place"],
                US: ["Place"],
            }
        )
        typed = LinearWD(use_types=True).fit(gates_graph, types)
        assert typed.name == "l-wd-t"
        assert typed.matrix.shape == untyped.matrix.shape
        assert typed.score_of(MELINDA, BORN_IN, HEAD) > untyped.score_of(
            MELINDA, BORN_IN, HEAD
        )

    def test_output_sliced_back_to_relational_columns(self, gates_graph):
        types = build_type_store({i: ["T"] for i in range(6)})
        typed = LinearWD(use_types=True).fit(gates_graph, types)
        assert typed.matrix.shape[1] == 2 * gates_graph.num_relations
