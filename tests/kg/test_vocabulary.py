"""Vocabulary: id assignment, round-trips, equality."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kg import Vocabulary


class TestAdd:
    def test_ids_are_contiguous_from_zero(self):
        vocab = Vocabulary()
        assert vocab.add("a") == 0
        assert vocab.add("b") == 1
        assert vocab.add("c") == 2

    def test_add_is_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add("x")
        assert vocab.add("x") == first
        assert len(vocab) == 1

    def test_constructor_seeds_labels_in_order(self):
        vocab = Vocabulary(["u", "v", "w"])
        assert vocab.ids_of(["u", "v", "w"]) == [0, 1, 2]

    def test_update_adds_everything(self):
        vocab = Vocabulary()
        vocab.update(["a", "b", "a"])
        assert len(vocab) == 2


class TestLookup:
    def test_round_trip(self):
        vocab = Vocabulary(["alpha", "beta"])
        for label in vocab:
            assert vocab.label_of(vocab.id_of(label)) == label

    def test_id_of_missing_raises(self):
        with pytest.raises(KeyError):
            Vocabulary().id_of("ghost")

    def test_get_returns_default_for_missing(self):
        assert Vocabulary().get("ghost") is None
        assert Vocabulary().get("ghost", -1) == -1

    def test_label_of_negative_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(IndexError):
            vocab.label_of(-1)

    def test_label_of_out_of_range_raises(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(IndexError):
            vocab.label_of(5)

    def test_contains(self):
        vocab = Vocabulary(["a"])
        assert "a" in vocab
        assert "b" not in vocab

    def test_labels_returns_id_order(self):
        vocab = Vocabulary(["z", "y", "x"])
        assert vocab.labels() == ("z", "y", "x")

    def test_ids_of_raises_on_unknown(self):
        vocab = Vocabulary(["a"])
        with pytest.raises(KeyError):
            vocab.ids_of(["a", "nope"])


class TestEquality:
    def test_equal_when_same_labels_in_order(self):
        assert Vocabulary(["a", "b"]) == Vocabulary(["a", "b"])

    def test_unequal_when_order_differs(self):
        assert Vocabulary(["a", "b"]) != Vocabulary(["b", "a"])

    def test_not_equal_to_other_types(self):
        assert Vocabulary() != ["a"]


@given(st.lists(st.text(min_size=1, max_size=8)))
def test_property_ids_cover_exact_range(labels):
    vocab = Vocabulary(labels)
    unique = len(set(labels))
    assert len(vocab) == unique
    assert sorted(vocab.id_of(label) for label in set(labels)) == list(range(unique))


@given(st.lists(st.text(min_size=1, max_size=8), unique=True, min_size=1))
def test_property_round_trip_everything(labels):
    vocab = Vocabulary(labels)
    for index, label in enumerate(labels):
        assert vocab.id_of(label) == index
        assert vocab.label_of(index) == label
