"""The compact triple store: CSR equality, round-trips, id dtypes."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.kg import (
    CompactGraph,
    FilterIndexCSR,
    KnowledgeGraph,
    build_filter_csr,
    build_graph,
    id_dtype,
    open_compact,
    save_compact,
    unique_rows_in_order,
)
from repro.kg.graph import INT32_LIMIT


@pytest.fixture
def labelled_triples():
    train = [
        ("a", "likes", "b"),
        ("a", "likes", "c"),
        ("b", "likes", "c"),
        ("d", "knows", "e"),
        ("f", "made", "a"),
    ]
    valid = [("e", "knows", "f")]
    test = [("a", "likes", "d")]
    return train, valid, test


@pytest.fixture
def graph(labelled_triples) -> KnowledgeGraph:
    train, valid, test = labelled_triples
    return build_graph(
        {"train": train, "valid": valid, "test": test}, name="compact-toy"
    )


@pytest.fixture
def compact(graph, tmp_path) -> CompactGraph:
    save_compact(graph, tmp_path / "store")
    return open_compact(tmp_path / "store")


class TestIdDtype:
    def test_small_vocabulary_is_int32(self):
        assert id_dtype(6) == np.dtype(np.int32)
        assert id_dtype(INT32_LIMIT - 1) == np.dtype(np.int32)

    def test_boundary_falls_back_to_int64(self):
        assert id_dtype(INT32_LIMIT) == np.dtype(np.int64)
        assert id_dtype(INT32_LIMIT + 7) == np.dtype(np.int64)

    def test_filter_index_buffers_downcast(self, graph):
        index = graph.filter_index
        for answers in index["head"].values():
            assert answers.dtype == np.int32
        for answers in index["tail"].values():
            assert answers.dtype == np.int32

    def test_observed_buffers_downcast(self, graph):
        assert graph.observed(0, "head").dtype == np.int32


class TestUniqueRowsInOrder:
    def test_keeps_first_occurrence_in_encounter_order(self):
        rows = np.array(
            [[1, 0, 2], [0, 0, 1], [1, 0, 2], [0, 0, 1], [2, 1, 0]],
            dtype=np.int32,
        )
        out = unique_rows_in_order(rows)
        np.testing.assert_array_equal(
            out, np.array([[1, 0, 2], [0, 0, 1], [2, 1, 0]], dtype=np.int32)
        )

    def test_no_duplicates_is_identity(self):
        rows = np.array([[0, 0, 1], [1, 0, 2]], dtype=np.int32)
        np.testing.assert_array_equal(unique_rows_in_order(rows), rows)

    def test_empty(self):
        rows = np.empty((0, 3), dtype=np.int32)
        assert unique_rows_in_order(rows).shape == (0, 3)


class TestBuildFilterCSR:
    """The vectorised CSR build must match the dict-index flatten exactly."""

    def test_matches_dict_filter_index(self, graph):
        csr = build_filter_csr(
            graph.num_entities,
            graph.num_relations,
            [getattr(graph, split).array for split in ("train", "valid", "test")],
        )
        index = graph.filter_index
        for side in ("head", "tail"):
            for (anchor, relation), expected in index[side].items():
                got = csr.true_answers(int(anchor), int(relation), side)
                np.testing.assert_array_equal(got, expected)
                assert got.dtype == expected.dtype

    def test_missing_key_is_empty(self, graph):
        csr = FilterIndexCSR.from_graph(graph)
        assert csr.true_answers(5, 2, "head").size == 0


class TestCompactRoundTrip:
    def test_vocabulary_and_sizes_survive(self, graph, compact):
        assert compact.num_entities == graph.num_entities
        assert compact.num_relations == graph.num_relations
        assert compact.name == graph.name
        assert compact.entity_labels() == list(graph.entities.labels())
        assert compact.relation_labels() == list(graph.relations.labels())

    def test_split_arrays_bitwise_equal(self, graph, compact):
        for split in ("train", "valid", "test"):
            np.testing.assert_array_equal(
                getattr(compact, split).array, getattr(graph, split).array
            )

    def test_stored_ids_are_int32(self, compact):
        assert compact.split_array("train").dtype == np.int32

    def test_triple_sets_are_int64_views(self, compact):
        # Evaluation code consumes TripleSet; materialisation is int64.
        assert compact.train.array.dtype == np.int64

    def test_to_knowledge_graph_round_trips(self, graph, compact):
        back = compact.to_knowledge_graph()
        for split in ("train", "valid", "test"):
            np.testing.assert_array_equal(
                getattr(back, split).array, getattr(graph, split).array
            )
        assert list(back.entities.labels()) == list(graph.entities.labels())

    def test_filter_index_property_serves_csr(self, graph, compact):
        csr = compact.filter_index
        assert csr is compact.filter_csr()
        index = graph.filter_index
        for side in ("head", "tail"):
            for (anchor, relation), expected in index[side].items():
                np.testing.assert_array_equal(
                    compact.true_answers(int(anchor), int(relation), side),
                    expected,
                )

    def test_from_graph_dispatches_to_compact_csr(self, compact):
        assert FilterIndexCSR.from_graph(compact) is compact.filter_csr()

    def test_manifest_validation_rejects_foreign_format(self, tmp_path, graph):
        save_compact(graph, tmp_path / "store")
        manifest_path = tmp_path / "store" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="manifest"):
            open_compact(tmp_path / "store")

    def test_iteration_is_rejected(self, compact):
        # A CompactGraph is not a triple sequence; looping over a
        # million-entity store entity-by-entity is always a bug.
        with pytest.raises(TypeError):
            iter(compact)
