"""Dataset statistics (Table 4 columns)."""

from repro.kg import dataset_statistics, distinct_query_pairs
from repro.kg.typing import build_type_store


class TestStatistics:
    def test_counts_match_graph(self, tiny_graph):
        stats = dataset_statistics(tiny_graph)
        assert stats.num_entities == 6
        assert stats.num_relations == 3
        assert stats.train_triples == 5
        assert stats.valid_triples == 1
        assert stats.test_triples == 1

    def test_types_default_to_zero(self, tiny_graph):
        stats = dataset_statistics(tiny_graph)
        assert stats.num_types == 0
        assert stats.num_type_assignments == 0

    def test_types_counted_when_given(self, tiny_graph):
        store = build_type_store({0: ["A"], 1: ["A", "B"]})
        stats = dataset_statistics(tiny_graph, store)
        assert stats.num_types == 2
        assert stats.num_type_assignments == 3

    def test_pair_counts(self, tiny_graph):
        # train: (h,r) pairs {(0,0),(1,0),(3,1),(5,2)} = 4;
        #        (r,t) pairs {(0,1),(0,2),(1,4),(2,0)} = 4.
        assert stats_pairs(tiny_graph) == 8

    def test_as_row_has_paper_columns(self, tiny_graph):
        row = dataset_statistics(tiny_graph).as_row()
        for column in ("|E|", "|R|", "Train", "Test", "Train pairs", "Test pairs"):
            assert column in row


def stats_pairs(graph):
    return distinct_query_pairs(graph.train)
