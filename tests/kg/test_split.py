"""Splitting: fractions, transductive repair, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kg import SplitFractions, Vocabulary, random_split, split_graph, transductive_split


def _triples(n: int, num_entities: int = 50, num_relations: int = 5, seed: int = 0):
    rng = np.random.default_rng(seed)
    return np.stack(
        [
            rng.integers(num_entities, size=n),
            rng.integers(num_relations, size=n),
            rng.integers(num_entities, size=n),
        ],
        axis=1,
    )


class TestFractions:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SplitFractions(valid=-0.1)

    def test_sum_to_one_rejected(self):
        with pytest.raises(ValueError):
            SplitFractions(valid=0.5, test=0.5)


class TestRandomSplit:
    def test_partition_sizes(self, rng):
        triples = _triples(1000)
        train, valid, test = random_split(triples, SplitFractions(0.1, 0.2), rng)
        assert len(valid) == 100
        assert len(test) == 200
        assert len(train) == 700

    def test_partition_is_disjoint_and_complete(self, rng):
        triples = _triples(300)
        train, valid, test = random_split(triples, SplitFractions(0.1, 0.1), rng)
        recombined = np.concatenate([train, valid, test], axis=0)
        assert sorted(map(tuple, recombined)) == sorted(map(tuple, triples))


class TestTransductiveSplit:
    def test_valid_test_are_covered_by_train(self, rng):
        triples = _triples(500, num_entities=40)
        train, valid, test = transductive_split(triples, SplitFractions(0.1, 0.1), rng)
        seen_entities = set(train[:, 0]) | set(train[:, 2])
        seen_relations = set(train[:, 1])
        for split in (valid, test):
            for h, r, t in split:
                assert h in seen_entities and t in seen_entities
                assert r in seen_relations

    def test_nothing_lost(self, rng):
        triples = _triples(500)
        train, valid, test = transductive_split(triples, SplitFractions(0.1, 0.1), rng)
        assert len(train) + len(valid) + len(test) == 500


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(50, 400))
def test_property_transductive_coverage(seed, n):
    rng = np.random.default_rng(seed)
    triples = _triples(n, num_entities=30, num_relations=4, seed=seed)
    train, valid, test = transductive_split(triples, SplitFractions(0.1, 0.1), rng)
    seen_entities = set(train[:, 0]) | set(train[:, 2])
    seen_relations = set(train[:, 1])
    for split in (valid, test):
        for h, r, t in split:
            assert h in seen_entities and t in seen_entities and r in seen_relations


class TestSplitGraph:
    def test_builds_validated_graph(self, rng):
        triples = _triples(200, num_entities=30, num_relations=3)
        graph = split_graph(
            entities=Vocabulary(f"e{i}" for i in range(30)),
            relations=Vocabulary(f"r{i}" for i in range(3)),
            triples=triples,
            fractions=SplitFractions(0.05, 0.05),
            rng=rng,
            name="built",
        )
        assert graph.name == "built"
        assert len(graph.all_triples) == 200
