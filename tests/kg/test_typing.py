"""TypeStore: membership, matrices, corruption knobs."""

import numpy as np
import pytest

from repro.kg import Vocabulary, build_type_store
from repro.kg.typing import TypeStore


@pytest.fixture
def store():
    return build_type_store(
        {0: ["Person"], 1: ["Person", "Author"], 2: ["City"], 4: []}
    )


class TestBasics:
    def test_counts(self, store):
        assert store.num_types == 3
        assert store.num_assignments == 4

    def test_types_of(self, store):
        assert store.types_of(1) == (0, 1)
        assert store.types_of(99) == ()

    def test_entities_of_type(self, store):
        person = store.types.id_of("Person")
        assert store.entities_of_type(person).tolist() == [0, 1]

    def test_membership_matrix(self, store):
        matrix = store.membership_matrix(num_entities=5)
        assert matrix.shape == (5, 3)
        assert matrix.nnz == 4
        assert matrix[1, 0] == 1.0 and matrix[1, 1] == 1.0

    def test_build_with_shared_vocabulary(self):
        vocab = Vocabulary(["X"])
        store = build_type_store({0: ["Y"]}, types=vocab)
        assert store.types.id_of("Y") == 1  # appended after X


class TestDropFraction:
    def test_drop_zero_keeps_all(self, store, rng):
        dropped = store.drop_fraction(0.0, rng)
        assert dropped.num_assignments == store.num_assignments

    def test_drop_all_removes_everything(self, store, rng):
        dropped = store.drop_fraction(1.0, rng)
        assert dropped.num_assignments == 0

    def test_drop_partial_is_between(self, rng):
        big = build_type_store({i: ["T"] for i in range(1000)})
        dropped = big.drop_fraction(0.5, rng)
        assert 350 < dropped.num_assignments < 650

    def test_invalid_fraction_rejected(self, store, rng):
        with pytest.raises(ValueError):
            store.drop_fraction(1.5, rng)


class TestCorruptFraction:
    def test_corrupt_zero_is_identity(self, store, rng):
        corrupted = store.corrupt_fraction(0.0, rng)
        assert corrupted.assignments == store.assignments

    def test_corrupt_changes_types_but_not_counts(self, rng):
        big = build_type_store({i: ["A"] for i in range(500)} | {999: ["B"]})
        corrupted = big.corrupt_fraction(1.0, rng)
        # Every A assignment replaced by the only other type, B.
        assert all(
            ts == (big.types.id_of("B"),)
            for e, ts in corrupted.assignments.items()
            if e != 999
        )

    def test_single_type_store_cannot_corrupt(self, rng):
        single = build_type_store({0: ["Only"]})
        assert single.corrupt_fraction(1.0, rng) is single

    def test_invalid_fraction_rejected(self, store, rng):
        with pytest.raises(ValueError):
            store.corrupt_fraction(-0.1, rng)
