"""TSV IO: round-trips, error reporting, partial type coverage."""

import pytest

from repro.kg import build_graph, build_type_store
from repro.kg.io import (
    load_graph_dir,
    read_triples,
    read_types,
    save_graph_dir,
    write_triples,
    write_types,
)


class TestTripleIO:
    def test_round_trip(self, tmp_path):
        triples = [("a", "r", "b"), ("b", "r", "c")]
        path = tmp_path / "triples.tsv"
        write_triples(path, triples)
        assert read_triples(path) == triples

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "triples.tsv"
        path.write_text("a\tr\tb\n\nb\tr\tc\n")
        assert len(read_triples(path)) == 2

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("a\tr\tb\na\tb\n")
        with pytest.raises(ValueError, match=":2"):
            read_triples(path)


class TestGraphDirIO:
    def test_round_trip(self, tmp_path, tiny_graph):
        save_graph_dir(tiny_graph, tmp_path / "kg")
        loaded = load_graph_dir(tmp_path / "kg", name="tiny")
        assert loaded.num_entities == tiny_graph.num_entities
        assert len(loaded.train) == len(tiny_graph.train)
        assert len(loaded.valid) == len(tiny_graph.valid)
        assert len(loaded.test) == len(tiny_graph.test)

    def test_missing_optional_splits(self, tmp_path):
        directory = tmp_path / "kg"
        directory.mkdir()
        (directory / "train.tsv").write_text("a\tr\tb\n")
        graph = load_graph_dir(directory)
        assert len(graph.train) == 1
        assert len(graph.valid) == 0

    def test_missing_train_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_graph_dir(tmp_path / "empty")

    def test_directory_name_is_default_graph_name(self, tmp_path, tiny_graph):
        save_graph_dir(tiny_graph, tmp_path / "mygraph")
        assert load_graph_dir(tmp_path / "mygraph").name == "mygraph"


class TestTypeIO:
    def test_round_trip(self, tmp_path):
        graph = build_graph({"train": [("a", "r", "b")]})
        store = build_type_store({0: ["Person"], 1: ["City"]})
        path = tmp_path / "types.tsv"
        write_types(path, store, graph.entities)
        loaded = read_types(path, graph.entities)
        assert loaded.types_of(0) == (loaded.types.id_of("Person"),)
        assert loaded.num_assignments == 2

    def test_unknown_entities_skipped_by_default(self, tmp_path):
        graph = build_graph({"train": [("a", "r", "b")]})
        path = tmp_path / "types.tsv"
        path.write_text("a\tPerson\nghost\tCity\n")
        loaded = read_types(path, graph.entities)
        assert loaded.num_assignments == 1

    def test_strict_mode_raises_on_unknown(self, tmp_path):
        graph = build_graph({"train": [("a", "r", "b")]})
        path = tmp_path / "types.tsv"
        path.write_text("ghost\tCity\n")
        with pytest.raises(KeyError):
            read_types(path, graph.entities, strict=True)

    def test_malformed_type_line_reports_location(self, tmp_path):
        graph = build_graph({"train": [("a", "r", "b")]})
        path = tmp_path / "types.tsv"
        path.write_text("a\tPerson\textra\n")
        with pytest.raises(ValueError, match=":1"):
            read_types(path, graph.entities)
