"""Graph analysis: cardinality classification, PT exposure, connectivity."""

import numpy as np
import pytest

from repro.datasets.schema import Cardinality
from repro.kg import HEAD, TAIL, build_graph
from repro.kg.analysis import (
    classify_cardinality,
    connectivity_summary,
    relation_profiles,
    unseen_candidate_exposure,
)


class TestClassify:
    def test_four_quadrants(self):
        assert classify_cardinality(1.0, 1.0) is Cardinality.ONE_TO_ONE
        assert classify_cardinality(3.0, 1.0) is Cardinality.ONE_TO_MANY
        assert classify_cardinality(1.0, 3.0) is Cardinality.MANY_TO_ONE
        assert classify_cardinality(3.0, 3.0) is Cardinality.MANY_TO_MANY

    def test_threshold_is_exclusive(self):
        assert classify_cardinality(1.5, 1.5) is Cardinality.ONE_TO_ONE


class TestRelationProfiles:
    def test_hand_built_graph(self):
        graph = build_graph(
            {
                "train": [
                    # "hasChild": one head, three tails -> 1-M.
                    ("a", "hasChild", "x"),
                    ("a", "hasChild", "y"),
                    ("a", "hasChild", "z"),
                    # "bornIn": three heads, one tail -> M-1.
                    ("x", "bornIn", "town"),
                    ("y", "bornIn", "town"),
                    ("z", "bornIn", "town"),
                ]
            }
        )
        profiles = {p.name: p for p in relation_profiles(graph)}
        assert profiles["hasChild"].cardinality is Cardinality.ONE_TO_MANY
        assert profiles["hasChild"].tails_per_head == pytest.approx(3.0)
        assert profiles["bornIn"].cardinality is Cardinality.MANY_TO_ONE
        assert profiles["bornIn"].heads_per_tail == pytest.approx(3.0)

    def test_empty_relation(self, tiny_graph):
        profiles = relation_profiles(tiny_graph)
        assert len(profiles) == tiny_graph.num_relations
        assert all(p.num_triples >= 0 for p in profiles)

    def test_generator_cardinalities_recovered(self, small_dataset):
        """The generator's 1-1 relations look 1-1 empirically."""
        from repro.datasets.schema import Cardinality as C

        profiles = relation_profiles(small_dataset.graph)
        for profile, schema in zip(profiles, small_dataset.schemas):
            if schema.cardinality is C.ONE_TO_ONE and profile.num_triples > 20:
                # Noise triples can nudge the averages slightly above 1.
                assert profile.tails_per_head < 1.5
                assert profile.heads_per_tail < 1.5


class TestUnseenExposure:
    def test_tiny_graph_exposure(self, tiny_graph):
        # Test triple (0, likes, 3): head e0 was seen as a likes-head,
        # tail e3 never as a likes-tail.
        exposure = unseen_candidate_exposure(tiny_graph)
        assert exposure[HEAD] == 0.0
        assert exposure[TAIL] == 1.0

    def test_bounded(self, codex_s):
        exposure = unseen_candidate_exposure(codex_s.graph)
        assert 0.0 <= exposure[HEAD] <= 1.0
        assert 0.0 <= exposure[TAIL] <= 1.0


class TestConnectivity:
    def test_connected_toy(self, gates_graph):
        summary = connectivity_summary(gates_graph)
        assert summary.num_components == 1
        assert summary.largest_component == gates_graph.num_entities

    def test_disconnected_components_counted(self):
        graph = build_graph(
            {"train": [("a", "r", "b"), ("c", "r", "d")]}
        )
        summary = connectivity_summary(graph)
        assert summary.num_components == 2
        assert summary.largest_component == 2

    def test_density_in_unit_interval(self, codex_s):
        summary = connectivity_summary(codex_s.graph)
        assert 0.0 < summary.density < 1.0
