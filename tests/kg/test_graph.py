"""TripleSet and KnowledgeGraph: immutability, indexes, filtered lookups."""

import numpy as np
import pytest

from repro.kg import HEAD, TAIL, KnowledgeGraph, TripleSet, Vocabulary, build_graph


class TestTripleSet:
    def test_empty_has_shape(self):
        ts = TripleSet([])
        assert len(ts) == 0
        assert ts.array.shape == (0, 3)

    def test_array_is_read_only(self):
        ts = TripleSet([(0, 0, 1)])
        with pytest.raises(ValueError):
            ts.array[0, 0] = 5

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            TripleSet(np.zeros((3, 2), dtype=np.int64))

    def test_columns(self):
        ts = TripleSet([(1, 2, 3), (4, 5, 6)])
        assert ts.heads.tolist() == [1, 4]
        assert ts.relations.tolist() == [2, 5]
        assert ts.tails.tolist() == [3, 6]

    def test_entities_by_side(self):
        ts = TripleSet([(1, 0, 2)])
        assert ts.entities(HEAD).tolist() == [1]
        assert ts.entities(TAIL).tolist() == [2]

    def test_unique_pairs_counts_queries(self):
        # Two triples share the (h, r) pair; (r, t) pairs are distinct.
        ts = TripleSet([(0, 0, 1), (0, 0, 2)])
        assert ts.unique_pairs(TAIL) == 1  # distinct (h, r)
        assert ts.unique_pairs(HEAD) == 2  # distinct (r, t)

    def test_contains(self):
        ts = TripleSet([(0, 1, 2)])
        assert (0, 1, 2) in ts
        assert (2, 1, 0) not in ts
        assert "nope" not in ts

    def test_concat_and_subset(self):
        a = TripleSet([(0, 0, 1)])
        b = TripleSet([(1, 0, 2)])
        both = a.concat(b)
        assert len(both) == 2
        assert both.subset(np.array([False, True])).as_tuples() == [(1, 0, 2)]

    def test_iteration_yields_python_ints(self):
        for h, r, t in TripleSet([(0, 1, 2)]):
            assert all(isinstance(x, int) for x in (h, r, t))


class TestValidation:
    def test_out_of_vocab_entity_rejected(self):
        with pytest.raises(ValueError, match="entities"):
            KnowledgeGraph(
                entities=Vocabulary(["a"]),
                relations=Vocabulary(["r"]),
                train=TripleSet([(0, 0, 7)]),
            )

    def test_out_of_vocab_relation_rejected(self):
        with pytest.raises(ValueError, match="relations"):
            KnowledgeGraph(
                entities=Vocabulary(["a", "b"]),
                relations=Vocabulary(["r"]),
                train=TripleSet([(0, 3, 1)]),
            )


class TestFilterIndex:
    def test_true_answers_cover_all_splits(self, tiny_graph):
        # e0 -likes-> {e1, e2} in train and e3 in test.
        answers = tiny_graph.true_answers(0, 0, TAIL)
        assert answers.tolist() == [1, 2, 3]

    def test_head_side_is_inverse(self, tiny_graph):
        # heads of (?, likes, e2) are e0 and e1.
        assert tiny_graph.true_answers(2, 0, HEAD).tolist() == [0, 1]

    def test_unknown_query_is_empty(self, tiny_graph):
        assert tiny_graph.true_answers(5, 1, TAIL).size == 0

    def test_answers_are_sorted_unique(self, tiny_graph):
        for side in (HEAD, TAIL):
            for key, values in tiny_graph.filter_index[side].items():
                assert np.all(np.diff(values) > 0), key


class TestObserved:
    def test_observed_uses_train_only(self, tiny_graph):
        # e3 appears as a likes-tail only in test, so not observed.
        assert tiny_graph.observed(0, TAIL).tolist() == [1, 2]

    def test_observed_heads(self, tiny_graph):
        assert tiny_graph.observed(0, HEAD).tolist() == [0, 1]

    def test_observed_missing_relation_is_empty(self, tiny_graph):
        assert tiny_graph.observed(2, TAIL).tolist() == [0]
        assert tiny_graph.observed(1, TAIL).tolist() == [4]


class TestDegreeCounts:
    def test_counts_match_manual(self, tiny_graph):
        counts = tiny_graph.degree_counts(HEAD)
        assert counts.shape == (6, 3)
        assert counts[0, 0] == 2  # e0 heads likes twice
        assert counts[3, 1] == 1
        assert counts.sum() == len(tiny_graph.train)

    def test_relation_counts(self, tiny_graph):
        assert tiny_graph.relation_counts().tolist() == [3, 1, 1]


class TestBuildGraph:
    def test_vocabularies_accumulate_across_splits(self):
        graph = build_graph(
            {
                "train": [("a", "r", "b")],
                "test": [("a", "r", "c")],
            }
        )
        assert graph.num_entities == 3
        assert len(graph.test) == 1

    def test_all_triples_concatenates(self, tiny_graph):
        assert len(tiny_graph.all_triples) == 7

    def test_relabel_keeps_data(self, tiny_graph):
        renamed = tiny_graph.relabel("other")
        assert renamed.name == "other"
        assert len(renamed.train) == len(tiny_graph.train)
