"""Run the documented usage examples and enforce their presence.

Two guarantees for the audited packages (``repro.metrics``, ``repro.kp``,
``repro.recommenders``, ``repro.obs``):

1. every doctest embedded in their docstrings passes, so the examples in
   the docs site and the API reference cannot silently rot;
2. every *public symbol* (module-level function or class that does not
   start with ``_``) carries at least one ``>>>`` usage example, so new
   API surface cannot land undocumented.
"""

from __future__ import annotations

import doctest
import importlib
import inspect
import pkgutil

import pytest

AUDITED_PACKAGES = ("repro.metrics", "repro.kp", "repro.recommenders", "repro.obs")

OPTIONFLAGS = doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS


def _audited_modules() -> list[str]:
    names: list[str] = []
    for package_name in AUDITED_PACKAGES:
        package = importlib.import_module(package_name)
        names.append(package_name)
        for info in pkgutil.iter_modules(package.__path__, prefix=package_name + "."):
            names.append(info.name)
    return names


MODULES = _audited_modules()
SUBMODULES = [name for name in MODULES if name.count(".") == 2]


def _public_symbols(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue
        yield name, obj


def test_audit_covers_the_expected_packages():
    # A moved or renamed package must fail loudly, not shrink the audit.
    assert len(SUBMODULES) >= 12
    for package_name in AUDITED_PACKAGES:
        assert any(m.startswith(package_name + ".") for m in SUBMODULES)


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests_pass(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, optionflags=OPTIONFLAGS, verbose=False)
    assert result.failed == 0


@pytest.mark.parametrize("module_name", SUBMODULES)
def test_every_public_symbol_has_a_usage_example(module_name):
    module = importlib.import_module(module_name)
    missing = [
        name
        for name, obj in _public_symbols(module)
        if ">>>" not in (inspect.getdoc(obj) or "")
    ]
    assert not missing, (
        f"{module_name}: public symbols without a docstring usage example: "
        f"{missing}"
    )
