"""Autodiff engine: every operator's gradient checked by finite differences."""

import numpy as np
import pytest

from repro.autodiff import engine as ad


def finite_difference(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar f at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f(x)
        flat[i] = original - eps
        down = f(x)
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build, shape, seed=0, atol=1e-5):
    """Compare autodiff gradient of ``build(param) -> scalar Tensor``."""
    rng = np.random.default_rng(seed)
    data = rng.standard_normal(shape)
    param = ad.parameter(data.copy())
    loss = build(param)
    loss.backward()
    assert param.grad is not None

    def scalar(x):
        return float(build(ad.parameter(x.copy())).data)

    numeric = finite_difference(scalar, data.copy())
    np.testing.assert_allclose(param.grad, numeric, atol=atol)


class TestArithmetic:
    def test_add_gradient(self):
        check_gradient(lambda p: ad.sum_(p + p), (3, 4))

    def test_add_broadcast_gradient(self):
        rng = np.random.default_rng(1)
        other = ad.Tensor(rng.standard_normal(4))
        check_gradient(lambda p: ad.sum_(ad.add(p, other)), (3, 4))

    def test_sub_gradient(self):
        other = ad.Tensor(np.ones((3, 4)))
        check_gradient(lambda p: ad.sum_(ad.sub(other, p)), (3, 4))

    def test_mul_gradient(self):
        rng = np.random.default_rng(2)
        other = ad.Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda p: ad.sum_(ad.mul(p, other)), (3, 4))

    def test_neg_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.neg(p)), (5,))

    def test_scalar_operators(self):
        p = ad.parameter(np.array([2.0]))
        out = ad.sum_(3.0 * p + 1.0 - p)
        out.backward()
        assert float(out.data) == pytest.approx(5.0)
        assert p.grad[0] == pytest.approx(2.0)


class TestNonlinearities:
    def test_abs_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.abs_(p)), (10,))

    def test_relu_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.relu(p)), (10,))

    def test_sigmoid_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.sigmoid(p)), (10,))

    def test_softplus_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.softplus(p)), (10,))

    def test_softplus_is_stable_for_large_inputs(self):
        value = ad.softplus(ad.Tensor(np.array([800.0, -800.0])))
        assert np.isfinite(value.data).all()
        assert value.data[0] == pytest.approx(800.0)
        assert value.data[1] == pytest.approx(0.0, abs=1e-12)

    def test_sqrt_gradient(self):
        rng = np.random.default_rng(3)
        data = np.abs(rng.standard_normal(8)) + 0.5
        param = ad.parameter(data.copy())
        loss = ad.sum_(ad.sqrt(param))
        loss.backward()
        np.testing.assert_allclose(param.grad, 0.5 / np.sqrt(data + 1e-12), atol=1e-6)

    def test_square_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.square(p)), (6,))

    def test_tanh_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.tanh(p)), (6,))

    def test_sin_cos_gradients(self):
        check_gradient(lambda p: ad.sum_(ad.sin(p)), (7,))
        check_gradient(lambda p: ad.sum_(ad.cos(p)), (7,))


class TestDropout:
    def test_identity_when_not_training(self, rng):
        x = ad.parameter(np.ones((4, 4)))
        assert ad.dropout(x, 0.5, rng, training=False) is x

    def test_masks_and_rescales(self):
        rng = np.random.default_rng(0)
        x = ad.parameter(np.ones((1000,)))
        out = ad.dropout(x, 0.5, rng, training=True)
        kept = out.data[out.data > 0]
        assert np.allclose(kept, 2.0)
        assert 400 < kept.size < 600


class TestShapes:
    def test_sum_axis_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.sum_(p, axis=1)), (3, 4))

    def test_mean_gradient(self):
        check_gradient(lambda p: ad.mean(p), (3, 4))

    def test_reshape_gradient(self):
        check_gradient(lambda p: ad.sum_(ad.reshape(p, (12,))), (3, 4))

    def test_concat_gradient(self):
        rng = np.random.default_rng(4)
        other = ad.Tensor(rng.standard_normal((3, 2)))
        check_gradient(lambda p: ad.sum_(ad.concat([p, other], axis=1)), (3, 2))

    def test_concat_routes_gradients_to_each_parent(self):
        a = ad.parameter(np.zeros((2, 2)))
        b = ad.parameter(np.zeros((2, 3)))
        out = ad.sum_(ad.concat([a, b], axis=1))
        out.backward()
        assert a.grad.shape == (2, 2)
        assert b.grad.shape == (2, 3)


class TestGather:
    def test_gather_forward(self):
        table = ad.parameter(np.arange(12.0).reshape(4, 3))
        out = ad.gather(table, np.array([2, 0]))
        np.testing.assert_array_equal(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_gather_scatter_add_on_duplicates(self):
        table = ad.parameter(np.zeros((4, 2)))
        out = ad.sum_(ad.gather(table, np.array([1, 1, 3])))
        out.backward()
        np.testing.assert_array_equal(table.grad, [[0, 0], [2, 2], [0, 0], [1, 1]])

    def test_gather_cols_forward(self):
        x = ad.parameter(np.arange(6.0).reshape(2, 3))
        out = ad.gather_cols(x, np.array([2, 2, 0]))
        np.testing.assert_array_equal(out.data, [[2, 2, 0], [5, 5, 3]])

    def test_gather_cols_gradient(self):
        idx = np.array([[0, 1], [1, 2]])
        check_gradient(lambda p: ad.sum_(ad.gather_cols(p, idx)), (3, 4))

    def test_gather_cols_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ad.gather_cols(ad.parameter(np.zeros(3)), np.array([0]))


class TestEinsum:
    def test_matmul_gradients(self):
        rng = np.random.default_rng(5)
        other = ad.Tensor(rng.standard_normal((4, 5)))
        check_gradient(lambda p: ad.sum_(ad.einsum("ij,jk->ik", p, other)), (3, 4))

    def test_batched_bilinear_gradients(self):
        rng = np.random.default_rng(6)
        w = ad.Tensor(rng.standard_normal((2, 3, 3)))
        check_gradient(lambda p: ad.sum_(ad.einsum("bi,bij->bj", p, w)), (2, 3))

    def test_second_operand_gradient(self):
        rng = np.random.default_rng(7)
        a = ad.Tensor(rng.standard_normal((3, 4)))
        check_gradient(lambda p: ad.sum_(ad.einsum("ij,jk->ik", a, p)), (4, 5))

    def test_lonely_index_rejected(self):
        a = ad.parameter(np.zeros((3, 4)))
        b = ad.parameter(np.zeros((5, 6)))
        with pytest.raises(ValueError, match="lonely|appear"):
            ad.einsum("ij,kl->ik", a, b)


class TestBackwardMachinery:
    def test_backward_requires_scalar(self):
        p = ad.parameter(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            (p + p).backward()

    def test_grad_accumulates_across_uses(self):
        p = ad.parameter(np.array([1.0]))
        loss = ad.sum_(p + p)  # p used twice
        loss.backward()
        assert p.grad[0] == pytest.approx(2.0)

    def test_zero_grad(self):
        p = ad.parameter(np.array([1.0]))
        ad.sum_(p).backward()
        p.zero_grad()
        assert p.grad is None

    def test_deep_chain_does_not_recurse(self):
        p = ad.parameter(np.array([0.01]))
        node = p
        for _ in range(3000):
            node = node + 0.001
        ad.sum_(node).backward()
        assert p.grad[0] == pytest.approx(1.0)

    def test_stack_parameters_rejects_non_leaf(self):
        p = ad.parameter(np.zeros(2))
        with pytest.raises(ValueError):
            ad.stack_parameters([p + p])

    def test_stack_parameters_rejects_constant(self):
        with pytest.raises(ValueError):
            ad.stack_parameters([ad.Tensor(np.zeros(2))])
