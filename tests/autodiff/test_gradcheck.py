"""The finite-difference gradient checker, including its doctests."""

import doctest
import importlib

import numpy as np
import pytest

# The package re-exports the gradcheck *function* under the same name as
# the submodule, so `import repro.autodiff.gradcheck as ...` would bind
# the function; resolve the module explicitly.
gradcheck_module = importlib.import_module("repro.autodiff.gradcheck")
from repro.autodiff.engine import (
    Tensor,
    einsum,
    gather,
    parameter,
    sigmoid,
    square,
    sum_,
)
from repro.autodiff.gradcheck import GradcheckError, gradcheck


def test_module_doctests_pass():
    result = doctest.testmod(
        gradcheck_module,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
        verbose=False,
    )
    assert result.attempted >= 2
    assert result.failed == 0


def test_passes_on_a_composite_graph(rng):
    table = parameter(rng.standard_normal((5, 3)))
    weights = parameter(rng.standard_normal((3, 2)))
    idx = np.asarray([0, 2, 2, 4])

    def fn():
        rows = gather(table, idx)
        projected = einsum("bi,ij->bj", rows, weights)
        return sum_(square(sigmoid(projected)))

    assert gradcheck(fn, [table, weights]) < 1e-7


def test_catches_a_wrong_backward_rule():
    x = parameter(np.asarray([1.5]))

    def wrong():
        # claims d(x^2)/dx = x instead of 2x
        return Tensor(
            x.data**2,
            parents=(x,),
            backward=lambda grad: x.accumulate_grad(grad * x.data),
        )

    with pytest.raises(GradcheckError, match="finite difference"):
        gradcheck(wrong, [x])


def test_restores_parameter_values(rng):
    x = parameter(rng.standard_normal(4))
    snapshot = x.data.copy()
    gradcheck(lambda: sum_(square(x)), [x])
    np.testing.assert_array_equal(x.data, snapshot)
    assert x.grad is None


def test_rejects_non_scalar_fn():
    x = parameter(np.ones(3))
    with pytest.raises(ValueError, match="scalar"):
        gradcheck(lambda: square(x), [x])


def test_rejects_non_parameters():
    x = Tensor(np.ones(2))  # no requires_grad
    with pytest.raises(ValueError, match="require gradients"):
        gradcheck(lambda: sum_(square(x)), [x])


def test_rejects_bad_eps():
    x = parameter(np.ones(1))
    with pytest.raises(ValueError, match="eps"):
        gradcheck(lambda: sum_(square(x)), [x], eps=0.0)
