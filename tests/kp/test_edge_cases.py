"""KP degenerate inputs: single-query graphs, empty pools, tiny splits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sampling import NegativePools
from repro.kp.metric import knowledge_persistence
from repro.kp.persistence import h0_diagram, score_graph_diagram
from repro.kp.wasserstein import sliced_wasserstein
from repro.models import build_model


@pytest.fixture
def tiny_model(tiny_graph):
    return build_model(
        "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4, seed=0
    )


class TestSingleQueryGraphs:
    def test_kp_on_single_triple_split(self, tiny_graph, tiny_model):
        # The valid split holds exactly one triple: KP must still produce
        # a finite value from one positive and one negative score graph.
        result = knowledge_persistence(tiny_model, tiny_graph, split="valid", seed=0)
        assert result.num_positive == 1
        assert result.num_negative == 1
        assert np.isfinite(result.value)
        assert result.value >= 0.0

    def test_kp_num_triples_larger_than_split_keeps_everything(
        self, tiny_graph, tiny_model
    ):
        result = knowledge_persistence(
            tiny_model, tiny_graph, split="test", num_triples=10_000
        )
        assert result.num_positive == len(tiny_graph.test)

    def test_single_edge_score_graph(self):
        diagram = score_graph_diagram(
            np.asarray([[0, 1, 2]]), np.asarray([0.7]), num_entities=5
        )
        # One merge event plus the essential class, both born and dying
        # at the only edge weight: zero total persistence.
        assert diagram.num_points == 2
        np.testing.assert_allclose(diagram.points, [[0.7, 0.7], [0.7, 0.7]])
        assert diagram.total_persistence() == 0.0


class TestDegeneratePools:
    def test_kp_with_empty_pools_falls_back_to_uniform(self, tiny_graph, tiny_model):
        empty = NegativePools(
            strategy="static",
            pools={"head": {}, "tail": {}},
            num_entities=tiny_graph.num_entities,
            sample_size=0,
        )
        seeded = knowledge_persistence(
            tiny_model, tiny_graph, split="test", pools=empty, seed=5
        )
        uniform = knowledge_persistence(
            tiny_model, tiny_graph, split="test", pools=None, seed=5
        )
        # An empty pool degrades to uniform corruption, same RNG stream.
        assert seeded.value == uniform.value

    def test_single_entity_pools_pin_the_corruption(self, tiny_graph, tiny_model):
        pinned = NegativePools(
            strategy="static",
            pools={
                "head": {r: np.asarray([5]) for r in range(tiny_graph.num_relations)},
                "tail": {r: np.asarray([5]) for r in range(tiny_graph.num_relations)},
            },
            num_entities=tiny_graph.num_entities,
            sample_size=1,
        )
        result = knowledge_persistence(
            tiny_model, tiny_graph, split="test", pools=pinned, seed=0
        )
        assert np.isfinite(result.value)


class TestEmptyRankStructures:
    def test_empty_diagrams_have_zero_distance(self):
        from repro.kp.persistence import PersistenceDiagram

        empty = PersistenceDiagram(np.empty((0, 2)))
        assert sliced_wasserstein(empty, empty) == 0.0

    def test_h0_of_self_loops_only_is_single_essential(self):
        # Self-loops merge nothing; the one touched vertex survives.
        diagram = h0_diagram(np.asarray([[2, 2], [2, 2]]), np.asarray([0.1, 0.9]))
        assert diagram.num_points == 1
        assert diagram.points[0] == pytest.approx([0.1, 0.9])
