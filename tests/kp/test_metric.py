"""KP metric: construction, strategies, and its separation signal."""

import numpy as np
import pytest

from repro.core import build_pools
from repro.kp import knowledge_persistence
from repro.models import OracleModel, RandomModel


class TestKnowledgePersistence:
    def test_result_fields(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, seed=0)
        result = knowledge_persistence(model, graph, split="valid", seed=1)
        assert result.value >= 0.0
        assert result.num_positive == len(graph.valid)
        assert result.num_negative == result.num_positive
        assert result.seconds > 0.0

    def test_subsampling_positives(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, seed=0)
        result = knowledge_persistence(model, graph, split="valid", num_triples=40, seed=1)
        assert result.num_positive == 40

    def test_empty_split_rejected(self, tiny_graph):
        from repro.kg import KnowledgeGraph, TripleSet

        bare = KnowledgeGraph(
            entities=tiny_graph.entities,
            relations=tiny_graph.relations,
            train=tiny_graph.train,
        )
        model = RandomModel(bare.num_entities, bare.num_relations)
        with pytest.raises(ValueError):
            knowledge_persistence(model, bare, split="test")

    def test_deterministic_under_seed(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, seed=0)
        a = knowledge_persistence(model, graph, split="valid", seed=7)
        b = knowledge_persistence(model, graph, split="valid", seed=7)
        assert a.value == b.value

    def test_pools_steer_negatives(self, codex_s):
        """KP-P differs from KP-R because negatives come from the pools."""
        graph = codex_s.graph
        model = OracleModel(graph, seed=0)
        from repro.recommenders import build_recommender

        fitted = build_recommender("l-wd").fit(graph)
        pools = build_pools(
            graph,
            "probabilistic",
            rng=np.random.default_rng(0),
            sample_fraction=0.2,
            fitted=fitted,
        )
        uniform = knowledge_persistence(model, graph, split="valid", seed=3)
        guided = knowledge_persistence(model, graph, split="valid", pools=pools, seed=3)
        assert uniform.value != guided.value

    def test_separating_model_scores_higher_than_random(self, codex_s):
        """KP's core signal: a model that separates positives from negatives
        produces more distant diagrams than a random scorer."""
        graph = codex_s.graph
        strong = OracleModel(graph, skill=4.0, seed=0)
        noise = RandomModel(graph.num_entities, graph.num_relations, seed=0)
        kp_strong = knowledge_persistence(strong, graph, split="valid", seed=2)
        kp_noise = knowledge_persistence(noise, graph, split="valid", seed=2)
        assert kp_strong.value > kp_noise.value
