"""KP's negative-corruption step in isolation."""

import numpy as np
import pytest

from repro.core import build_pools
from repro.kp.metric import _corrupt


class TestCorrupt:
    def test_one_end_changed_per_triple(self, codex_s, rng):
        triples = codex_s.graph.test.array
        corrupted = _corrupt(triples, None, codex_s.graph.num_entities, rng)
        changed_head = corrupted[:, 0] != triples[:, 0]
        changed_tail = corrupted[:, 2] != triples[:, 2]
        # Uniform redraws can collide with the original entity, so allow a
        # few unchanged rows, but never both ends changed at once.
        assert not np.any(changed_head & changed_tail)
        assert (changed_head | changed_tail).mean() > 0.9
        np.testing.assert_array_equal(corrupted[:, 1], triples[:, 1])

    def test_pool_guided_replacements_from_pools(self, codex_s, rng):
        from repro.recommenders import build_recommender

        graph = codex_s.graph
        fitted = build_recommender("pt").fit(graph)
        pools = build_pools(
            graph,
            "probabilistic",
            rng=np.random.default_rng(3),
            sample_fraction=0.3,
            fitted=fitted,
        )
        triples = graph.test.array
        corrupted = _corrupt(triples, pools, graph.num_entities, rng)
        for original, new in zip(triples, corrupted):
            if new[0] != original[0]:
                pool = pools.pool(int(new[1]), "head")
                assert new[0] in pool
            elif new[2] != original[2]:
                pool = pools.pool(int(new[1]), "tail")
                assert new[2] in pool

    def test_deterministic_under_rng_state(self, codex_s):
        triples = codex_s.graph.test.array
        a = _corrupt(triples, None, codex_s.graph.num_entities, np.random.default_rng(5))
        b = _corrupt(triples, None, codex_s.graph.num_entities, np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)
