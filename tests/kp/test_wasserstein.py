"""Sliced Wasserstein distance: metric-like properties (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kp import PersistenceDiagram, sliced_wasserstein


def diagrams(max_points=8):
    """Strategy generating valid persistence diagrams."""

    @st.composite
    def build(draw):
        n = draw(st.integers(0, max_points))
        points = []
        for _ in range(n):
            birth = draw(st.floats(-5, 5, allow_nan=False))
            life = draw(st.floats(0, 5, allow_nan=False))
            points.append((birth, birth + life))
        return PersistenceDiagram(np.asarray(points).reshape(len(points), 2))

    return build()


class TestBasics:
    def test_identity(self):
        diagram = PersistenceDiagram(np.array([[0.0, 1.0], [2.0, 5.0]]))
        assert sliced_wasserstein(diagram, diagram) == pytest.approx(0.0)

    def test_both_empty(self):
        empty = PersistenceDiagram(np.empty((0, 2)))
        assert sliced_wasserstein(empty, empty) == 0.0

    def test_empty_vs_diagonal_point_is_zero(self):
        """A zero-persistence point is indistinguishable from the diagonal."""
        empty = PersistenceDiagram(np.empty((0, 2)))
        on_diagonal = PersistenceDiagram(np.array([[1.0, 1.0]]))
        assert sliced_wasserstein(empty, on_diagonal) == pytest.approx(0.0, abs=1e-12)

    def test_empty_vs_persistent_point_positive(self):
        empty = PersistenceDiagram(np.empty((0, 2)))
        persistent = PersistenceDiagram(np.array([[0.0, 4.0]]))
        assert sliced_wasserstein(empty, persistent) > 0.1

    def test_distance_grows_with_persistence_gap(self):
        base = PersistenceDiagram(np.array([[0.0, 1.0]]))
        near = PersistenceDiagram(np.array([[0.0, 1.5]]))
        far = PersistenceDiagram(np.array([[0.0, 4.0]]))
        assert sliced_wasserstein(base, far) > sliced_wasserstein(base, near)

    def test_invalid_slices_rejected(self):
        diagram = PersistenceDiagram(np.empty((0, 2)))
        with pytest.raises(ValueError):
            sliced_wasserstein(diagram, diagram, num_slices=0)

    def test_deterministic(self):
        a = PersistenceDiagram(np.array([[0.0, 1.0], [1.0, 3.0]]))
        b = PersistenceDiagram(np.array([[0.5, 2.0]]))
        assert sliced_wasserstein(a, b) == sliced_wasserstein(a, b)


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(a=diagrams(), b=diagrams())
    def test_property_symmetry(self, a, b):
        assert sliced_wasserstein(a, b) == pytest.approx(
            sliced_wasserstein(b, a), abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(a=diagrams(), b=diagrams())
    def test_property_non_negative(self, a, b):
        assert sliced_wasserstein(a, b) >= -1e-12

    @settings(max_examples=40, deadline=None)
    @given(a=diagrams())
    def test_property_self_distance_zero(self, a):
        assert sliced_wasserstein(a, a) == pytest.approx(0.0, abs=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(a=diagrams(4), b=diagrams(4), c=diagrams(4))
    def test_property_triangle_inequality(self, a, b, c):
        ab = sliced_wasserstein(a, b)
        bc = sliced_wasserstein(b, c)
        ac = sliced_wasserstein(a, c)
        assert ac <= ab + bc + 1e-6
