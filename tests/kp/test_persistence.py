"""H0 persistence: hand-checkable diagrams and structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kp import PersistenceDiagram, UnionFind, h0_diagram, score_graph_diagram


class TestPersistenceDiagram:
    def test_empty(self):
        diagram = PersistenceDiagram(np.empty((0, 2)))
        assert diagram.num_points == 0
        assert diagram.total_persistence() == 0.0

    def test_death_before_birth_rejected(self):
        with pytest.raises(ValueError):
            PersistenceDiagram(np.array([[2.0, 1.0]]))

    def test_persistences(self):
        diagram = PersistenceDiagram(np.array([[0.0, 2.0], [1.0, 1.5]]))
        np.testing.assert_allclose(diagram.persistences(), [2.0, 0.5])


class TestUnionFind:
    def test_merge_reports_younger_death(self):
        uf = UnionFind(2, births=np.array([0.0, 1.0]))
        dying = uf.union(0, 1, weight=3.0)
        assert dying == (1.0, 3.0)

    def test_second_union_is_cycle(self):
        uf = UnionFind(2, births=np.zeros(2))
        assert uf.union(0, 1, 1.0) is not None
        assert uf.union(1, 0, 2.0) is None

    def test_path_compression_find(self):
        uf = UnionFind(4, births=np.zeros(4))
        uf.union(0, 1, 1.0)
        uf.union(1, 2, 1.0)
        uf.union(2, 3, 1.0)
        root = uf.find(3)
        assert uf.find(0) == root


class TestH0Diagram:
    def test_empty_graph(self):
        diagram = h0_diagram(np.empty((0, 2)), np.empty(0))
        assert diagram.num_points == 0

    def test_single_edge(self):
        """One edge: both vertices born at w, component essential at w."""
        diagram = h0_diagram(np.array([[0, 1]]), np.array([2.0]))
        assert diagram.num_points == 2  # one merge death + one essential
        births = sorted(diagram.points[:, 0].tolist())
        assert births == [2.0, 2.0]

    def test_path_graph_hand_computed(self):
        """Path 0-1-2 with weights 1 then 2.

        At w=1 vertices 0,1 are born and merge immediately (death 1); at
        w=2 vertex 2 is born (birth 2) and merges into the older
        component (death 2).  The essential class is (1, 2).
        """
        diagram = h0_diagram(np.array([[0, 1], [1, 2]]), np.array([1.0, 2.0]))
        points = sorted(map(tuple, diagram.points.tolist()))
        assert points == [(1.0, 1.0), (1.0, 2.0), (2.0, 2.0)]

    def test_two_components_two_essentials(self):
        edges = np.array([[0, 1], [2, 3]])
        diagram = h0_diagram(edges, np.array([1.0, 5.0]))
        # Four touched vertices -> four points: two merge deaths (1,1) and
        # (5,5) plus two essential classes (1,5) and (5,5).
        assert diagram.num_points == 4
        points = sorted(map(tuple, diagram.points.tolist()))
        assert points == [(1.0, 1.0), (1.0, 5.0), (5.0, 5.0), (5.0, 5.0)]

    def test_cycle_edges_ignored(self):
        """A triangle has the same H0 as its spanning tree."""
        tree = h0_diagram(np.array([[0, 1], [1, 2]]), np.array([1.0, 2.0]))
        triangle = h0_diagram(
            np.array([[0, 1], [1, 2], [0, 2]]), np.array([1.0, 2.0, 3.0])
        )
        # The extra cycle edge only raises the essential death to 3.
        assert triangle.num_points == tree.num_points
        assert triangle.points[:, 1].max() == 3.0

    def test_isolated_vertices_produce_no_points(self):
        diagram = h0_diagram(np.array([[0, 1]]), np.array([1.0]), num_vertices=10)
        assert diagram.num_points == 2

    def test_self_loops_skipped(self):
        diagram = h0_diagram(np.array([[0, 0], [0, 1]]), np.array([0.5, 1.0]))
        assert np.isfinite(diagram.points).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            h0_diagram(np.zeros((2, 3)), np.zeros(2))
        with pytest.raises(ValueError):
            h0_diagram(np.zeros((2, 2), dtype=int), np.zeros(3))

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), m=st.integers(1, 60))
    def test_property_point_count_is_vertices_touched(self, seed, m):
        """Every touched vertex is born once and dies exactly once (merge
        or essential), so #points == #touched vertices."""
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, 20, size=(m, 2))
        weights = rng.random(m)
        diagram = h0_diagram(edges, weights, num_vertices=20)
        touched = np.unique(edges[edges[:, 0] != edges[:, 1]])
        loops_only = np.setdiff1d(np.unique(edges), touched)
        # Vertices appearing only in self-loops are born but never merge;
        # they die essentially as singleton components.
        assert diagram.num_points == touched.size + loops_only.size

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_births_never_after_deaths(self, seed):
        rng = np.random.default_rng(seed)
        edges = rng.integers(0, 15, size=(30, 2))
        weights = rng.random(30)
        diagram = h0_diagram(edges, weights, num_vertices=15)
        assert (diagram.points[:, 1] >= diagram.points[:, 0] - 1e-12).all()


class TestScoreGraphDiagram:
    def test_builds_from_triples(self):
        triples = np.array([[0, 0, 1], [1, 1, 2]])
        diagram = score_graph_diagram(triples, np.array([0.3, 0.7]), num_entities=5)
        assert diagram.num_points == 3

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            score_graph_diagram(np.zeros((2, 2), dtype=int), np.zeros(2), 5)
