"""The dynamic lock-order/race sanitizer, including the acceptance
criterion: a deliberately introduced lock-order inversion is detected.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import (
    LockOrderError,
    LockSanitizer,
    sanitize_registry,
    sanitize_tracer,
)
from repro.analysis.sanitizer import GuardedDict, SanitizedLock
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class TestLockOrder:
    def test_deliberate_inversion_detected(self):
        sanitizer = LockSanitizer()
        lock_a = SanitizedLock(threading.Lock(), "A", sanitizer)
        lock_b = SanitizedLock(threading.Lock(), "B", sanitizer)
        with lock_a:
            with lock_b:
                pass
        # The inversion: B then A.  Single-threaded on purpose — the
        # sanitizer flags the *order*, not an actual deadlock.
        with lock_b:
            with lock_a:
                pass
        with pytest.raises(LockOrderError) as excinfo:
            sanitizer.assert_clean()
        message = str(excinfo.value)
        assert "lock-order-inversion" in message
        assert "'A'" in message and "'B'" in message

    def test_inversion_across_threads_detected(self):
        sanitizer = LockSanitizer()
        lock_a = SanitizedLock(threading.Lock(), "A", sanitizer)
        lock_b = SanitizedLock(threading.Lock(), "B", sanitizer)
        # Serialise the two threads so the test never actually
        # deadlocks; the edges still record A->B and B->A.
        first_done = threading.Event()

        def forward():
            with lock_a:
                with lock_b:
                    pass
            first_done.set()

        def backward():
            first_done.wait(5)
            with lock_b:
                with lock_a:
                    pass

        threads = [
            threading.Thread(target=forward),
            threading.Thread(target=backward),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with pytest.raises(LockOrderError):
            sanitizer.assert_clean()

    def test_consistent_order_is_clean(self):
        sanitizer = LockSanitizer()
        lock_a = SanitizedLock(threading.Lock(), "A", sanitizer)
        lock_b = SanitizedLock(threading.Lock(), "B", sanitizer)
        for _ in range(3):
            with lock_a:
                with lock_b:
                    pass
        sanitizer.assert_clean()
        assert ("A", "B") in sanitizer.edges()


class TestGuardedDict:
    def test_mutation_without_lock_recorded(self):
        sanitizer = LockSanitizer()
        lock = SanitizedLock(threading.Lock(), "L", sanitizer)
        data = GuardedDict({}, lock, sanitizer, "table")
        data["k"] = 1
        assert sanitizer.violations
        assert sanitizer.violations[0].kind == "unguarded-mutation"

    def test_mutation_under_lock_clean(self):
        sanitizer = LockSanitizer()
        lock = SanitizedLock(threading.Lock(), "L", sanitizer)
        data = GuardedDict({}, lock, sanitizer, "table")
        with lock:
            data["k"] = 1
            data.setdefault("j", 2)
            data.pop("j")
        sanitizer.assert_clean()
        assert data["k"] == 1

    def test_reads_never_require_lock(self):
        sanitizer = LockSanitizer()
        lock = SanitizedLock(threading.Lock(), "L", sanitizer)
        data = GuardedDict({"k": 1}, lock, sanitizer, "table")
        assert data["k"] == 1
        assert list(data.items()) == [("k", 1)]
        sanitizer.assert_clean()


class TestRegistryIntegration:
    def test_real_registry_traffic_is_clean(self):
        sanitizer = LockSanitizer()
        registry = MetricsRegistry()
        handle = sanitize_registry(registry, sanitizer)
        try:
            def hammer(worker: int) -> None:
                for i in range(100):
                    registry.counter("repro_t_total").inc()
                    registry.gauge("repro_t_gauge").set(i)
                    registry.histogram("repro_t_seconds").observe(0.001 * i)
                    registry.render()
                    registry.merge_counters(
                        {"repro_t_merged_total": 1.0},
                        labels={"worker": str(worker)},
                    )

            threads = [
                threading.Thread(target=hammer, args=(n,)) for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sanitizer.assert_clean()
        finally:
            handle.restore()
        # Instrumentation was transparent: totals survived the restore.
        assert registry.counter("repro_t_total").value() == 400.0

    def test_metrics_created_after_sanitizing_are_instrumented(self):
        sanitizer = LockSanitizer()
        registry = MetricsRegistry()
        handle = sanitize_registry(registry, sanitizer)
        try:
            counter = registry.counter("repro_late_total")
            # Bypass the metric's own lock: mutate the series dict
            # directly.  The sanitizer must see it.
            counter._series[()] = 7.0
            assert any(
                finding.kind == "unguarded-mutation"
                for finding in sanitizer.violations
            )
        finally:
            handle.restore()

    def test_restore_returns_plain_types(self):
        sanitizer = LockSanitizer()
        registry = MetricsRegistry()
        handle = sanitize_registry(registry, sanitizer)
        registry.counter("repro_r_total").inc(3)
        handle.restore()
        assert type(registry._metrics) is dict
        assert not isinstance(registry._lock, SanitizedLock)
        assert registry.counter("repro_r_total").value() == 3.0
        # Idempotent.
        handle.restore()

    def test_unguarded_registry_table_mutation_detected(self):
        sanitizer = LockSanitizer()
        registry = MetricsRegistry()
        handle = sanitize_registry(registry, sanitizer)
        try:
            registry._metrics["rogue"] = object()
            assert sanitizer.violations
            assert sanitizer.violations[0].kind == "unguarded-mutation"
        finally:
            handle.restore()


class TestTracerIntegration:
    def test_traced_spans_are_clean(self):
        sanitizer = LockSanitizer()
        tracer = Tracer(enabled=True)
        handle = sanitize_tracer(tracer, sanitizer)
        try:

            def spans() -> None:
                for _ in range(50):
                    with tracer.span("outer"):
                        with tracer.span("inner"):
                            pass

            threads = [threading.Thread(target=spans) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sanitizer.assert_clean()
        finally:
            handle.restore()


class TestFixture:
    def test_lock_sanitizer_fixture_sanitizes_global_registry(
        self, lock_sanitizer
    ):
        from repro.obs import get_registry

        registry = get_registry()
        assert isinstance(registry._metrics, GuardedDict)
        registry.counter("repro_fixture_total").inc()
        lock_sanitizer.assert_clean()
