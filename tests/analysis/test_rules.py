"""Mutation tests: every rule fires on a known-bad snippet and stays
quiet on its known-good twin.

Each test builds a miniature package in ``tmp_path`` and runs the real
engine over it, so what is proven live is the full pipeline — file
discovery, parsing, the rule, noqa filtering, reporting — not a rule
method called in isolation.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisConfig,
    LayeringContract,
    run_analysis,
)


def make_package(root: Path, files: dict[str, str], package: str = "pkg") -> Path:
    pkg = root / package
    pkg.mkdir(parents=True, exist_ok=True)
    init = pkg / "__init__.py"
    if not init.exists():
        init.write_text("")
    for name, source in files.items():
        target = pkg / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    return pkg


def violations_of(root: Path, code: str, config: AnalysisConfig | None = None):
    report = run_analysis([root], root, select=[code], config=config)
    return [v for v in report.violations if v.rule == code]


# ----------------------------------------------------------------------
# R001 — unseeded RNG
# ----------------------------------------------------------------------
class TestR001:
    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nnp.random.shuffle([1, 2])\n",
            "import numpy as np\nnp.random.seed(0)\n",
            "import random\nrandom.choice([1, 2])\n",
            "import numpy as np\nrng = np.random.default_rng()\n",
            "from numpy import random as npr\nnpr.randint(3)\n",
            "from numpy.random import shuffle\nshuffle([1, 2])\n",
        ],
    )
    def test_fires_on_global_rng(self, tmp_path, snippet):
        make_package(tmp_path, {"bad.py": snippet})
        found = violations_of(tmp_path, "R001")
        assert len(found) == 1
        assert found[0].path.endswith("bad.py")
        assert found[0].line > 0

    @pytest.mark.parametrize(
        "snippet",
        [
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            "def f(rng):\n    return rng.normal()\n",
            # A *different* module also called random is not stdlib random.
            "from mylib import random\nrandom.choice([1])\n",
            "import numpy as np\nnp.sort([3, 1])\n",
        ],
    )
    def test_quiet_on_threaded_generator(self, tmp_path, snippet):
        make_package(tmp_path, {"good.py": snippet})
        assert violations_of(tmp_path, "R001") == []

    def test_sanctioned_module_exempt(self, tmp_path):
        make_package(tmp_path, {"seeding.py": "import random\nrandom.seed(0)\n"})
        config = AnalysisConfig(rng_sanctioned=("pkg.seeding",))
        assert violations_of(tmp_path, "R001", config) == []


# ----------------------------------------------------------------------
# R002 — shm create/unlink pairing
# ----------------------------------------------------------------------
class TestR002:
    def test_fires_on_unpaired_create(self, tmp_path):
        make_package(
            tmp_path,
            {
                "bad.py": """
                from multiprocessing.shared_memory import SharedMemory

                def leak():
                    shm = SharedMemory(create=True, size=64)
                    return shm.name
                """
            },
        )
        found = violations_of(tmp_path, "R002")
        assert len(found) == 1

    def test_quiet_with_try_finally_cleanup(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": """
                from multiprocessing.shared_memory import SharedMemory

                def careful():
                    shm = SharedMemory(create=True, size=64)
                    try:
                        return shm.name
                    finally:
                        shm.close()
                        shm.unlink()
                """
            },
        )
        assert violations_of(tmp_path, "R002") == []

    def test_quiet_with_except_cleanup(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": """
                def publish(arena_cls):
                    arena = ShmArena("x", 64)
                    try:
                        arena.put("k", b"v")
                    except BaseException:
                        arena.close()
                        raise
                    return arena
                """
            },
        )
        assert violations_of(tmp_path, "R002") == []

    def test_quiet_inside_owning_class(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": """
                from multiprocessing.shared_memory import SharedMemory

                class Arena:
                    def put(self):
                        self._segments.append(SharedMemory(create=True, size=8))

                    def close(self):
                        for segment in self._segments:
                            segment.unlink()
                """
            },
        )
        assert violations_of(tmp_path, "R002") == []

    def test_attach_without_create_is_fine(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": """
                from multiprocessing.shared_memory import SharedMemory

                def attach(name):
                    return SharedMemory(name=name)
                """
            },
        )
        assert violations_of(tmp_path, "R002") == []


# ----------------------------------------------------------------------
# R003 — lock discipline
# ----------------------------------------------------------------------
class TestR003:
    def test_fires_on_unguarded_mutation(self, tmp_path):
        make_package(
            tmp_path,
            {
                "bad.py": """
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._metrics = {}

                    def add(self, name, metric):
                        with self._lock:
                            self._metrics[name] = metric

                    def sneaky(self, name):
                        self._metrics.pop(name, None)
                """
            },
        )
        found = violations_of(tmp_path, "R003")
        assert len(found) == 1
        assert "sneaky" in found[0].message

    def test_quiet_when_always_locked(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": """
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._metrics = {}

                    def add(self, name, metric):
                        with self._lock:
                            self._metrics[name] = metric

                    def remove(self, name):
                        with self._lock:
                            self._metrics.pop(name, None)
                """
            },
        )
        assert violations_of(tmp_path, "R003") == []

    def test_locked_suffix_methods_exempt(self, tmp_path):
        # Chromium-style caller-holds-lock naming: _foo_locked is
        # only called with the lock held; the callers are checked.
        make_package(
            tmp_path,
            {
                "good.py": """
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._metrics = {}

                    def add(self, name, metric):
                        with self._lock:
                            self._add_locked(name, metric)

                    def _add_locked(self, name, metric):
                        self._metrics[name] = metric
                """
            },
        )
        assert violations_of(tmp_path, "R003") == []

    def test_unlocked_classes_ignored(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": """
                class Plain:
                    def __init__(self):
                        self._items = {}

                    def add(self, key, value):
                        self._items[key] = value
                """
            },
        )
        assert violations_of(tmp_path, "R003") == []


# ----------------------------------------------------------------------
# R004 — import layering
# ----------------------------------------------------------------------
def _layering_config() -> AnalysisConfig:
    return AnalysisConfig(
        layering=(
            LayeringContract(root="pkg.worker", forbidden=("pkg.serve",)),
        )
    )


class TestR004:
    def test_fires_on_direct_forbidden_import(self, tmp_path):
        make_package(
            tmp_path,
            {
                "worker.py": "import pkg.serve\n",
                "serve.py": "x = 1\n",
            },
        )
        found = violations_of(tmp_path, "R004", _layering_config())
        assert len(found) == 1
        assert found[0].path.endswith("worker.py")

    def test_fires_on_transitive_forbidden_import(self, tmp_path):
        make_package(
            tmp_path,
            {
                "worker.py": "from pkg import helper\n",
                "helper.py": "from pkg.serve import handler\n",
                "serve.py": "def handler():\n    return None\n",
            },
        )
        found = violations_of(tmp_path, "R004", _layering_config())
        assert len(found) == 1
        # The importer to fix is the intermediate module.
        assert found[0].path.endswith("helper.py")

    def test_quiet_on_clean_closure(self, tmp_path):
        make_package(
            tmp_path,
            {
                "worker.py": "from pkg import helper\n",
                "helper.py": "import json\n",
                "serve.py": "import pkg.worker\n",  # serve may import worker
            },
        )
        assert violations_of(tmp_path, "R004", _layering_config()) == []

    def test_real_worker_contract_holds(self):
        # The shipped contract over the real tree: worker must not
        # reach serve/cli/obs.top.  Guarded here independently of the
        # repo-wide cleanliness test.
        src = Path(__file__).resolve().parents[2] / "src"
        report = run_analysis([src], src.parent, select=["R004"])
        assert [str(v) for v in report.violations] == []


# ----------------------------------------------------------------------
# R005 — hot-path determinism
# ----------------------------------------------------------------------
def _hot_config() -> AnalysisConfig:
    return AnalysisConfig(hot_modules=("pkg.kernel",))


class TestR005:
    def test_fires_on_wall_clock(self, tmp_path):
        make_package(
            tmp_path,
            {"kernel.py": "import time\n\ndef f():\n    return time.time()\n"},
        )
        found = violations_of(tmp_path, "R005", _hot_config())
        assert len(found) == 1
        assert "wall-clock" in found[0].message

    def test_fires_on_set_iteration(self, tmp_path):
        make_package(
            tmp_path,
            {
                "kernel.py": (
                    "def f(items):\n"
                    "    for x in set(items):\n"
                    "        yield x\n"
                )
            },
        )
        found = violations_of(tmp_path, "R005", _hot_config())
        assert len(found) == 1
        assert "hash-seed" in found[0].message

    def test_quiet_on_monotonic_and_sorted(self, tmp_path):
        make_package(
            tmp_path,
            {
                "kernel.py": (
                    "import time\n\n"
                    "def f(items):\n"
                    "    start = time.perf_counter()\n"
                    "    for x in sorted(set(items)):\n"
                    "        yield x\n"
                )
            },
        )
        assert violations_of(tmp_path, "R005", _hot_config()) == []

    def test_cold_modules_unchecked(self, tmp_path):
        make_package(
            tmp_path,
            {"cold.py": "import time\n\ndef f():\n    return time.time()\n"},
        )
        assert violations_of(tmp_path, "R005", _hot_config()) == []


# ----------------------------------------------------------------------
# R006 — swallowed exceptions
# ----------------------------------------------------------------------
class TestR006:
    def test_fires_on_bare_except(self, tmp_path):
        make_package(
            tmp_path,
            {"bad.py": "try:\n    pass\nexcept:\n    pass\n"},
        )
        found = violations_of(tmp_path, "R006")
        assert len(found) == 1
        assert "bare except" in found[0].message

    def test_fires_on_silent_broad_handler(self, tmp_path):
        make_package(
            tmp_path,
            {"bad.py": "try:\n    pass\nexcept Exception:\n    x = 1\n"},
        )
        assert len(violations_of(tmp_path, "R006")) == 1

    def test_quiet_when_reraised(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": (
                    "try:\n"
                    "    pass\n"
                    "except BaseException:\n"
                    "    raise\n"
                )
            },
        )
        assert violations_of(tmp_path, "R006") == []

    def test_quiet_when_reported(self, tmp_path):
        # The worker fault model: catch everything, ship it upstream.
        make_package(
            tmp_path,
            {
                "good.py": (
                    "def run(queue):\n"
                    "    try:\n"
                    "        pass\n"
                    "    except BaseException as error:\n"
                    "        queue.put(repr(error))\n"
                )
            },
        )
        assert violations_of(tmp_path, "R006") == []

    def test_quiet_on_narrow_pass(self, tmp_path):
        make_package(
            tmp_path,
            {
                "good.py": (
                    "try:\n"
                    "    pass\n"
                    "except (ValueError, OSError):\n"
                    "    pass\n"
                )
            },
        )
        assert violations_of(tmp_path, "R006") == []


# ----------------------------------------------------------------------
# R007 — metrics/docs parity
# ----------------------------------------------------------------------
def _docs_config() -> AnalysisConfig:
    return AnalysisConfig(metrics_docs="docs/metrics.md")


def _write_docs(root: Path, body: str) -> None:
    docs = root / "docs"
    docs.mkdir(exist_ok=True)
    (docs / "metrics.md").write_text(body)


class TestR007:
    def test_fires_on_undocumented_metric(self, tmp_path):
        make_package(
            tmp_path,
            {"m.py": 'def f(reg):\n    reg.counter("repro_new_total").inc()\n'},
        )
        _write_docs(tmp_path, "| `repro_old_total` | counter |\n")
        found = violations_of(tmp_path, "R007", _docs_config())
        messages = "\n".join(v.message for v in found)
        assert "repro_new_total" in messages  # registered, undocumented
        assert "repro_old_total" in messages  # documented, unregistered
        assert len(found) == 2

    def test_quiet_when_in_sync(self, tmp_path):
        make_package(
            tmp_path,
            {
                "m.py": (
                    'COUNTER_HELP = {"repro_worker_total": "help"}\n'
                    'STATE_GAUGE = "repro_state_bytes"\n'
                    'def f(reg):\n'
                    '    reg.counter("repro_new_total").inc()\n'
                )
            },
        )
        _write_docs(
            tmp_path,
            "| `repro_new_total` | counter |\n"
            "| `repro_worker_total` | counter |\n"
            "| `repro_state_bytes` | gauge |\n",
        )
        assert violations_of(tmp_path, "R007", _docs_config()) == []

    def test_prefix_tokens_and_paths_ignored(self, tmp_path):
        make_package(
            tmp_path,
            {"m.py": 'def f(reg):\n    reg.counter("repro_new_total").inc()\n'},
        )
        _write_docs(
            tmp_path,
            "The `repro_new_total` series; all `repro_engine_` families\n"
            "live in `.repro_store` directories.\n",
        )
        assert violations_of(tmp_path, "R007", _docs_config()) == []


# ----------------------------------------------------------------------
# R008 — exported symbols need docstrings
# ----------------------------------------------------------------------
class TestR008:
    def test_fires_on_undocumented_export(self, tmp_path):
        make_package(
            tmp_path,
            {
                "__init__.py": (
                    "from pkg.impl import helper\n"
                    '__all__ = ["helper"]\n'
                ),
                "impl.py": "def helper():\n    return 1\n",
            },
        )
        found = violations_of(tmp_path, "R008")
        assert len(found) == 1
        assert found[0].path.endswith("impl.py")

    def test_quiet_with_docstring(self, tmp_path):
        make_package(
            tmp_path,
            {
                "__init__.py": (
                    "from pkg.impl import helper\n"
                    '__all__ = ["helper"]\n'
                ),
                "impl.py": 'def helper():\n    """Help."""\n    return 1\n',
            },
        )
        assert violations_of(tmp_path, "R008") == []

    def test_unresolvable_exports_skipped(self, tmp_path):
        # Constants and third-party re-exports are out of scope.
        make_package(
            tmp_path,
            {
                "__init__.py": (
                    "from json import dumps\n"
                    "VERSION = '1'\n"
                    '__all__ = ["dumps", "VERSION"]\n'
                ),
            },
        )
        assert violations_of(tmp_path, "R008") == []


# ----------------------------------------------------------------------
# Engine mechanics: noqa, select/ignore, syntax errors
# ----------------------------------------------------------------------
class TestEngine:
    def test_noqa_suppresses_named_rule(self, tmp_path):
        make_package(
            tmp_path,
            {
                "bad.py": (
                    "import random\n"
                    "random.random()  # repro: noqa[R001]\n"
                )
            },
        )
        report = run_analysis([tmp_path], tmp_path, select=["R001"])
        assert report.violations == []
        assert report.suppressed == 1

    def test_noqa_other_rule_does_not_suppress(self, tmp_path):
        make_package(
            tmp_path,
            {
                "bad.py": (
                    "import random\n"
                    "random.random()  # repro: noqa[R006]\n"
                )
            },
        )
        report = run_analysis([tmp_path], tmp_path, select=["R001"])
        assert len(report.violations) == 1

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        make_package(
            tmp_path,
            {"bad.py": "import random\nrandom.random()  # repro: noqa\n"},
        )
        report = run_analysis([tmp_path], tmp_path)
        assert report.violations == []
        assert report.suppressed == 1

    def test_ignore_removes_rule(self, tmp_path):
        make_package(
            tmp_path,
            {"bad.py": "import random\nrandom.random()\n"},
        )
        report = run_analysis([tmp_path], tmp_path, ignore=["R001"])
        assert report.violations == []

    def test_syntax_error_reported_not_crashing(self, tmp_path):
        make_package(tmp_path, {"broken.py": "def f(:\n"})
        report = run_analysis([tmp_path], tmp_path)
        codes = {v.rule for v in report.violations}
        assert codes == {"E000"}
