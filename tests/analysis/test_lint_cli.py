"""``repro lint`` end-to-end: exit codes, JSON schema, baseline flow."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

BAD_SNIPPET = textwrap.dedent(
    """
    import random

    def f():
        return random.random()
    """
)

GOOD_SNIPPET = textwrap.dedent(
    """
    def f(rng):
        return rng.normal()
    """
)


def write_tree(root: Path, source: str) -> Path:
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(source)
    return pkg


def lint(tmp_path: Path, *extra: str) -> int:
    return main(
        [
            "lint",
            str(tmp_path / "pkg"),
            "--root",
            str(tmp_path),
            "--baseline",
            str(tmp_path / "baseline.json"),
            *extra,
        ]
    )


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD_SNIPPET)
        assert lint(tmp_path) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_violations_exit_one_naming_rule_and_location(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        # file:line anchor present
        assert "mod.py:5" in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD_SNIPPET)
        assert lint(tmp_path, "--select", "R999") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nowhere")]) == 2

    def test_select_skips_other_rules(self, tmp_path):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path, "--select", "R006") == 0

    def test_ignore_silences_rule(self, tmp_path):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path, "--ignore", "R001") == 0


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path, "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "files_checked",
            "rules_run",
            "suppressed",
            "violations",
            "baselined",
            "clean",
        }
        assert payload["clean"] is False
        assert payload["files_checked"] == 2
        (violation,) = payload["violations"]
        assert set(violation) == {"rule", "path", "line", "col", "message"}
        assert violation["rule"] == "R001"
        assert violation["path"].endswith("mod.py")
        assert isinstance(violation["line"], int)

    def test_clean_json(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD_SNIPPET)
        assert lint(tmp_path, "--format", "json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["violations"] == []


class TestBaseline:
    def test_write_then_pass(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path, "--write-baseline") == 0
        baseline = json.loads((tmp_path / "baseline.json").read_text())
        assert baseline["version"] == 1
        assert len(baseline["violations"]) == 1
        capsys.readouterr()
        # Grandfathered: same finding no longer fails the run.
        assert lint(tmp_path) == 0
        assert "baselined: 1" in capsys.readouterr().out

    def test_new_violation_still_fails_with_baseline(self, tmp_path):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path, "--write-baseline") == 0
        mod = tmp_path / "pkg" / "mod.py"
        mod.write_text(BAD_SNIPPET + "\n\ndef g():\n    return random.choice([1])\n")
        assert lint(tmp_path) == 1

    def test_strict_rejects_nonempty_baseline(self, tmp_path, capsys):
        write_tree(tmp_path, BAD_SNIPPET)
        assert lint(tmp_path, "--write-baseline") == 0
        capsys.readouterr()
        assert lint(tmp_path, "--strict") == 1
        assert "empty baseline" in capsys.readouterr().err

    def test_strict_with_empty_baseline_passes(self, tmp_path):
        write_tree(tmp_path, GOOD_SNIPPET)
        (tmp_path / "baseline.json").write_text(
            '{"version": 1, "violations": []}\n'
        )
        assert lint(tmp_path, "--strict") == 0

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        write_tree(tmp_path, GOOD_SNIPPET)
        (tmp_path / "baseline.json").write_text("{not json")
        assert lint(tmp_path) == 2


class TestListRules:
    def test_catalog_names_every_rule(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008"):
            assert code in out


class TestRepoIsClean:
    """The shipped tree itself passes its own linter.

    This is the acceptance criterion `repro lint src/ exits 0 with an
    empty baseline` as a tier-1 test, so a violation introduced by any
    future PR fails locally before CI.
    """

    def test_src_lint_clean_under_committed_baseline(self, capsys):
        repo = Path(__file__).resolve().parents[2]
        baseline = repo / "analysis-baseline.json"
        assert baseline.exists()
        assert json.loads(baseline.read_text())["violations"] == []
        code = main(
            [
                "lint",
                str(repo / "src"),
                "--root",
                str(repo),
                "--baseline",
                str(baseline),
                "--strict",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, f"repro lint src/ found violations:\n{out}"
