"""ModelRegistry: named checkpoints, discovery, lazy candidate sets."""

import numpy as np
import pytest

from repro.datasets import load
from repro.models import build_model, load_model
from repro.serve import ModelRegistry
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def dataset():
    return load("codex-s-lite")


@pytest.fixture
def registry(tmp_path, dataset):
    return ModelRegistry(
        ExperimentStore(tmp_path / "store"), dataset.graph, types=dataset.types
    )


def _model(dataset, name="distmult", seed=0):
    graph = dataset.graph
    return build_model(name, graph.num_entities, graph.num_relations, dim=8, seed=seed)


class TestRegistration:
    def test_register_persists_a_named_checkpoint(self, registry, dataset):
        registry.register("prod", _model(dataset))
        path = registry.checkpoint_dir / "prod.npz"
        assert path.exists()
        assert load_model(path).name == "distmult"
        assert registry.names() == ["prod"]
        assert "prod" in registry and len(registry) == 1

    def test_register_without_persist_stays_in_memory(self, registry, dataset):
        registry.register("ephemeral", _model(dataset), persist=False)
        assert not (registry.checkpoint_dir / "ephemeral.npz").exists()
        assert registry.model("ephemeral").name == "distmult"

    def test_register_path_defers_loading(self, registry, dataset, tmp_path):
        from repro.models import save_model

        path = tmp_path / "ckpt.npz"
        save_model(_model(dataset), path)
        entry = registry.register_path(path)
        assert entry.name == "ckpt"
        assert not entry.loaded
        assert registry.model("ckpt").num_entities == dataset.graph.num_entities
        assert entry.loaded

    def test_register_path_missing_file_rejected(self, registry, tmp_path):
        with pytest.raises(FileNotFoundError):
            registry.register_path(tmp_path / "nope.npz")

    def test_vocab_mismatch_rejected(self, registry):
        small = build_model("distmult", 5, 2, dim=4)
        with pytest.raises(ValueError, match="serving graph"):
            registry.register("bad", small)

    def test_unknown_name_rejected(self, registry):
        with pytest.raises(KeyError, match="unknown model"):
            registry.model("nope")


class TestDiscovery:
    def test_discover_finds_persisted_checkpoints(self, registry, dataset, tmp_path):
        registry.register("a", _model(dataset, seed=1))
        registry.register("b", _model(dataset, seed=2))
        fresh = ModelRegistry(
            ExperimentStore(tmp_path / "store"), dataset.graph, types=dataset.types
        )
        assert fresh.discover() == ["a", "b"]
        assert fresh.discover() == []  # idempotent
        np.testing.assert_array_equal(
            fresh.model("a").entity.data, registry.model("a").entity.data
        )


class TestCandidates:
    def test_candidates_built_lazily_and_shared(self, registry, dataset):
        registry.register("a", _model(dataset, seed=1))
        registry.register("b", _model(dataset, seed=2))
        sets_a = registry.candidates("a")
        assert sets_a.recommender_name == "l-wd"
        assert registry.candidates("b") is sets_a  # same recommender, one build

    def test_candidates_persist_across_processes(self, registry, dataset, tmp_path):
        registry.register("a", _model(dataset))
        sets = registry.candidates("a")
        fresh = ModelRegistry(
            ExperimentStore(tmp_path / "store"), dataset.graph, types=dataset.types
        )
        fresh.discover()
        restored = fresh.candidates("a")
        for side in ("head", "tail"):
            for relation in range(dataset.graph.num_relations):
                np.testing.assert_array_equal(
                    restored.candidates(relation, side), sets.candidates(relation, side)
                )

    def test_per_entry_recommender_override(self, registry, dataset):
        registry.register("default", _model(dataset, seed=1))
        registry.register("typed", _model(dataset, seed=2), recommender="pt")
        assert registry.candidates("default").recommender_name == "l-wd"
        assert registry.candidates("typed").recommender_name == "pt"


class TestDescribe:
    def test_describe_row(self, registry, dataset):
        registry.register("prod", _model(dataset))
        row = registry.describe("prod")
        assert row["name"] == "prod"
        assert row["model"] == "distmult"
        assert row["dim"] == 8
        assert row["num_entities"] == dataset.graph.num_entities
        assert row["checkpoint"].endswith("prod.npz")
        assert row["candidates_built"] is False
        registry.candidates("prod")
        assert registry.describe("prod")["candidates_built"] is True
