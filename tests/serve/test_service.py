"""LinkPredictionService: top-k semantics, offline-exact ranks, caching."""

import numpy as np
import pytest

from repro.core.ranking import evaluate_full
from repro.datasets import load
from repro.models import build_model
from repro.serve import LinkPredictionService, ModelRegistry
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def dataset():
    return load("codex-s-lite")


@pytest.fixture(scope="module")
def model(dataset):
    graph = dataset.graph
    return build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=0)


@pytest.fixture
def service(tmp_path, dataset, model):
    registry = ModelRegistry(
        ExperimentStore(tmp_path / "store"), dataset.graph, types=dataset.types
    )
    registry.register("dm", model)
    with LinkPredictionService(registry, max_wait=0.001) as svc:
        yield svc


class TestRank:
    def test_topk_matches_manual_ranking(self, service, dataset, model):
        graph = dataset.graph
        response = service.rank("dm", 3, 0, side="tail", k=5, candidates="all")
        scores = model.score_all(3, 0, "tail").astype(np.float64).copy()
        scores[graph.true_answers(3, 0, "tail")] = -np.inf
        scores[3] = -np.inf  # the anchor itself is never a *new* link
        order = np.lexsort((np.arange(scores.size), -scores))
        expected = [int(e) for e in order[:5] if np.isfinite(scores[e])]
        assert [row["entity_id"] for row in response["results"]] == expected
        assert [row["rank"] for row in response["results"]] == list(
            range(1, len(expected) + 1)
        )
        assert response["num_candidates"] == graph.num_entities
        assert response["cached"] is False

    def test_filter_known_drops_observed_links(self, service, dataset):
        graph = dataset.graph
        h, r, t = next(iter(graph.train))
        known = set(graph.true_answers(h, r, "tail").tolist())
        filtered = service.rank("dm", h, r, k=graph.num_entities, candidates="all")
        assert known.isdisjoint(row["entity_id"] for row in filtered["results"])
        unfiltered = service.rank(
            "dm", h, r, k=graph.num_entities, filter_known=False, candidates="all"
        )
        assert known.issubset(row["entity_id"] for row in unfiltered["results"])

    def test_candidate_filtering_restricts_the_pool(self, service, dataset):
        graph = dataset.graph
        # Find a column whose candidate set is a strict subset.
        sets = service.registry.candidates("dm")
        relation = next(
            r
            for r in range(graph.num_relations)
            if 0 < sets.set_size(r, "tail") < graph.num_entities
        )
        pool = set(sets.candidates(relation, "tail").tolist())
        response = service.rank("dm", 0, relation, k=20, filter_known=False)
        assert response["num_candidates"] == len(pool)
        assert all(row["entity_id"] in pool for row in response["results"])

    def test_filter_known_excludes_the_anchor_itself(self, service, dataset):
        graph = dataset.graph
        for anchor in range(5):
            response = service.rank(
                "dm", anchor, 0, k=graph.num_entities, candidates="all"
            )
            assert anchor not in {row["entity_id"] for row in response["results"]}

    def test_cached_response_survives_caller_mutation(self, service):
        first = service.rank("dm", 2, 2, k=4)
        first["results"].clear()  # an in-process caller mangles its copy
        second = service.rank("dm", 2, 2, k=4)
        assert second["cached"] is True
        assert len(second["results"]) > 0

    def test_labels_accepted_and_returned(self, service, dataset):
        graph = dataset.graph
        by_label = service.rank(
            "dm", graph.entities.label_of(5), graph.relations.label_of(1), k=3
        )
        by_id = service.rank("dm", 5, 1, k=3)
        assert by_label["results"] == by_id["results"]
        assert by_label["anchor_id"] == 5 and by_label["relation_id"] == 1
        assert by_label["anchor"] == graph.entities.label_of(5)

    def test_head_side_ranks_heads(self, service, dataset, model):
        response = service.rank("dm", 2, 0, side="head", k=3, candidates="all")
        scores = model.score_all(2, 0, "head")
        top = response["results"][0]
        assert scores[top["entity_id"]] == pytest.approx(top["score"])

    def test_unknown_names_raise_key_errors(self, service):
        with pytest.raises(KeyError, match="unknown model"):
            service.rank("nope", 0, 0)
        with pytest.raises(KeyError, match="unknown entity"):
            service.rank("dm", "martian", 0)
        with pytest.raises(KeyError, match="outside"):
            service.rank("dm", 10**9, 0)
        with pytest.raises(ValueError, match="side"):
            service.rank("dm", 0, 0, side="middle")


class TestScoreExactness:
    def test_served_ranks_equal_evaluate_full(self, service, dataset, model):
        """The tentpole guarantee: serving is the offline engine online."""
        graph = dataset.graph
        truth = evaluate_full(model, graph)
        rows = service.score("dm", graph.test.as_tuples())
        assert len(rows) == 2 * len(graph.test)
        for row in rows:
            query = (row["head_id"], row["relation_id"], row["tail_id"], row["side"])
            assert truth.ranks[query] == row["rank"]

    def test_scores_are_the_models(self, service, dataset, model):
        h, r, t = next(iter(dataset.graph.test))
        (row,) = service.score("dm", [(h, r, t)], sides=("tail",))
        assert row["score"] == pytest.approx(float(model.score_all(h, r, "tail")[t]))


class TestCache:
    def test_repeat_rank_hits_the_cache(self, service):
        first = service.rank("dm", 1, 1, k=4)
        second = service.rank("dm", 1, 1, k=4)
        assert second["cached"] is True
        assert second["results"] == first["results"]
        assert service.health()["cache"]["hits"] == 1

    def test_distinct_queries_miss(self, service):
        service.rank("dm", 1, 1, k=4)
        different_k = service.rank("dm", 1, 1, k=5)
        assert different_k["cached"] is False

    def test_cache_disabled_by_capacity_zero(self, tmp_path, dataset, model):
        registry = ModelRegistry(
            ExperimentStore(tmp_path / "s2"), dataset.graph, types=dataset.types
        )
        registry.register("dm", model, persist=False)
        with LinkPredictionService(registry, cache_size=0, max_wait=0.0) as svc:
            svc.rank("dm", 1, 1)
            assert svc.rank("dm", 1, 1)["cached"] is False


class TestHealth:
    def test_health_counters(self, service, dataset):
        service.rank("dm", 0, 0, k=2)
        service.score("dm", [next(iter(dataset.graph.test))], sides=("tail",))
        health = service.health()
        assert health["status"] == "ok"
        assert health["models"] == ["dm"]
        assert health["graph"] == dataset.graph.name
        assert health["scheduler"]["requests"] >= 2
        assert health["scheduler"]["batches"] >= 1
