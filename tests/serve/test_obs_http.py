"""/metrics exposition and request-id correlation over a live server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datasets import load
from repro.models import build_model
from repro.obs.metrics import parse_prometheus
from repro.serve import (
    LinkPredictionService,
    ModelRegistry,
    ServeClient,
    ServeHTTPServer,
)
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def dataset():
    return load("codex-s-lite")


@pytest.fixture(scope="module")
def stack(tmp_path_factory, dataset):
    graph = dataset.graph
    registry = ModelRegistry(
        ExperimentStore(tmp_path_factory.mktemp("store")), graph, types=dataset.types
    )
    registry.register(
        "dm", build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
    )
    service = LinkPredictionService(registry, max_wait=0.001)
    server = ServeHTTPServer(service, port=0)
    server.start_background()
    yield service, server
    server.shutdown()
    server.server_close()
    service.close()


def _get(server, path, headers=None):
    request = urllib.request.Request(server.url + path, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read().decode()


def _post(server, path, payload, headers=None):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), json.loads(response.read())


class TestMetricsEndpoint:
    def test_exposes_request_counters_latency_and_cache_metrics(self, stack, dataset):
        service, server = stack
        client = ServeClient(base_url=server.url)
        # Two distinct rank queries, then a repeat of the first (cache hit),
        # and one score call — deterministic traffic for the assertions.
        client.rank("dm", "e1", "r0", k=3, candidates="all")
        client.rank("dm", "e2", "r0", k=3, candidates="all")
        client.rank("dm", "e1", "r0", k=3, candidates="all")
        client.score("dm", dataset.graph.test.as_tuples()[:2])

        status, headers, text = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = parse_prometheus(text)

        # qps numerator: requests by endpoint.
        rank_requests = samples[
            ("repro_serve_requests_total", (("endpoint", "rank"),))
        ]
        assert rank_requests >= 3
        assert samples[
            ("repro_serve_requests_total", (("endpoint", "score"),))
        ] >= 1

        # Latency histogram: count/sum plus cumulative buckets ending +Inf.
        lat_count = samples[
            ("repro_serve_request_seconds_count", (("endpoint", "rank"),))
        ]
        assert lat_count == rank_requests
        assert samples[
            ("repro_serve_request_seconds_sum", (("endpoint", "rank"),))
        ] > 0
        inf_bucket = samples[
            (
                "repro_serve_request_seconds_bucket",
                (("endpoint", "rank"), ("le", "+Inf")),
            )
        ]
        assert inf_bucket == lat_count

        # p50/p99 derivable from the live histogram.
        hist = service.metrics.histogram(
            "repro_serve_request_seconds", labels=("endpoint",)
        )
        p50 = hist.quantile(0.5, endpoint="rank")
        p99 = hist.quantile(0.99, endpoint="rank")
        assert 0 < p50 <= p99

        # Cache hit rate: 1 hit out of 3 lookups (at least).
        hits = samples[("repro_serve_cache_hits_total", ())]
        misses = samples[("repro_serve_cache_misses_total", ())]
        assert hits >= 1 and misses >= 2
        hit_rate = samples[("repro_serve_cache_hit_rate", ())]
        assert hit_rate == pytest.approx(hits / (hits + misses))

        # Batch occupancy: every dispatched batch observed.
        assert samples[("repro_serve_batch_size_count", ())] == samples[
            ("repro_serve_batches_total", ())
        ]
        assert samples[("repro_serve_mean_batch_size", ())] > 0
        # Queue drained: depth gauge returns to zero between requests.
        assert samples[("repro_serve_queue_depth", ())] == 0
        assert samples[("repro_serve_uptime_seconds", ())] > 0


class TestRequestId:
    def test_generated_on_header_and_json_body(self, stack):
        _, server = stack
        status, headers, payload = _post(
            server, "/v1/rank", {"model": "dm", "anchor": "e1", "relation": "r0"}
        )
        assert status == 200
        assert headers["X-Request-Id"] == payload["request_id"]
        assert len(payload["request_id"]) == 16

    def test_client_supplied_id_is_echoed(self, stack):
        _, server = stack
        status, headers, payload = _get(
            server, "/healthz", headers={"X-Request-Id": "trace-me-123"}
        )
        body = json.loads(payload)
        assert headers["X-Request-Id"] == "trace-me-123"
        assert body["request_id"] == "trace-me-123"

    def test_error_payloads_carry_the_request_id(self, stack):
        _, server = stack
        request = urllib.request.Request(
            server.url + "/v1/rank",
            data=json.dumps(
                {"model": "nope", "anchor": "e1", "relation": "r0"}
            ).encode(),
            headers={"Content-Type": "application/json", "X-Request-Id": "err-42"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["request_id"] == "err-42"
        assert excinfo.value.headers["X-Request-Id"] == "err-42"
        assert "error" in body

    def test_metrics_response_carries_the_header(self, stack):
        _, server = stack
        _, headers, _ = _get(
            server, "/metrics", headers={"X-Request-Id": "metrics-7"}
        )
        assert headers["X-Request-Id"] == "metrics-7"
