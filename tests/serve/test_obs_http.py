"""/metrics exposition and request-id correlation over a live server."""

import io
import json
import time
import urllib.error
import urllib.request

import pytest

from repro.datasets import load
from repro.models import build_model
from repro.obs import get_tracer, set_tracing
from repro.obs.log import MAX_REQUEST_ID_LENGTH, configure_logging
from repro.obs.metrics import parse_prometheus
from repro.obs.trace import chrome_trace
from repro.serve import (
    LinkPredictionService,
    ModelRegistry,
    ServeClient,
    ServeHTTPServer,
)
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def dataset():
    return load("codex-s-lite")


@pytest.fixture(scope="module")
def stack(tmp_path_factory, dataset):
    graph = dataset.graph
    registry = ModelRegistry(
        ExperimentStore(tmp_path_factory.mktemp("store")), graph, types=dataset.types
    )
    registry.register(
        "dm", build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
    )
    service = LinkPredictionService(registry, max_wait=0.001)
    server = ServeHTTPServer(service, port=0)
    server.start_background()
    yield service, server
    server.shutdown()
    server.server_close()
    service.close()


def _get(server, path, headers=None):
    request = urllib.request.Request(server.url + path, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read().decode()


def _post(server, path, payload, headers=None):
    request = urllib.request.Request(
        server.url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), json.loads(response.read())


def _logged_lines(stream, event, timeout=2.0):
    """Parsed log lines of ``event``, waiting briefly for the handler thread.

    The server writes its ``serve.request`` line *after* flushing the
    response, so the client can observe the response before the line
    exists — poll instead of racing.
    """
    deadline = time.monotonic() + timeout
    while True:
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        matched = [line for line in lines if line["event"] == event]
        if matched or time.monotonic() > deadline:
            return matched
        time.sleep(0.01)


class TestMetricsEndpoint:
    def test_exposes_request_counters_latency_and_cache_metrics(self, stack, dataset):
        service, server = stack
        client = ServeClient(base_url=server.url)
        # Two distinct rank queries, then a repeat of the first (cache hit),
        # and one score call — deterministic traffic for the assertions.
        client.rank("dm", "e1", "r0", k=3, candidates="all")
        client.rank("dm", "e2", "r0", k=3, candidates="all")
        client.rank("dm", "e1", "r0", k=3, candidates="all")
        client.score("dm", dataset.graph.test.as_tuples()[:2])

        status, headers, text = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = parse_prometheus(text)

        # qps numerator: requests by endpoint.
        rank_requests = samples[
            ("repro_serve_requests_total", (("endpoint", "rank"),))
        ]
        assert rank_requests >= 3
        assert samples[
            ("repro_serve_requests_total", (("endpoint", "score"),))
        ] >= 1

        # Latency histogram: count/sum plus cumulative buckets ending +Inf.
        lat_count = samples[
            ("repro_serve_request_seconds_count", (("endpoint", "rank"),))
        ]
        assert lat_count == rank_requests
        assert samples[
            ("repro_serve_request_seconds_sum", (("endpoint", "rank"),))
        ] > 0
        inf_bucket = samples[
            (
                "repro_serve_request_seconds_bucket",
                (("endpoint", "rank"), ("le", "+Inf")),
            )
        ]
        assert inf_bucket == lat_count

        # p50/p99 derivable from the live histogram.
        hist = service.metrics.histogram(
            "repro_serve_request_seconds", labels=("endpoint",)
        )
        p50 = hist.quantile(0.5, endpoint="rank")
        p99 = hist.quantile(0.99, endpoint="rank")
        assert 0 < p50 <= p99

        # Cache hit rate: 1 hit out of 3 lookups (at least).
        hits = samples[("repro_serve_cache_hits_total", ())]
        misses = samples[("repro_serve_cache_misses_total", ())]
        assert hits >= 1 and misses >= 2
        hit_rate = samples[("repro_serve_cache_hit_rate", ())]
        assert hit_rate == pytest.approx(hits / (hits + misses))

        # Batch occupancy: every dispatched batch observed.
        assert samples[("repro_serve_batch_size_count", ())] == samples[
            ("repro_serve_batches_total", ())
        ]
        assert samples[("repro_serve_mean_batch_size", ())] > 0
        # Queue drained: depth gauge returns to zero between requests.
        assert samples[("repro_serve_queue_depth", ())] == 0
        assert samples[("repro_serve_uptime_seconds", ())] > 0


class TestRequestId:
    def test_generated_on_header_and_json_body(self, stack):
        _, server = stack
        status, headers, payload = _post(
            server, "/v1/rank", {"model": "dm", "anchor": "e1", "relation": "r0"}
        )
        assert status == 200
        assert headers["X-Request-Id"] == payload["request_id"]
        assert len(payload["request_id"]) == 16

    def test_client_supplied_id_is_echoed(self, stack):
        _, server = stack
        status, headers, payload = _get(
            server, "/healthz", headers={"X-Request-Id": "trace-me-123"}
        )
        body = json.loads(payload)
        assert headers["X-Request-Id"] == "trace-me-123"
        assert body["request_id"] == "trace-me-123"

    def test_error_payloads_carry_the_request_id(self, stack):
        _, server = stack
        request = urllib.request.Request(
            server.url + "/v1/rank",
            data=json.dumps(
                {"model": "nope", "anchor": "e1", "relation": "r0"}
            ).encode(),
            headers={"Content-Type": "application/json", "X-Request-Id": "err-42"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read())
        assert body["request_id"] == "err-42"
        assert excinfo.value.headers["X-Request-Id"] == "err-42"
        assert "error" in body

    def test_metrics_response_carries_the_header(self, stack):
        _, server = stack
        _, headers, _ = _get(
            server, "/metrics", headers={"X-Request-Id": "metrics-7"}
        )
        assert headers["X-Request-Id"] == "metrics-7"

    def test_hostile_header_is_sanitized_not_reflected(self, stack):
        # Control characters strip and the id clamps to 128 chars before
        # it is reflected into the response header — a raw \x01 plus an
        # oversized tail stands in for header-injection payloads (urllib
        # itself refuses to send CRLF, which the unit tests cover).
        _, server = stack
        hostile = "evil\x01\x02id-" + "x" * 300
        status, headers, payload = _get(
            server, "/healthz", headers={"X-Request-Id": hostile}
        )
        assert status == 200
        echoed = headers["X-Request-Id"]
        assert echoed == json.loads(payload)["request_id"]
        assert len(echoed) == MAX_REQUEST_ID_LENGTH
        assert echoed.startswith("evilid-")
        assert not any(ord(ch) < 0x20 or ord(ch) == 0x7F for ch in echoed)

    def test_all_control_header_falls_back_to_generated_id(self, stack):
        _, server = stack
        status, headers, _ = _get(
            server, "/healthz", headers={"X-Request-Id": "\x01\x02\x03"}
        )
        assert status == 200
        assert len(headers["X-Request-Id"]) == 16  # generated, not empty


class TestContentType:
    def test_metrics_content_type_is_prometheus_text_exposition(self, stack):
        _, server = stack
        _, headers, _ = _get(server, "/metrics")
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"


class TestStructuredRequestLog:
    def test_one_json_line_per_request_with_ids(self, stack):
        _, server = stack
        stream = io.StringIO()
        try:
            configure_logging(stream)
            _post(
                server,
                "/v1/rank",
                {"model": "dm", "anchor": "e1", "relation": "r0"},
                headers={"X-Request-Id": "log-me-1"},
            )
            requests = _logged_lines(stream, "serve.request")
        finally:
            configure_logging(None)
        assert len(requests) == 1
        line = requests[0]
        assert line["method"] == "POST"
        assert line["path"] == "/v1/rank"
        assert line["status"] == 200
        assert line["seconds"] >= 0.0
        assert line["request_id"] == "log-me-1"
        assert line["trace_id"]

    def test_error_responses_log_their_status(self, stack):
        _, server = stack
        stream = io.StringIO()
        try:
            configure_logging(stream)
            with pytest.raises(urllib.error.HTTPError):
                _post(server, "/v1/rank", {"model": "nope", "anchor": "e1",
                                           "relation": "r0"})
            requests = _logged_lines(stream, "serve.request")
        finally:
            configure_logging(None)
        assert requests and requests[-1]["status"] == 404


class TestCrossProcessCorrelation:
    """One served request under ``engine_workers=2``: the acceptance path.

    A single ``/v1/evaluate`` request must yield (a) a structured log
    line carrying its request id, (b) ``/metrics`` with both per-worker
    telemetry series, and (c) a Chrome-exportable timeline whose serve,
    engine, and worker events all share one trace id — joinable back to
    the log line via the request id.
    """

    @pytest.fixture()
    def pooled_stack(self, tmp_path_factory, dataset):
        graph = dataset.graph
        registry = ModelRegistry(
            ExperimentStore(tmp_path_factory.mktemp("pooled")),
            graph,
            types=dataset.types,
        )
        registry.register(
            "dm",
            build_model("distmult", graph.num_entities, graph.num_relations, dim=8),
        )
        service = LinkPredictionService(registry, max_wait=0.001, engine_workers=2)
        server = ServeHTTPServer(service, port=0)
        server.start_background()
        yield service, server
        set_tracing(False)
        configure_logging(None)
        server.shutdown()
        server.server_close()
        service.close()

    def test_evaluate_request_correlates_logs_metrics_and_trace(
        self, pooled_stack
    ):
        _, server = pooled_stack
        stream = io.StringIO()
        configure_logging(stream)
        tracer = set_tracing(True)

        status, headers, payload = _post(
            server,
            "/v1/evaluate",
            {"model": "dm", "split": "test"},
            headers={"X-Request-Id": "req-eval-1"},
        )
        assert status == 200
        assert headers["X-Request-Id"] == "req-eval-1"
        assert payload["metrics"]["mrr"] > 0

        # (a) Correlated log lines: the request line and the engine run
        # it triggered share one trace id.
        request_line = next(
            line
            for line in _logged_lines(stream, "serve.request")
            if line.get("request_id") == "req-eval-1"
        )
        engine_line = next(
            line
            for line in _logged_lines(stream, "engine.run")
        )
        trace_id = request_line["trace_id"]
        assert engine_line["trace_id"] == trace_id
        assert engine_line["request_id"] == "req-eval-1"
        assert engine_line["workers"] == 2

        # (b) Both workers' telemetry series on /metrics.  The registry
        # is process-global, so restrict to this service's 2-worker pool
        # (other tests' pools may have contributed other worker labels).
        _, _, text = _get(server, "/metrics")
        samples = parse_prometheus(text)
        workers_seen = {
            dict(labels)["worker"]
            for (family, labels) in samples
            if family == "repro_engine_worker_chunks_total"
            and dict(labels)["pool"].startswith("2-")
        }
        assert workers_seen == {"0", "1"}

        # (c) One timeline across processes, exportable to Chrome.
        events = tracer.events()
        on_trace = [
            event for event in events if event.get("trace_id") == trace_id
        ]
        names = {event["name"] for event in on_trace}
        assert "serve.request" in names
        assert "engine.worker.score" in names
        assert len({event["pid"] for event in on_trace}) >= 2  # parent + workers
        exported = chrome_trace(on_trace, metadata={"request_id": "req-eval-1"})
        parsed = json.loads(json.dumps(exported))
        assert parsed["otherData"]["request_id"] == "req-eval-1"
        assert {
            slice["args"]["trace_id"] for slice in parsed["traceEvents"]
        } == {trace_id}

    def test_rank_request_batch_joins_the_request_trace(self, pooled_stack):
        _, server = pooled_stack
        tracer = set_tracing(True)
        _post(
            server,
            "/v1/rank",
            {"model": "dm", "anchor": "e1", "relation": "r0"},
            headers={"X-Request-Id": "req-rank-1"},
        )
        events = tracer.events()
        request_traces = {
            event["trace_id"]
            for event in events
            if event["name"] == "serve.request" and event.get("trace_id")
        }
        batch_traces = {
            event["trace_id"]
            for event in events
            if event["name"] == "serve.batch" and event.get("trace_id")
        }
        # The scheduler adopted a submitting request's context: every
        # batch span rides some request's trace.
        assert batch_traces and batch_traces <= request_traces
