"""BatchScheduler: coalescing, deadlines, exactness of the contract."""

import threading
import time

import pytest

from repro.serve import BatchScheduler, RankQuery


def _query(anchor=0, relation=0, model="m", side="tail", **kwargs):
    return RankQuery(model=model, relation=relation, side=side, anchor=anchor, **kwargs)


def _echo_batch(key, queries):
    """A scorer that records its batches and returns each query's anchor."""
    return [query.anchor for query in queries]


class _Recorder:
    def __init__(self, delay=0.0):
        self.batches = []
        self.delay = delay
        self._lock = threading.Lock()

    def __call__(self, key, queries):
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.batches.append((key, [query.anchor for query in queries]))
        return [query.anchor for query in queries]


class TestQueryValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            _query(kind="nope")

    def test_rank_needs_truth(self):
        with pytest.raises(ValueError, match="truth"):
            _query(kind="rank")

    def test_bad_candidate_mode_rejected(self):
        with pytest.raises(ValueError, match="candidate mode"):
            _query(candidates="some")

    def test_nonpositive_k_rejected(self):
        with pytest.raises(ValueError, match="k must be positive"):
            _query(k=0)

    def test_batch_key_groups_by_model_relation_side_mode(self):
        assert _query(anchor=1).batch_key == _query(anchor=9).batch_key
        assert _query().batch_key != _query(relation=1).batch_key
        assert _query().batch_key != _query(side="head").batch_key
        assert _query().batch_key != _query(candidates="all").batch_key
        assert _query().batch_key != _query(model="other").batch_key


class TestCoalescing:
    def test_concurrent_submits_share_batches(self):
        recorder = _Recorder(delay=0.01)
        with BatchScheduler(recorder, max_batch_size=64, max_wait=0.05) as scheduler:
            pendings = [scheduler.submit(_query(anchor=i)) for i in range(32)]
            results = [p.result(5.0) for p in pendings]
        assert results == list(range(32))
        # 32 same-key requests submitted faster than one batch scores
        # must land in far fewer than 32 scoring calls.
        assert scheduler.num_batches < 8
        assert scheduler.mean_batch_size > 4
        assert sum(len(anchors) for _, anchors in recorder.batches) == 32

    def test_max_batch_size_bounds_every_batch(self):
        recorder = _Recorder(delay=0.005)
        with BatchScheduler(recorder, max_batch_size=4, max_wait=0.05) as scheduler:
            pendings = [scheduler.submit(_query(anchor=i)) for i in range(10)]
            for p in pendings:
                p.result(5.0)
        assert all(len(anchors) <= 4 for _, anchors in recorder.batches)
        assert scheduler.max_batch_observed <= 4

    def test_sequential_mode_scores_one_at_a_time(self):
        recorder = _Recorder()
        with BatchScheduler(recorder, max_batch_size=1, max_wait=0.0) as scheduler:
            pendings = [scheduler.submit(_query(anchor=i)) for i in range(5)]
            for p in pendings:
                p.result(5.0)
        assert all(len(anchors) == 1 for _, anchors in recorder.batches)
        assert scheduler.num_batches == 5

    def test_different_keys_never_mix(self):
        recorder = _Recorder(delay=0.005)
        with BatchScheduler(recorder, max_batch_size=64, max_wait=0.05) as scheduler:
            pendings = [
                scheduler.submit(_query(anchor=i, relation=i % 3)) for i in range(12)
            ]
            for p in pendings:
                p.result(5.0)
        for (_, relation, _, _), anchors in recorder.batches:
            assert all(anchor % 3 == relation for anchor in anchors)

    def test_full_batch_jumps_a_stragglers_deadline(self):
        """A key reaching max_batch_size dispatches immediately, even
        while the dispatcher sits on another key's long max_wait."""
        recorder = _Recorder()
        with BatchScheduler(recorder, max_batch_size=4, max_wait=5.0) as scheduler:
            scheduler.submit(_query(anchor=99, relation=0))  # the straggler
            time.sleep(0.05)  # let the dispatcher park on its deadline
            full = [scheduler.submit(_query(anchor=i, relation=1)) for i in range(4)]
            start = time.monotonic()
            assert [p.result(5.0) for p in full] == [0, 1, 2, 3]
            # The full batch must not have waited out the 5 s deadline.
            assert time.monotonic() - start < 2.0
        # close() flushed the straggler too.
        assert sorted(anchors for _, anchors in recorder.batches) == [
            [0, 1, 2, 3],
            [99],
        ]

    def test_deadline_flushes_a_lonely_request(self):
        with BatchScheduler(_echo_batch, max_batch_size=1024, max_wait=0.01) as scheduler:
            start = time.monotonic()
            assert scheduler.submit(_query(anchor=7)).result(5.0) == 7
            # A solitary request must not wait for a full batch.
            assert time.monotonic() - start < 2.0

    def test_batch_size_reported_on_the_result(self):
        with BatchScheduler(_echo_batch, max_batch_size=1, max_wait=0.0) as scheduler:
            pending = scheduler.submit(_query())
            pending.result(5.0)
            assert pending.batch_size == 1


class TestLifecycle:
    def test_scoring_errors_propagate_to_every_caller(self):
        def boom(key, queries):
            raise RuntimeError("scorer exploded")

        with BatchScheduler(boom, max_batch_size=8, max_wait=0.01) as scheduler:
            pendings = [scheduler.submit(_query(anchor=i)) for i in range(3)]
            for pending in pendings:
                with pytest.raises(RuntimeError, match="scorer exploded"):
                    pending.result(5.0)

    def test_result_count_mismatch_is_an_error(self):
        with BatchScheduler(lambda k, q: [], max_batch_size=1, max_wait=0.0) as scheduler:
            with pytest.raises(RuntimeError, match="results"):
                scheduler.submit(_query()).result(5.0)

    def test_close_flushes_queued_requests(self):
        scheduler = BatchScheduler(_echo_batch, max_batch_size=64, max_wait=5.0)
        pendings = [scheduler.submit(_query(anchor=i)) for i in range(8)]
        scheduler.close()  # must not strand the long max_wait
        assert [p.result(1.0) for p in pendings] == list(range(8))

    def test_submit_after_close_rejected(self):
        scheduler = BatchScheduler(_echo_batch)
        scheduler.close()
        with pytest.raises(RuntimeError, match="closed"):
            scheduler.submit(_query())

    def test_stats_shape(self):
        with BatchScheduler(_echo_batch, max_batch_size=4, max_wait=0.0) as scheduler:
            scheduler.submit(_query()).result(5.0)
            stats = scheduler.stats()
        assert stats["requests"] == 1
        assert stats["batches"] == 1
        assert set(stats) == {"requests", "batches", "mean_batch_size", "max_batch_size"}
