"""The HTTP JSON API and the ServeClient over a live server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.datasets import load
from repro.models import build_model
from repro.serve import (
    LinkPredictionService,
    ModelRegistry,
    ServeClient,
    ServeError,
    ServeHTTPServer,
)
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def dataset():
    return load("codex-s-lite")


@pytest.fixture(scope="module")
def stack(tmp_path_factory, dataset):
    """One live server (ephemeral port) shared by the module's tests."""
    graph = dataset.graph
    registry = ModelRegistry(
        ExperimentStore(tmp_path_factory.mktemp("store")), graph, types=dataset.types
    )
    registry.register(
        "dm", build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
    )
    # A generous batching window keeps the concurrency test deterministic:
    # requests trickling in over HTTP still land in shared batches.
    service = LinkPredictionService(registry, max_wait=0.02)
    server = ServeHTTPServer(service, port=0)
    server.start_background()
    yield service, server
    server.shutdown()
    server.server_close()
    service.close()


@pytest.fixture
def http_client(stack):
    _, server = stack
    return ServeClient(base_url=server.url)


@pytest.fixture
def local_client(stack):
    service, _ = stack
    return ServeClient(service=service)


class TestEndpoints:
    def test_healthz(self, http_client):
        health = http_client.health()
        assert health["status"] == "ok"
        assert health["models"] == ["dm"]

    def test_models(self, http_client):
        (row,) = http_client.models()
        assert row["name"] == "dm"
        assert row["model"] == "distmult"

    def test_rank_http_equals_in_process(self, http_client, local_client):
        over_http = http_client.rank("dm", "e3", "r0", k=5, candidates="all")
        in_process = local_client.rank("dm", "e3", "r0", k=5, candidates="all")
        # The HTTP payload round-trips through JSON; results must agree
        # exactly (floats serialise losslessly via repr).
        assert over_http["results"] == in_process["results"]
        assert over_http["num_candidates"] == in_process["num_candidates"]

    def test_score_http_equals_in_process(self, http_client, local_client, dataset):
        triples = dataset.graph.test.as_tuples()[:4]
        assert http_client.score("dm", triples) == local_client.score("dm", triples)

    def test_concurrent_http_requests_micro_batch(self, stack, http_client, dataset):
        import threading

        service, _ = stack
        batches_before = service.scheduler.num_batches
        anchors = [int(h) for h, _, _ in dataset.graph.test.as_tuples()[:16]]
        results = [None] * len(anchors)

        def fetch(i, anchor):
            results[i] = http_client.rank(
                "dm", anchor, "r1", k=3, candidates="all", filter_known=False
            )

        threads = [
            threading.Thread(target=fetch, args=(i, anchor))
            for i, anchor in enumerate(anchors)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is not None and len(r["results"]) == 3 for r in results)
        # 16 concurrent same-key requests must not cost 16 scoring calls.
        assert service.scheduler.num_batches - batches_before < 16


class TestErrors:
    def test_unknown_model_is_404(self, http_client):
        with pytest.raises(ServeError) as excinfo:
            http_client.rank("nope", "e0", "r0")
        assert excinfo.value.status == 404
        assert "unknown model" in str(excinfo.value)

    def test_unknown_entity_is_404(self, http_client):
        with pytest.raises(ServeError) as excinfo:
            http_client.rank("dm", "martian", "r0")
        assert excinfo.value.status == 404

    def test_bad_side_is_400(self, http_client):
        with pytest.raises(ServeError) as excinfo:
            http_client.rank("dm", "e0", "r0", side="middle")
        assert excinfo.value.status == 400

    def test_unknown_path_is_404(self, stack):
        _, server = stack
        request = urllib.request.Request(server.url + "/v2/rank", data=b"{}", method="POST")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 404

    def test_malformed_json_is_400(self, stack):
        _, server = stack
        request = urllib.request.Request(
            server.url + "/v1/rank", data=b"not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_unknown_field_is_400(self, stack):
        _, server = stack
        body = json.dumps({"model": "dm", "anchor": 0, "relation": 0, "frob": 1})
        request = urllib.request.Request(
            server.url + "/v1/rank", data=body.encode(), method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_missing_field_is_400(self, stack):
        _, server = stack
        request = urllib.request.Request(
            server.url + "/v1/rank", data=b'{"model": "dm"}', method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400


class TestClientConstruction:
    def test_exactly_one_target_required(self, stack):
        service, server = stack
        with pytest.raises(ValueError):
            ServeClient()
        with pytest.raises(ValueError):
            ServeClient(service=service, base_url=server.url)
