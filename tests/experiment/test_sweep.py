"""Sweep expansion: grid/zip semantics and deterministic variant keys."""

import pytest

from repro.experiment import ExperimentSpec, SpecError, spec_key, sweep


@pytest.fixture
def base():
    return ExperimentSpec.from_dict(
        {"model": {"name": "distmult", "dim": 8}, "training": {"epochs": 1}}
    )


class TestExpansion:
    def test_no_axes_yields_the_base(self, base):
        variants = sweep(base)
        assert len(variants) == 1
        assert variants[0].spec == base
        assert variants[0].overrides == {}
        assert variants[0].label == "(base)"

    def test_grid_is_cartesian(self, base):
        variants = sweep(
            base, grid={"model.dim": [4, 8], "training.lr": [0.01, 0.05]}
        )
        assert len(variants) == 4
        combos = {(v.spec.model.dim, v.spec.training.lr) for v in variants}
        assert combos == {(4, 0.01), (4, 0.05), (8, 0.01), (8, 0.05)}

    def test_grid_order_last_axis_fastest(self, base):
        variants = sweep(base, grid={"model.dim": [4, 8], "training.lr": [0.01, 0.05]})
        assert [(v.spec.model.dim, v.spec.training.lr) for v in variants] == [
            (4, 0.01), (4, 0.05), (8, 0.01), (8, 0.05),
        ]

    def test_zip_is_parallel(self, base):
        variants = sweep(
            base,
            zip_={
                "model.name": ["transe", "distmult"],
                "training.loss": ["margin", "softplus"],
            },
        )
        assert [(v.spec.model.name, v.spec.training.loss) for v in variants] == [
            ("transe", "margin"),
            ("distmult", "softplus"),
        ]

    def test_zip_lengths_must_match(self, base):
        with pytest.raises(SpecError, match="share one length"):
            sweep(base, zip_={"model.dim": [4, 8], "training.lr": [0.01]})

    def test_grid_and_zip_compose(self, base):
        variants = sweep(
            base,
            grid={"model.dim": [4, 8]},
            zip_={"training.lr": [0.01, 0.05], "training.margin": [0.5, 1.0]},
        )
        assert len(variants) == 4  # 2 zip bundles x 2 grid points

    def test_empty_axis_rejected(self, base):
        with pytest.raises(SpecError, match="empty value list"):
            sweep(base, grid={"model.dim": []})

    def test_scalar_axis_rejected(self, base):
        with pytest.raises(SpecError, match="list of values"):
            sweep(base, grid={"model.dim": 8})

    def test_invalid_override_value_fails_upfront(self, base):
        with pytest.raises(SpecError, match="model.name"):
            sweep(base, grid={"model.name": ["distmult", "nope"]})


class TestVariantKeys:
    def test_keys_are_deterministic_and_content_addressed(self, base):
        first = sweep(base, grid={"model.dim": [4, 8]})
        second = sweep(base, grid={"model.dim": [4, 8]})
        assert [v.key for v in first] == [v.key for v in second]
        assert len({v.key for v in first}) == 2

    def test_base_matching_variant_shares_the_base_key(self, base):
        variants = sweep(base, grid={"model.dim": [4, base.model.dim]})
        assert variants[1].key == spec_key(base)
        assert variants[0].key != spec_key(base)

    def test_key_equals_variant_spec_key(self, base):
        for variant in sweep(base, grid={"training.lr": [0.01, 0.05]}):
            assert variant.key == spec_key(variant.spec)

    def test_label_summarises_overrides(self, base):
        variant = sweep(base, grid={"model.dim": [4], "training.lr": [0.01]})[0]
        assert variant.label == "dim=4, lr=0.01"
