"""Spec dataclasses: validation, round-trips, registry coverage."""

import dataclasses
import json

import pytest

from repro.datasets.zoo import available_datasets
from repro.experiment import (
    DatasetSpec,
    EvaluationSpec,
    ExperimentSpec,
    ModelSpec,
    ServeSpec,
    SpecError,
    TrainingSpec,
    apply_overrides,
    parse_set_expression,
    spec_key,
)
from repro.models import available_losses, available_models, build_model
from repro.recommenders.registry import available_recommenders, build_recommender

ALL_SPEC_CLASSES = (
    DatasetSpec,
    ModelSpec,
    TrainingSpec,
    EvaluationSpec,
    ServeSpec,
    ExperimentSpec,
)


class TestRoundTrip:
    """from_dict(to_dict(spec)) == spec — for every spec class."""

    @pytest.mark.parametrize("cls", ALL_SPEC_CLASSES)
    def test_default_spec_round_trips(self, cls):
        spec = cls()
        assert cls.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("cls", ALL_SPEC_CLASSES)
    def test_default_spec_json_round_trips(self, cls):
        spec = cls()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert cls.from_dict(payload) == spec

    def test_non_default_experiment_round_trips(self):
        spec = ExperimentSpec.from_dict(
            {
                "name": "study-1",
                "task": "evaluate",
                "dataset": {"name": "codex-m-lite", "options": {"seed": 5}},
                "model": {"name": "transe", "dim": 16, "dtype": "float32"},
                "training": {"epochs": 3, "loss": "margin", "optimizer": "sgd"},
                "evaluation": {
                    "strategy": "probabilistic",
                    "num_samples": 64,
                    "resample_seed": 9,
                    "compare_random": False,
                },
                "serve": {"port": 9999, "model_paths": ["prod=/tmp/x.npz"]},
                "checkpoint": "/tmp/ckpt.npz",
            }
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        assert ExperimentSpec.from_json(spec.to_json()) == spec
        assert spec.evaluation.sample_fraction is None  # num_samples won

    @pytest.mark.parametrize("model_name", available_models())
    def test_every_registry_model_constructible_from_default_spec(self, model_name):
        spec = ModelSpec(name=model_name, dim=8)
        assert ModelSpec.from_dict(spec.to_dict()) == spec
        model = build_model(
            spec.name, 20, 4, dim=spec.dim, seed=spec.seed, dtype=spec.dtype,
            **spec.options,
        )
        assert model.name == model_name

    @pytest.mark.parametrize("rec_name", available_recommenders())
    def test_every_registry_recommender_round_trips(self, rec_name):
        spec = EvaluationSpec(recommender=rec_name)
        assert EvaluationSpec.from_dict(spec.to_dict()) == spec
        assert build_recommender(rec_name).name == rec_name

    @pytest.mark.parametrize("dataset_name", available_datasets())
    def test_every_zoo_dataset_round_trips(self, dataset_name):
        spec = DatasetSpec(name=dataset_name)
        assert DatasetSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("loss", available_losses())
    def test_every_loss_round_trips(self, loss):
        spec = TrainingSpec(loss=loss)
        assert TrainingSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_config().loss == loss

    def test_to_dict_covers_every_field(self):
        """No spec field can silently drop out of the canonical form."""
        for cls in ALL_SPEC_CLASSES:
            payload = cls().to_dict()
            assert set(payload) == {f.name for f in dataclasses.fields(cls)}


class TestValidation:
    def test_unknown_section_key_suggests(self):
        with pytest.raises(SpecError, match="did you mean 'lr'"):
            TrainingSpec.from_dict({"lrr": 0.1})

    def test_unknown_top_level_key(self):
        with pytest.raises(SpecError, match="unknown key 'modle'"):
            ExperimentSpec.from_dict({"modle": {}})

    def test_bad_enum_value_suggests(self):
        with pytest.raises(SpecError, match="did you mean 'static'"):
            EvaluationSpec(strategy="sttic")

    def test_unknown_model_lists_registry(self):
        with pytest.raises(SpecError, match="complex"):
            ModelSpec(name="complexx")

    def test_unknown_recommender(self):
        with pytest.raises(SpecError, match="evaluation.recommender"):
            EvaluationSpec(recommender="lwd")

    def test_unknown_dataset(self):
        with pytest.raises(SpecError, match="dataset.name"):
            DatasetSpec(name="fb15k")

    def test_unknown_task(self):
        with pytest.raises(SpecError, match="task"):
            ExperimentSpec(task="benchmark")

    def test_fraction_and_samples_mutually_exclusive(self):
        with pytest.raises(SpecError, match="exactly one"):
            EvaluationSpec(sample_fraction=0.1, num_samples=10)
        with pytest.raises(SpecError, match="exactly one"):
            EvaluationSpec(sample_fraction=None, num_samples=None)

    def test_fraction_out_of_range(self):
        with pytest.raises(SpecError, match="sample_fraction"):
            EvaluationSpec(sample_fraction=1.5)

    def test_negative_epochs(self):
        with pytest.raises(SpecError, match="training.epochs"):
            TrainingSpec(epochs=-1)

    def test_bool_rejected_where_int_expected(self):
        with pytest.raises(SpecError, match="model.dim"):
            ModelSpec(dim=True)

    def test_dataset_name_override_rejected(self):
        with pytest.raises(SpecError, match="dataset.options"):
            DatasetSpec(options={"name": "other"})

    def test_dataset_unknown_option_field_fails_at_construction(self):
        with pytest.raises(SpecError, match="num_entities"):
            DatasetSpec(options={"num_entity": 50})

    def test_dataset_invalid_option_value_fails_at_construction(self):
        with pytest.raises(SpecError, match="dataset.options"):
            DatasetSpec(options={"num_types": 1})  # generator needs >= 2

    def test_bad_dtype(self):
        with pytest.raises(SpecError, match="float32"):
            ModelSpec(dtype="float16")

    def test_serve_port_range(self):
        with pytest.raises(SpecError, match="serve.port"):
            ServeSpec(port=70000)

    def test_invalid_json_text(self):
        with pytest.raises(SpecError, match="not valid JSON"):
            ExperimentSpec.from_json("{nope")


class TestSpecKey:
    def test_key_is_order_and_default_insensitive(self):
        minimal = ExperimentSpec.from_dict({"model": {"name": "transe"}})
        spelled = ExperimentSpec.from_dict(
            {
                "model": {"dtype": "float64", "name": "transe", "dim": 32, "seed": 0},
                "task": "evaluate",
            }
        )
        assert spec_key(minimal) == spec_key(spelled)

    def test_any_field_changes_the_key(self):
        base = ExperimentSpec()
        assert spec_key(base) != spec_key(base.replace(task="train"))
        changed = ExperimentSpec.from_dict(
            apply_overrides(base.to_dict(), {"training.lr": 0.051})
        )
        assert spec_key(base) != spec_key(changed)

    def test_key_matches_method(self):
        spec = ExperimentSpec()
        assert spec.key() == spec_key(spec)


class TestOverrides:
    def test_parse_set_expression_types(self):
        assert parse_set_expression("training.lr=0.1") == ("training.lr", 0.1)
        assert parse_set_expression("model.name=transe") == ("model.name", "transe")
        assert parse_set_expression("evaluation.compare_random=false") == (
            "evaluation.compare_random",
            False,
        )
        assert parse_set_expression("evaluation.num_samples=null") == (
            "evaluation.num_samples",
            None,
        )

    def test_parse_set_expression_rejects_bare_key(self):
        with pytest.raises(SpecError, match="KEY=VALUE"):
            parse_set_expression("training.lr")

    def test_apply_overrides_is_pure(self):
        payload = {"training": {"lr": 0.05}}
        out = apply_overrides(payload, {"training.lr": 0.1, "model.dim": 16})
        assert payload == {"training": {"lr": 0.05}}
        assert out == {"training": {"lr": 0.1}, "model": {"dim": 16}}

    def test_apply_overrides_rejects_descent_into_scalar(self):
        with pytest.raises(SpecError, match="not a section"):
            apply_overrides({"training": {"lr": 0.05}}, {"training.lr.deep": 1})
