"""The spec orchestrator end to end: run(), stores, sweeps, serving."""

import numpy as np
import pytest

from repro.experiment import (
    DatasetSpec,
    ExperimentSpec,
    build_registry,
    load_dataset,
    run,
    sweep,
)
from repro.models import load_model
from repro.store import ExperimentStore


@pytest.fixture
def store(tmp_path) -> ExperimentStore:
    return ExperimentStore(tmp_path / "store")


TINY = {
    "task": "evaluate",
    "dataset": {"name": "codex-s-lite"},
    "model": {"name": "distmult", "dim": 8},
    "training": {"epochs": 1},
}


def tiny_spec(**top_level) -> ExperimentSpec:
    payload = dict(TINY, **top_level)
    return ExperimentSpec.from_dict(payload)


class TestRun:
    def test_evaluate_produces_all_three_results(self):
        result = run(tiny_spec())
        assert result.truth is not None
        assert result.random_estimate is not None
        assert result.guided_estimate is not None
        assert result.truth.metrics.mrr > 0
        assert result.key == tiny_spec().key()
        assert len(result.losses) == 1

    def test_compare_random_off_skips_the_baseline(self):
        spec = tiny_spec(evaluation={"compare_random": False})
        result = run(spec)
        assert result.random_estimate is None
        assert result.guided_estimate is not None

    def test_train_task_skips_evaluation(self, tmp_path):
        checkpoint = tmp_path / "m.npz"
        spec = tiny_spec(task="train", checkpoint=str(checkpoint))
        result = run(spec)
        assert result.truth is None and result.guided_estimate is None
        assert result.checkpoint_path == str(checkpoint)
        assert load_model(checkpoint).name == "distmult"
        assert result.metric_summary() == {"loss": result.losses[-1]}

    def test_serve_task_rejected(self):
        with pytest.raises(ValueError, match="serve specs"):
            run(tiny_spec(task="serve"))

    def test_runs_are_deterministic(self):
        first = run(tiny_spec())
        second = run(tiny_spec())
        assert first.truth.metrics == second.truth.metrics
        assert first.guided_estimate.metrics.mrr == second.guided_estimate.metrics.mrr

    def test_progress_messages(self):
        messages = []
        run(tiny_spec(), progress=messages.append)
        assert any("Training distmult" in m for m in messages)

    def test_to_dict_is_json_ready(self):
        import json

        payload = run(tiny_spec()).to_dict()
        json.dumps(payload)
        assert payload["spec"]["model"]["name"] == "distmult"
        assert payload["full"]["mrr"] == pytest.approx(payload["full"]["mrr"])

    def test_dataset_overrides_build_a_variant_graph(self):
        dataset = load_dataset(
            DatasetSpec(name="codex-s-lite", options={"num_entities": 500})
        )
        # The generator may fall slightly short of the target (uncovered
        # entities are dropped), but the variant is clearly distinct.
        assert dataset.graph.num_entities > 450
        assert "num_entities=500" in dataset.graph.name
        # The unmodified zoo entry is untouched.
        assert load_dataset(DatasetSpec(name="codex-s-lite")).graph.num_entities == 400


class TestRunWithStore:
    def test_journal_carries_the_spec(self, store):
        spec = tiny_spec()
        result = run(spec, store=store, kind="test:run")
        record = store.journal.get(result.run_id)
        assert record is not None
        assert record.kind == "test:run"
        assert record.spec == spec.to_dict()
        assert record.metrics["mrr"] == pytest.approx(result.truth.metrics.mrr)

    def test_second_run_hits_the_cache(self, store):
        first = run(tiny_spec(), store=store)
        second = run(tiny_spec(), store=store)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.truth.metrics == first.truth.metrics

    def test_resample_seed_changes_pools_not_truth(self, store):
        base = run(tiny_spec(), store=store)
        resampled = run(
            tiny_spec(evaluation={"resample_seed": 7}), store=store
        )
        # Ground truth is pool-independent; the sampled estimate is not.
        assert resampled.truth.metrics == base.truth.metrics
        assert (
            resampled.guided_estimate.metrics.mrr
            != base.guided_estimate.metrics.mrr
        )

    def test_sweep_variants_share_cached_stages(self, store):
        """Two lrs differ only in training: they share the prepared pools."""
        base = tiny_spec()
        variants = sweep(base, grid={"training.lr": [0.01, 0.05]})
        for variant in variants:
            run(variant.spec, store=store)
        preps = [e for e in store.artifacts.entries() if e.kind == "prep"]
        pools = [e for e in store.artifacts.entries() if e.kind == "pools"]
        truths = [e for e in store.artifacts.entries() if e.kind == "truth"]
        # One guided + one random preparation serve both variants ...
        assert len(preps) == 2 and len(pools) == 2
        # ... while each trained model has its own ground truth.
        assert len(truths) == 2


class TestBuildRegistry:
    def test_ad_hoc_model_trained_and_persisted(self, store):
        spec = tiny_spec(task="serve", training={"epochs": 1})
        registry, discovered = build_registry(spec, store)
        assert discovered == []
        assert registry.names() == ["distmult"]
        assert (store.root / "serve" / "distmult.npz").exists()

    def test_model_paths_registered_by_name(self, store, tmp_path):
        checkpoint = tmp_path / "ckpt.npz"
        run(tiny_spec(task="train", checkpoint=str(checkpoint)))
        spec = tiny_spec(
            task="serve", serve={"model_paths": [f"prod={checkpoint}"]}
        )
        registry, _ = build_registry(spec, store)
        assert "prod" in registry.names()
        assert registry.model("prod").name == "distmult"

    def test_discovery_skips_ad_hoc_training(self, store):
        first_spec = tiny_spec(task="serve", training={"epochs": 1})
        build_registry(first_spec, store)
        registry, discovered = build_registry(first_spec, store)
        assert discovered == ["distmult"]
        entry = registry.entry("distmult")
        assert entry.model is None  # lazily loaded, not retrained


class TestShimParity:
    """The library-level acceptance check: spec == legacy hand-wiring."""

    def test_run_matches_hand_wired_pipeline(self):
        from repro.core.protocol import EvaluationProtocol
        from repro.datasets.zoo import load
        from repro.models import Trainer, TrainingConfig, build_model

        spec = tiny_spec()
        result = run(spec)

        dataset = load("codex-s-lite")
        graph = dataset.graph
        model = build_model(
            "distmult", graph.num_entities, graph.num_relations, dim=8, seed=0
        )
        config = TrainingConfig(epochs=1, lr=0.05, loss="softplus", seed=0)
        Trainer(config).fit(model, graph)
        protocol = EvaluationProtocol(
            graph,
            recommender="l-wd",
            strategy="static",
            sample_fraction=0.1,
            types=dataset.types,
            seed=0,
        )
        protocol.prepare()
        truth = protocol.evaluate_full(model)
        estimate = protocol.evaluate(model)
        assert result.truth.metrics == truth.metrics
        assert result.guided_estimate.metrics.mrr == estimate.metrics.mrr
        assert np.array_equal(
            sorted(result.truth.ranks.values()), sorted(truth.ranks.values())
        )
