"""The mmap model backend through the spec system, runner and store."""

from __future__ import annotations

import pytest

from repro.experiment import ExperimentSpec, ModelSpec, SpecError
from repro.experiment import run as run_experiment
from repro.store import ExperimentStore
from repro.store.keys import model_fingerprint


class TestBackendSpec:
    def test_default_is_memory(self):
        assert ModelSpec().backend == "memory"

    def test_round_trips(self):
        spec = ModelSpec(backend="mmap")
        assert ModelSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict()["backend"] == "mmap"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SpecError, match="model.backend"):
            ModelSpec(backend="tape")

    def test_backend_changes_spec_key(self):
        memory = ExperimentSpec(model=ModelSpec(backend="memory"))
        mmap = ExperimentSpec(model=ModelSpec(backend="mmap"))
        assert memory.key() != mmap.key()


def _spec(backend: str, task: str = "evaluate") -> ExperimentSpec:
    payload = {
        "task": task,
        "dataset": {"name": "codex-s-lite"},
        "model": {"name": "distmult", "dim": 8, "backend": backend},
        "training": {"epochs": 1},
        "evaluation": {"num_samples": 16, "compare_random": False},
    }
    return ExperimentSpec.from_dict(payload)


class TestRunnerBackend:
    def test_mmap_run_matches_memory_run(self):
        memory = run_experiment(_spec("memory"))
        mmap = run_experiment(_spec("mmap"))
        assert mmap.model.shard_source is not None
        assert memory.truth is not None and mmap.truth is not None
        assert mmap.truth.ranks == memory.truth.ranks
        assert mmap.truth.metrics == memory.truth.metrics
        assert mmap.guided_estimate.ranks == memory.guided_estimate.ranks

    def test_store_run_shards_under_store_root(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        result = run_experiment(_spec("mmap"), store=store)
        directory = result.model.shard_source.directory
        assert str(store.root / "mmap") in str(directory)
        assert (store.root / "mmap" / result.key / "manifest.json").exists()


class TestModelFingerprint:
    def test_mmap_fingerprint_uses_shard_digest(self, tmp_path):
        from repro.models import build_model
        from repro.models.io import open_mmap, save_sharded

        memory_model = build_model("distmult", 10, 3, dim=4, seed=0)
        save_sharded(memory_model, tmp_path / "s")
        mmap_model = open_mmap(tmp_path / "s")
        key = model_fingerprint(mmap_model)
        # Separate namespaces by design: equal parameters, different keys
        # (hashing mmap bytes would stream the whole table through RAM).
        assert key != model_fingerprint(memory_model)
        # Stable: recomputing without touching the arrays is identical.
        assert model_fingerprint(mmap_model) == key

    def test_train_task_also_round_trips(self):
        result = run_experiment(_spec("mmap", task="train"))
        assert result.model.shard_source is not None

    def test_same_shards_same_fingerprint(self, tmp_path):
        from repro.models import build_model
        from repro.models.io import open_mmap, save_sharded

        model = build_model("distmult", 10, 3, dim=4, seed=0)
        save_sharded(model, tmp_path / "a")
        save_sharded(model, tmp_path / "b")
        assert model_fingerprint(open_mmap(tmp_path / "a")) == model_fingerprint(
            open_mmap(tmp_path / "b")
        )
