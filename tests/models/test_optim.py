"""Optimizers: convergence on a quadratic, state handling, validation."""

import numpy as np
import pytest

from repro.autodiff.engine import parameter, square, sum_
from repro.models.optim import SGD, Adam, build_optimizer


def quadratic_steps(optimizer_factory, steps=200):
    """Minimise ||x - 3||^2 and return the final parameter."""
    x = parameter(np.array([10.0, -10.0]))
    optimizer = optimizer_factory([x])
    for _ in range(steps):
        loss = sum_(square(x - 3.0))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return x.data


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain = quadratic_steps(lambda p: SGD(p, lr=0.01), steps=50)
        momentum = quadratic_steps(lambda p: SGD(p, lr=0.01, momentum=0.9), steps=50)
        assert abs(momentum - 3.0).max() < abs(plain - 3.0).max()

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: Adam(p, lr=0.3))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-2)

    def test_skips_parameters_without_grad(self):
        used = parameter(np.array([1.0]))
        unused = parameter(np.array([7.0]))
        optimizer = Adam([used, unused], lr=0.1)
        loss = sum_(square(used))
        loss.backward()
        optimizer.step()
        assert unused.data[0] == 7.0
        assert used.data[0] != 1.0

    def test_weight_decay_shrinks_parameters(self):
        x = parameter(np.array([5.0]))
        optimizer = Adam([x], lr=0.1, weight_decay=1.0)
        for _ in range(100):
            loss = sum_(square(x - 5.0))  # pull toward 5, decay toward 0
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert 0.0 < x.data[0] < 5.0

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            Adam([parameter(np.zeros(1))], lr=0.1, weight_decay=-0.1)


class TestFactory:
    def test_builds_both(self):
        params = [parameter(np.zeros(1))]
        assert isinstance(build_optimizer("adam", params, lr=0.1), Adam)
        assert isinstance(build_optimizer("SGD", params, lr=0.1), SGD)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_optimizer("lbfgs", [parameter(np.zeros(1))], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([parameter(np.zeros(1))], lr=0.0)
