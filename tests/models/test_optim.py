"""Optimizers: convergence on a quadratic, state handling, validation,
and the sparse row-indexed update path the fused kernels drive."""

import numpy as np
import pytest

from repro.autodiff.engine import parameter, square, sum_
from repro.models.optim import SGD, Adagrad, Adam, build_optimizer, coalesce_rows


def quadratic_steps(optimizer_factory, steps=200):
    """Minimise ||x - 3||^2 and return the final parameter."""
    x = parameter(np.array([10.0, -10.0]))
    optimizer = optimizer_factory([x])
    for _ in range(steps):
        loss = sum_(square(x - 3.0))
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return x.data


class TestSGD:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-3)

    def test_momentum_accelerates(self):
        plain = quadratic_steps(lambda p: SGD(p, lr=0.01), steps=50)
        momentum = quadratic_steps(lambda p: SGD(p, lr=0.01, momentum=0.9), steps=50)
        assert abs(momentum - 3.0).max() < abs(plain - 3.0).max()

    def test_invalid_momentum_rejected(self):
        with pytest.raises(ValueError):
            SGD([parameter(np.zeros(1))], lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: Adam(p, lr=0.3))
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-2)

    def test_skips_parameters_without_grad(self):
        used = parameter(np.array([1.0]))
        unused = parameter(np.array([7.0]))
        optimizer = Adam([used, unused], lr=0.1)
        loss = sum_(square(used))
        loss.backward()
        optimizer.step()
        assert unused.data[0] == 7.0
        assert used.data[0] != 1.0

    def test_weight_decay_shrinks_parameters(self):
        x = parameter(np.array([5.0]))
        optimizer = Adam([x], lr=0.1, weight_decay=1.0)
        for _ in range(100):
            loss = sum_(square(x - 5.0))  # pull toward 5, decay toward 0
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert 0.0 < x.data[0] < 5.0

    def test_invalid_betas_rejected(self):
        with pytest.raises(ValueError):
            Adam([parameter(np.zeros(1))], lr=0.1, betas=(1.0, 0.9))

    def test_negative_weight_decay_rejected(self):
        with pytest.raises(ValueError):
            Adam([parameter(np.zeros(1))], lr=0.1, weight_decay=-0.1)


class TestAdagrad:
    def test_converges_on_quadratic(self):
        final = quadratic_steps(lambda p: Adagrad(p, lr=1.0), steps=400)
        np.testing.assert_allclose(final, [3.0, 3.0], atol=1e-2)

    def test_effective_rate_shrinks(self):
        """The accumulated square sum monotonically damps the step size."""
        x = parameter(np.array([10.0]))
        optimizer = Adagrad([x], lr=1.0)
        steps = []
        for _ in range(3):
            before = x.data.copy()
            loss = sum_(square(x))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            steps.append(abs(float((x.data - before)[0])))
        assert steps[0] > steps[1] > steps[2]


class TestFactory:
    def test_builds_all(self):
        params = [parameter(np.zeros(1))]
        assert isinstance(build_optimizer("adam", params, lr=0.1), Adam)
        assert isinstance(build_optimizer("SGD", params, lr=0.1), SGD)
        assert isinstance(build_optimizer("adagrad", params, lr=0.1), Adagrad)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build_optimizer("lbfgs", [parameter(np.zeros(1))], lr=0.1)

    def test_non_positive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([parameter(np.zeros(1))], lr=0.0)


class TestCoalesceRows:
    def test_duplicates_are_summed(self):
        rows = np.asarray([3, 1, 3, 1, 3])
        grads = np.asarray([[1.0], [10.0], [2.0], [20.0], [4.0]])
        unique, summed = coalesce_rows(rows, grads)
        np.testing.assert_array_equal(unique, [1, 3])
        np.testing.assert_allclose(summed, [[30.0], [7.0]])

    def test_unique_rows_pass_through_sorted(self):
        rows = np.asarray([5, 2, 9])
        grads = np.asarray([[1.0], [2.0], [3.0]])
        unique, summed = coalesce_rows(rows, grads)
        np.testing.assert_array_equal(unique, [2, 5, 9])
        np.testing.assert_allclose(summed, [[2.0], [1.0], [3.0]])

    def test_higher_rank_grads(self):
        """RESCAL-style (n, d, d) gradients coalesce along axis 0."""
        rows = np.asarray([0, 0, 1])
        grads = np.arange(12, dtype=float).reshape(3, 2, 2)
        unique, summed = coalesce_rows(rows, grads)
        np.testing.assert_array_equal(unique, [0, 1])
        np.testing.assert_allclose(summed[0], grads[0] + grads[1])
        np.testing.assert_allclose(summed[1], grads[2])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coalesce_rows(np.asarray([[0, 1]]), np.zeros((2, 3)))


#: One optimizer factory per update rule, used by the sparse/dense grid.
_FACTORIES = {
    "sgd": lambda p: SGD(p, lr=0.1),
    "sgd-momentum": lambda p: SGD(p, lr=0.1, momentum=0.9),
    "sgd-decay": lambda p: SGD(p, lr=0.1, weight_decay=0.01),
    "adagrad": lambda p: Adagrad(p, lr=0.5),
    "adam": lambda p: Adam(p, lr=0.1),
    "adam-decay": lambda p: Adam(p, lr=0.1, weight_decay=0.01),
}


class TestStepRows:
    @pytest.mark.parametrize("kind", sorted(_FACTORIES))
    def test_sparse_equals_dense_on_a_dense_batch(self, kind):
        """Touching every row every step, step_rows must equal step."""
        rng = np.random.default_rng(0)
        table = rng.standard_normal((6, 4))
        grads = [rng.standard_normal((6, 4)) for _ in range(5)]

        dense_param = parameter(table.copy())
        dense = _FACTORIES[kind]([dense_param])
        sparse_param = parameter(table.copy())
        sparse = _FACTORIES[kind]([sparse_param])
        rows = np.arange(6)
        for grad in grads:
            dense_param.grad = grad.copy()
            dense.step()
            dense_param.zero_grad()
            sparse.step_rows([(sparse_param, rows, grad.copy())])
        np.testing.assert_allclose(sparse_param.data, dense_param.data, atol=1e-12)

    @pytest.mark.parametrize("kind", sorted(_FACTORIES))
    def test_duplicate_rows_accumulate_before_state(self, kind):
        """Duplicate indices must behave as one summed gradient, not as
        repeated state updates (the Adagrad/Adam trap)."""
        rng = np.random.default_rng(1)
        table = rng.standard_normal((4, 3))
        dup_rows = np.asarray([2, 0, 2])
        dup_grads = rng.standard_normal((3, 3))

        a_param = parameter(table.copy())
        a = _FACTORIES[kind]([a_param])
        a.step_rows([(a_param, dup_rows, dup_grads.copy())])

        b_param = parameter(table.copy())
        b = _FACTORIES[kind]([b_param])
        unique, summed = coalesce_rows(dup_rows, dup_grads)
        b.step_rows([(b_param, unique, summed)])
        np.testing.assert_allclose(a_param.data, b_param.data, atol=1e-12)

    def test_zero_gradient_step_is_noop_for_sgd(self):
        param = parameter(np.ones((3, 2)))
        optimizer = SGD([param], lr=0.5)
        optimizer.step_rows([(param, np.asarray([1]), np.zeros((1, 2)))])
        np.testing.assert_array_equal(param.data, np.ones((3, 2)))

    def test_empty_rows_are_noop(self):
        param = parameter(np.ones((3, 2)))
        optimizer = Adam([param], lr=0.5)
        optimizer.step_rows([(param, np.empty(0, dtype=np.int64), np.empty((0, 2)))])
        np.testing.assert_array_equal(param.data, np.ones((3, 2)))

    def test_dense_step_skips_none_grads(self):
        """A parameter whose grad is None is untouched (zero-grad step)."""
        used = parameter(np.ones(2))
        idle = parameter(np.ones(2))
        optimizer = Adagrad([used, idle], lr=0.5)
        used.grad = np.ones(2)
        optimizer.step()
        assert (used.data != 1.0).all()
        np.testing.assert_array_equal(idle.data, np.ones(2))

    @pytest.mark.parametrize("kind", ["sgd-momentum", "adagrad", "adam"])
    def test_state_dtype_follows_float32_params(self, kind):
        param = parameter(np.ones((4, 2), dtype=np.float32))
        optimizer = _FACTORIES[kind]([param])
        optimizer.step_rows(
            [(param, np.asarray([0, 2]), np.ones((2, 2), dtype=np.float32))]
        )
        assert param.data.dtype == np.float32
        state = {
            "sgd-momentum": getattr(optimizer, "_velocity", None),
            "adagrad": getattr(optimizer, "_sum_sq", None),
            "adam": getattr(optimizer, "_m", None),
        }[kind]
        assert state[0].dtype == np.float32

    def test_unbound_tensor_rejected(self):
        param = parameter(np.ones(2))
        stranger = parameter(np.ones(2))
        optimizer = SGD([param], lr=0.1)
        with pytest.raises(KeyError, match="not bound"):
            optimizer.step_rows([(stranger, np.asarray([0]), np.ones((1,)))])
