"""Trainer: loss trajectories, negative samplers, callbacks, ConvE inverses."""

import numpy as np
import pytest

from repro.models import (
    RecommenderNegativeSampler,
    Trainer,
    TrainingConfig,
    UniformNegativeSampler,
    build_model,
)
from repro.models.training import EpochRecord
from repro.recommenders import build_recommender


class TestConfigValidation:
    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=-1)

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)


class TestUniformSampler:
    def test_shape(self, rng):
        sampler = UniformNegativeSampler(100)
        out = sampler.corrupt(np.zeros(8, dtype=np.int64), 5, np.zeros(8, dtype=bool), rng)
        assert out.shape == (8, 5)
        assert out.min() >= 0 and out.max() < 100

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            UniformNegativeSampler(0)


class TestFilterPositives:
    """The opt-in vectorized false-negative rejection (filter_positives)."""

    def _dense_graph(self):
        """5 entities, 1 relation, relation 0 nearly complete: random
        corruption collides with a true triple more often than not."""
        from repro.kg import KnowledgeGraph, TripleSet, Vocabulary

        triples = [(h, 0, t) for h in range(5) for t in range(5) if h != t][:12]
        return KnowledgeGraph(
            entities=Vocabulary([f"e{i}" for i in range(5)]),
            relations=Vocabulary(["r"]),
            train=TripleSet(triples),
            name="dense",
        )

    def _collisions(self, graph, neg_heads, neg_relations, neg_tails):
        known = {(int(h), int(r), int(t)) for h, r, t in graph.train}
        return sum(
            (int(h), int(r), int(t)) in known
            for h, r, t in zip(
                neg_heads.reshape(-1), neg_relations.reshape(-1), neg_tails.reshape(-1)
            )
        )

    def test_collision_rate_drops_to_zero(self, rng):
        graph = self._dense_graph()
        sampler = UniformNegativeSampler(
            graph.num_entities,
            known_triples=graph,
            filter_positives=True,
            # The graph is deliberately so dense that most redraws collide
            # again; give the geometric decay room to finish.
            max_rounds=64,
        )
        triples = graph.train.array
        heads, relations, tails = triples[:, 0], triples[:, 1], triples[:, 2]
        corrupt_head = rng.random(len(triples)) < 0.5
        replacements = sampler.corrupt(relations, 8, corrupt_head, rng)
        neg_heads = np.repeat(heads[:, None], 8, axis=1)
        neg_tails = np.repeat(tails[:, None], 8, axis=1)
        neg_heads[corrupt_head] = replacements[corrupt_head]
        neg_tails[~corrupt_head] = replacements[~corrupt_head]
        neg_relations = np.repeat(relations[:, None], 8, axis=1)
        before = self._collisions(graph, neg_heads, neg_relations, neg_tails)
        assert before > 0, "dense graph must produce raw collisions"
        remaining = sampler.resample_collisions(
            neg_heads, neg_relations, neg_tails, corrupt_head, rng
        )
        assert remaining == 0
        assert self._collisions(graph, neg_heads, neg_relations, neg_tails) == 0

    def test_accepts_triple_arrays(self, rng):
        sampler = UniformNegativeSampler(
            10, known_triples=[(0, 0, 1), (2, 1, 3)], filter_positives=True
        )
        neg_heads = np.asarray([[0]])
        neg_relations = np.asarray([[0]])
        neg_tails = np.asarray([[1]])  # exactly the known triple
        remaining = sampler.resample_collisions(
            neg_heads, neg_relations, neg_tails, np.asarray([False]), rng
        )
        assert remaining == 0
        assert (int(neg_heads[0, 0]), 0, int(neg_tails[0, 0])) != (0, 1)

    def test_requires_known_triples(self):
        with pytest.raises(ValueError, match="known_triples"):
            UniformNegativeSampler(10, filter_positives=True)

    def test_resample_without_known_rejected(self, rng):
        sampler = UniformNegativeSampler(10)
        with pytest.raises(ValueError, match="known_triples"):
            sampler.resample_collisions(
                np.zeros((1, 1), dtype=np.int64),
                np.zeros((1, 1), dtype=np.int64),
                np.zeros((1, 1), dtype=np.int64),
                np.asarray([True]),
                rng,
            )

    def test_trainer_uses_the_sampler_filter(self, codex_s, monkeypatch):
        """With a filtering sampler the trainer skips its legacy loop."""
        graph = codex_s.graph
        sampler = UniformNegativeSampler(
            graph.num_entities, known_triples=graph, filter_positives=True
        )
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
        trainer = Trainer(TrainingConfig(epochs=1, loss="softplus"), sampler=sampler)
        monkeypatch.setattr(
            trainer,
            "_filter_false_negatives",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("legacy loop used")),
        )
        history = trainer.fit(model, graph)
        assert len(history.losses) == 1


class TestRecommenderSampler:
    def test_draws_from_relation_support(self, codex_s, rng):
        graph = codex_s.graph
        fitted = build_recommender("pt").fit(graph)
        sampler = RecommenderNegativeSampler(fitted, graph.num_relations, uniform_mix=0.0)
        relations = np.zeros(16, dtype=np.int64)
        out = sampler.corrupt(relations, 4, np.zeros(16, dtype=bool), rng)
        support = set(fitted.column_support(0, "tail").tolist())
        assert set(out.reshape(-1).tolist()) <= support

    def test_uniform_mix_reaches_outside_support(self, codex_s, rng):
        graph = codex_s.graph
        fitted = build_recommender("pt").fit(graph)
        sampler = RecommenderNegativeSampler(fitted, graph.num_relations, uniform_mix=0.95)
        out = sampler.corrupt(np.zeros(64, dtype=np.int64), 8, np.zeros(64, dtype=bool), rng)
        support = set(fitted.column_support(0, "tail").tolist())
        assert not set(out.reshape(-1).tolist()) <= support

    def test_invalid_mix_rejected(self, codex_s):
        fitted = build_recommender("pt").fit(codex_s.graph)
        with pytest.raises(ValueError):
            RecommenderNegativeSampler(fitted, 10, uniform_mix=2.0)


class TestTrainingLoop:
    @pytest.mark.parametrize("name,loss", [("transe", "margin"), ("distmult", "softplus")])
    def test_loss_decreases(self, codex_s, name, loss):
        graph = codex_s.graph
        model = build_model(name, graph.num_entities, graph.num_relations, dim=16, seed=0)
        config = TrainingConfig(epochs=4, batch_size=256, num_negatives=4, lr=0.05, loss=loss)
        history = Trainer(config).fit(model, graph)
        assert history.losses[-1] < history.losses[0]
        assert all(isinstance(r, EpochRecord) for r in history.records)

    def test_training_improves_true_triple_rank(self, codex_s):
        graph = codex_s.graph
        model = build_model("complex", graph.num_entities, graph.num_relations, dim=16, seed=0)
        h, r, t = (int(x) for x in graph.train.array[0])

        def rank_of_truth():
            scores = model.score_all(h, r, "tail")
            return int((scores > scores[t]).sum()) + 1

        before = rank_of_truth()
        Trainer(TrainingConfig(epochs=8, lr=0.1, loss="softplus")).fit(model, graph)
        assert rank_of_truth() < before

    def test_zero_epochs_is_noop(self, codex_s):
        graph = codex_s.graph
        model = build_model("transe", graph.num_entities, graph.num_relations, dim=8)
        snapshot = model.entity.data.copy()
        history = Trainer(TrainingConfig(epochs=0)).fit(model, graph)
        assert history.records == []
        np.testing.assert_array_equal(model.entity.data, snapshot)

    def test_callbacks_see_eval_mode(self, codex_s):
        graph = codex_s.graph
        model = build_model("transe", graph.num_entities, graph.num_relations, dim=8)
        seen = []

        def spy(epoch, current, history):
            seen.append((epoch, current.training))
            history.attach("epoch", epoch)

        history = Trainer(TrainingConfig(epochs=2)).fit(model, graph, callbacks=[spy])
        assert seen == [(0, False), (1, False)]
        assert history.extras["epoch"] == [0, 1]
        assert model.training is False

    def test_determinism(self, codex_s):
        graph = codex_s.graph

        def run():
            model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=1)
            Trainer(TrainingConfig(epochs=2, seed=5, loss="softplus")).fit(model, graph)
            return model.entity.data.copy()

        np.testing.assert_array_equal(run(), run())

    def test_conve_trains_inverse_relations(self, codex_s):
        graph = codex_s.graph
        model = build_model(
            "conve", graph.num_entities, graph.num_relations, dim=16, seed=0
        )
        inverse_before = model.relation.data[graph.num_relations :].copy()
        Trainer(TrainingConfig(epochs=1, loss="bce", lr=0.05)).fit(model, graph)
        inverse_after = model.relation.data[graph.num_relations :]
        assert not np.allclose(inverse_before, inverse_after)

    def test_recommender_guided_training_runs(self, codex_s):
        """The paper's Section 7 extension: harder negatives during training."""
        graph = codex_s.graph
        fitted = build_recommender("l-wd").fit(graph)
        sampler = RecommenderNegativeSampler(fitted, graph.num_relations)
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
        history = Trainer(
            TrainingConfig(epochs=2, loss="softplus"), sampler=sampler
        ).fit(model, graph)
        assert history.losses[-1] < history.losses[0]
