"""Model-specific semantics: the structure each scoring function promises."""

import numpy as np
import pytest

from repro.kg.graph import HEAD, TAIL
from repro.models import ComplEx, ConvE, DistMult, RESCAL, RotatE, TransE, TuckER
from repro.models.conve import _im2col_indices


class TestTransE:
    def test_perfect_translation_scores_zero(self):
        model = TransE(10, 2, dim=4, seed=0)
        model.entity.data[0] = [1.0, 0.0, 0.0, 0.0]
        model.relation.data[0] = [0.0, 1.0, 0.0, 0.0]
        model.entity.data[1] = [1.0, 1.0, 0.0, 0.0]
        score = model.score_candidates(0, 0, TAIL, np.array([1]))[0]
        assert score == pytest.approx(0.0, abs=1e-9)

    def test_score_decreases_with_distance(self):
        model = TransE(10, 2, dim=4, seed=0)
        model.entity.data[0] = [0.0, 0.0, 0.0, 0.0]
        model.relation.data[0] = [0.0, 0.0, 0.0, 0.0]
        model.entity.data[1] = [1.0, 0.0, 0.0, 0.0]
        model.entity.data[2] = [5.0, 0.0, 0.0, 0.0]
        scores = model.score_candidates(0, 0, TAIL, np.array([1, 2]))
        assert scores[0] > scores[1]

    def test_l2_norm_variant(self):
        model = TransE(10, 2, dim=4, seed=0, norm=2)
        model.entity.data[0] = [0.0, 0.0, 0.0, 0.0]
        model.relation.data[0] = [0.0, 0.0, 0.0, 0.0]
        model.entity.data[1] = [3.0, 4.0, 0.0, 0.0]
        score = model.score_candidates(0, 0, TAIL, np.array([1]))[0]
        assert score == pytest.approx(-5.0, abs=1e-5)

    def test_invalid_norm_rejected(self):
        with pytest.raises(ValueError):
            TransE(10, 2, norm=3)


class TestDistMult:
    def test_symmetry_in_head_tail(self):
        """DistMult cannot distinguish (h, r, t) from (t, r, h)."""
        model = DistMult(10, 2, dim=6, seed=1)
        forward = model.score_triples(np.array([2]), np.array([0]), np.array([5])).data
        backward = model.score_triples(np.array([5]), np.array([0]), np.array([2])).data
        assert forward[0] == pytest.approx(backward[0])

    def test_trilinear_value(self):
        model = DistMult(4, 1, dim=2, seed=0)
        model.entity.data[0] = [1.0, 2.0]
        model.relation.data[0] = [3.0, 4.0]
        model.entity.data[1] = [5.0, 6.0]
        score = model.score_candidates(0, 0, TAIL, np.array([1]))[0]
        assert score == pytest.approx(1 * 3 * 5 + 2 * 4 * 6)


class TestComplEx:
    def test_asymmetric_under_conjugation(self):
        model = ComplEx(10, 2, dim=6, seed=2)
        forward = model.score_triples(np.array([2]), np.array([0]), np.array([5])).data
        backward = model.score_triples(np.array([5]), np.array([0]), np.array([2])).data
        assert forward[0] != pytest.approx(backward[0])

    def test_matches_complex_arithmetic(self):
        model = ComplEx(4, 1, dim=2, seed=0)
        h = model.entity.data[0, :2] + 1j * model.entity.data[0, 2:]
        r = model.relation.data[0, :2] + 1j * model.relation.data[0, 2:]
        t = model.entity.data[1, :2] + 1j * model.entity.data[1, 2:]
        expected = float(np.real(np.sum(h * r * np.conj(t))))
        score = model.score_candidates(0, 0, TAIL, np.array([1]))[0]
        assert score == pytest.approx(expected, abs=1e-10)


class TestRESCAL:
    def test_bilinear_value(self):
        model = RESCAL(4, 1, dim=2, seed=0)
        h = model.entity.data[0]
        w = model.relation.data[0]
        t = model.entity.data[1]
        score = model.score_candidates(0, 0, TAIL, np.array([1]))[0]
        assert score == pytest.approx(float(h @ w @ t), abs=1e-10)

    def test_parameter_count_quadratic_in_dim(self):
        small = RESCAL(10, 3, dim=4)
        assert small.relation.data.shape == (3, 4, 4)


class TestRotatE:
    def test_rotation_preserves_modulus(self):
        """|h * e^{i theta}| == |h|, so self-rotation onto itself scores 0
        when theta is 0."""
        model = RotatE(6, 2, dim=4, seed=0)
        model.phase.data[0] = 0.0
        score = model.score_candidates(3, 0, TAIL, np.array([3]))[0]
        assert score == pytest.approx(0.0, abs=1e-5)

    def test_full_turn_is_identity(self):
        model = RotatE(6, 2, dim=4, seed=0)
        model.phase.data[0] = 0.0
        model.phase.data[1] = 2.0 * np.pi
        a = model.score_all(2, 0, TAIL)
        b = model.score_all(2, 1, TAIL)
        np.testing.assert_allclose(a, b, atol=1e-8)


class TestTuckER:
    def test_matches_manual_contraction(self):
        model = TuckER(5, 2, dim=3, seed=0)
        h = model.entity.data[1]
        r = model.relation.data[0]
        t = model.entity.data[2]
        expected = float(np.einsum("ijk,i,j,k->", model.core.data, h, r, t))
        score = model.score_candidates(1, 0, TAIL, np.array([2]))[0]
        assert score == pytest.approx(expected, abs=1e-10)


class TestConvE:
    def test_im2col_indices_shape(self):
        patches = _im2col_indices(height=4, width=5, kernel=3)
        assert patches.shape == ((4 - 2) * (5 - 2), 9)
        # First patch reads the top-left 3x3 block in row-major order.
        assert patches[0].tolist() == [0, 1, 2, 5, 6, 7, 10, 11, 12]

    def test_kernel_too_large_rejected(self):
        with pytest.raises(ValueError):
            _im2col_indices(height=2, width=2, kernel=3)

    def test_dim_divisibility_enforced(self):
        with pytest.raises(ValueError):
            ConvE(10, 2, dim=10, embedding_height=4)

    def test_head_queries_use_reciprocal_relations(self):
        model = ConvE(12, 3, dim=8, embedding_height=2, seed=0)
        # Tail query uses relation r; head query must use r + |R|.
        tail_scores = model.score_all(4, 1, TAIL)
        head_scores = model.score_all(4, 1, HEAD)
        assert not np.allclose(tail_scores, head_scores)
        assert model.inverse_offset == 3

    def test_features_batch_matches_single(self):
        model = ConvE(12, 3, dim=8, embedding_height=2, seed=0)
        batch = model.score_candidates_batch(np.array([0, 5]), 1, TAIL, np.array([2, 7]))
        single = model.score_candidates(5, 1, TAIL, np.array([2, 7]))
        np.testing.assert_allclose(batch[1], single, atol=1e-12)

    def test_bias_participates(self):
        model = ConvE(12, 3, dim=8, embedding_height=2, seed=0)
        before = model.score_candidates(0, 0, TAIL, np.array([3]))[0]
        model.bias.data[3] += 1.0
        after = model.score_candidates(0, 0, TAIL, np.array([3]))[0]
        assert after == pytest.approx(before + 1.0)
