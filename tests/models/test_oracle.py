"""Oracle and random scorers: the controllable test substrate itself."""

import numpy as np
import pytest

from repro.core import evaluate_full
from repro.kg.graph import HEAD, TAIL
from repro.models import OracleModel, RandomModel


class TestRandomModel:
    def test_scores_deterministic_per_query(self, tiny_graph):
        model = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations, seed=1)
        a = model.score_all(0, 0, TAIL)
        b = model.score_all(0, 0, TAIL)
        np.testing.assert_array_equal(a, b)

    def test_scores_differ_across_queries(self, tiny_graph):
        model = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations, seed=1)
        assert not np.allclose(model.score_all(0, 0, TAIL), model.score_all(1, 0, TAIL))
        assert not np.allclose(model.score_all(0, 0, TAIL), model.score_all(0, 0, HEAD))

    def test_seed_changes_scores(self, tiny_graph):
        a = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations, seed=1)
        b = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations, seed=2)
        assert not np.allclose(a.score_all(0, 0, TAIL), b.score_all(0, 0, TAIL))

    def test_chance_level_mrr(self, codex_s):
        graph = codex_s.graph
        model = RandomModel(graph.num_entities, graph.num_relations, seed=0)
        result = evaluate_full(model, graph, split="test")
        # Chance MRR on ~400 entities is tiny.
        assert result.metrics.mrr < 0.1


class TestOracleModel:
    def test_consistency_between_surfaces(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, skill=2.0, seed=0)
        full = model.score_all(5, 1, TAIL)
        np.testing.assert_array_equal(
            model.score_candidates(5, 1, TAIL, np.array([0, 5, 9])), full[[0, 5, 9]]
        )

    def test_batch_matches_rowwise(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, skill=2.0, seed=0)
        anchors = np.array([1, 5, 17])
        candidates = np.array([0, 3, 9, 30])
        batch = model.score_candidates_batch(anchors, 2, TAIL, candidates)
        for i, anchor in enumerate(anchors):
            np.testing.assert_allclose(
                batch[i], model.score_candidates(int(anchor), 2, TAIL, candidates)
            )

    def test_batch_default_all_entities(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, skill=2.0, seed=0)
        batch = model.score_candidates_batch(np.array([4]), 0, TAIL)
        np.testing.assert_allclose(batch[0], model.score_all(4, 0, TAIL))

    def test_truth_scores_above_easy_negatives(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, skill=3.0, seed=0)
        h, r, t = (int(x) for x in graph.test.array[0])
        scores = model.score_all(h, r, TAIL)
        outside = np.setdiff1d(
            np.arange(graph.num_entities), graph.observed(r, TAIL)
        )
        outside = np.setdiff1d(outside, graph.true_answers(h, r, TAIL))
        if outside.size:
            assert scores[t] > scores[outside].max() - 1e-9

    def test_skill_increases_true_mrr(self, codex_s):
        graph = codex_s.graph
        weak = evaluate_full(OracleModel(graph, skill=0.0, seed=3), graph, split="test")
        strong = evaluate_full(OracleModel(graph, skill=4.0, seed=3), graph, split="test")
        assert strong.metrics.mrr > weak.metrics.mrr + 0.05

    def test_mrr_in_sane_range(self, codex_s):
        graph = codex_s.graph
        result = evaluate_full(OracleModel(graph, skill=2.0, seed=3), graph, split="test")
        assert 0.2 < result.metrics.mrr < 1.0

    def test_popular_competitors_outrank_unpopular(self, codex_s):
        """The oracle's hard competitors concentrate on high-degree entities."""
        graph = codex_s.graph
        model = OracleModel(graph, skill=2.0, seed=0)
        r = int(graph.train.array[0, 1])
        pool = graph.observed(r, TAIL)
        if pool.size < 5:
            pytest.skip("relation pool too small for a popularity contrast")
        counts = graph.degree_counts(TAIL)[:, r]
        popular = pool[np.argmax(counts[pool])]
        unpopular = pool[np.argmin(counts[pool])]
        # Average over queries to integrate out the per-entity noise.
        anchors = np.unique(graph.train.array[graph.train.array[:, 1] == r][:, 0])[:20]
        diffs = []
        for anchor in anchors:
            scores = model.score_all(int(anchor), r, TAIL)
            diffs.append(scores[popular] - scores[unpopular])
        assert np.mean(diffs) > 0
