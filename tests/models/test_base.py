"""KGEModel base plumbing: parameters, validation, helper surfaces."""

import numpy as np
import pytest

from repro.models import build_model
from repro.models.base import check_ids, xavier_uniform


class TestParameterRegistry:
    def test_duplicate_parameter_rejected(self):
        model = build_model("transe", 10, 2, dim=4)
        with pytest.raises(ValueError, match="duplicate"):
            model._add_parameter("entity", np.zeros((2, 2)))

    def test_parameters_mapping_is_a_copy(self):
        model = build_model("transe", 10, 2, dim=4)
        params = model.parameters
        params["bogus"] = None
        assert "bogus" not in model.parameters

    def test_parameter_list_order_stable(self):
        model = build_model("transe", 10, 2, dim=4)
        assert [id(p) for p in model.parameter_list()] == [
            id(p) for p in model.parameter_list()
        ]

    def test_num_parameters(self):
        model = build_model("transe", 10, 2, dim=4)
        assert model.num_parameters() == 10 * 4 + 2 * 4

    def test_zero_grad_clears_all(self):
        model = build_model("distmult", 10, 2, dim=4)
        loss = model.score_triples(np.array([0]), np.array([0]), np.array([1]))
        from repro.autodiff.engine import sum_

        sum_(loss).backward()
        assert model.entity.grad is not None
        model.zero_grad()
        assert model.entity.grad is None


class TestModes:
    def test_train_mode_chains(self):
        model = build_model("transe", 10, 2, dim=4)
        assert model.train_mode(True) is model
        assert model.training
        model.train_mode(False)
        assert not model.training

    def test_repr_mentions_sizes(self):
        text = repr(build_model("transe", 10, 2, dim=4))
        assert "10" in text and "dim=4" in text


class TestHelpers:
    def test_check_ids_accepts_lists(self):
        out = check_ids([0, 1, 2], 5, "entity")
        assert out.dtype == np.int64

    def test_check_ids_rejects_out_of_range(self):
        with pytest.raises(IndexError, match="entity"):
            check_ids([0, 5], 5, "entity")
        with pytest.raises(IndexError):
            check_ids([-1], 5, "entity")

    def test_check_ids_empty_ok(self):
        assert check_ids([], 5, "entity").size == 0

    def test_xavier_bounds(self, rng):
        data = xavier_uniform(rng, (100, 50))
        limit = np.sqrt(6.0 / 150)
        assert np.abs(data).max() <= limit

    def test_score_triples_numpy_matches_tensor_path(self):
        model = build_model("distmult", 10, 2, dim=4, seed=1)
        h = np.array([0, 3])
        r = np.array([1, 0])
        t = np.array([2, 7])
        tensor_scores = model.score_triples(h, r, t).data
        numpy_scores = model.score_triples_numpy(h, r, t)
        np.testing.assert_allclose(numpy_scores, tensor_scores, atol=1e-12)

    def test_anchor_triples_expansion(self):
        model = build_model("distmult", 10, 2, dim=4)
        heads, relations, tails = model._anchor_triples(3, 1, "tail", np.array([5, 6]))
        assert heads.tolist() == [3, 3]
        assert relations.tolist() == [1, 1]
        assert tails.tolist() == [5, 6]
        heads, relations, tails = model._anchor_triples(3, 1, "head", np.array([5, 6]))
        assert heads.tolist() == [5, 6]
        assert tails.tolist() == [3, 3]
