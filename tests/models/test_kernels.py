"""Analytic kernels: gradient equivalence, dispatch, dtype, trainer parity.

The contract under test is "correct by construction": for every
registered (kernel model, loss) pair, float64 analytic gradients must
match the autodiff engine's to 1e-9 (they actually agree to ~1e-16 — the
tolerance absorbs accumulation-order rounding), scores must match
``score_triples`` exactly, and training through the fused path must land
on the same parameters as the autodiff path.
"""

import numpy as np
import pytest

from repro.autodiff import gradcheck
from repro.models import Trainer, TrainingConfig, build_model
from repro.models.kernels import (
    autodiff_gradients,
    available_fused_losses,
    available_kernels,
    fused_gradients,
    fused_step,
    get_fused_loss,
    get_kernel,
    has_kernel,
)
from repro.models.kernels.base import expand_corruptions
from repro.models.losses import get_loss

GRAD_TOL = 1e-9

KERNEL_MODELS = ("transe", "distmult", "complex", "rescal", "rotate")
LOSSES = ("margin", "bce", "softplus")

#: Model variants exercised beyond defaults (TransE's L2 branch).
VARIANTS = {"transe": [{"norm": 1}, {"norm": 2}]}


def _batch(rng, num_entities, num_relations, b=24, k=5):
    heads = rng.integers(num_entities, size=b)
    relations = rng.integers(num_relations, size=b)
    tails = rng.integers(num_entities, size=b)
    corrupted = rng.integers(num_entities, size=(b, k))
    corrupt_head = rng.random(b) < 0.5
    return heads, relations, tails, corrupted, corrupt_head


class TestRegistry:
    def test_kernel_family_is_complete(self):
        assert set(available_kernels()) == set(KERNEL_MODELS)

    def test_deep_models_have_no_kernel(self):
        for name in ("conve", "tucker"):
            assert get_kernel(build_model(name, 10, 2, dim=8)) is None
            assert not has_kernel(name)

    def test_every_loss_has_a_fused_gradient(self):
        assert set(available_fused_losses()) == set(LOSSES)
        assert get_fused_loss("nope") is None

    def test_subclass_with_custom_scoring_falls_back(self):
        """Overriding score_triples voids the inherited kernel: silently
        training a modified model with the base analytic gradients would
        be wrong, so dispatch returns None (-> autodiff path)."""
        from repro.models import DistMult

        class ScaledDistMult(DistMult):
            def score_triples(self, heads, relations, tails):
                return super().score_triples(heads, relations, tails) * 2.0

        assert get_kernel(ScaledDistMult(10, 2, dim=4)) is None
        # A subclass that keeps the scoring rule keeps the kernel.

        class RenamedOnly(DistMult):
            pass

        assert get_kernel(RenamedOnly(10, 2, dim=4)) is not None
        # Name-based lookups (no instance to inspect) still resolve.
        assert get_kernel("distmult") is not None


class TestScoreParity:
    @pytest.mark.parametrize("name", KERNEL_MODELS)
    def test_kernel_scores_equal_score_triples(self, name, rng):
        model = build_model(name, 30, 4, dim=6, seed=1)
        kernel = get_kernel(model)
        heads = rng.integers(30, size=16)
        relations = rng.integers(4, size=16)
        tails = rng.integers(30, size=16)
        scores, _ = kernel.score(model, heads, relations, tails)
        expected = model.score_triples(heads, relations, tails).data
        np.testing.assert_allclose(scores, expected, atol=1e-12)

    @pytest.mark.parametrize("name", KERNEL_MODELS)
    def test_structured_scores_equal_flat_scores(self, name, rng):
        """score_corrupted agrees with scoring the expanded triples."""
        model = build_model(name, 30, 4, dim=6, seed=1)
        kernel = get_kernel(model)
        heads, relations, tails, corrupted, corrupt_head = _batch(rng, 30, 4)
        positive, negative, _ = kernel.score_corrupted(
            model, heads, relations, tails, corrupted, corrupt_head
        )
        neg_h, neg_r, neg_t = expand_corruptions(
            heads, relations, tails, corrupted, corrupt_head
        )
        expected_pos = model.score_triples(heads, relations, tails).data
        expected_neg = model.score_triples(
            neg_h.reshape(-1), neg_r.reshape(-1), neg_t.reshape(-1)
        ).data.reshape(negative.shape)
        np.testing.assert_allclose(positive, expected_pos, atol=1e-9)
        np.testing.assert_allclose(negative, expected_neg, atol=1e-9)


class TestGradientEquivalence:
    @pytest.mark.parametrize("loss", LOSSES)
    @pytest.mark.parametrize("name", KERNEL_MODELS)
    def test_fused_matches_autodiff_to_1e9(self, name, loss, rng):
        for extra in VARIANTS.get(name, [{}]):
            model = build_model(name, 40, 5, dim=8, seed=2, **extra)
            batch = _batch(rng, 40, 5)
            loss_a, grads_a = autodiff_gradients(model, loss, *batch, margin=1.0)
            loss_f, grads_f = fused_gradients(model, loss, *batch, margin=1.0)
            assert abs(loss_a - loss_f) <= GRAD_TOL
            assert set(grads_a) == set(grads_f)
            for key in grads_a:
                diff = np.abs(grads_a[key] - grads_f[key]).max()
                assert diff <= GRAD_TOL, f"{name}/{extra}/{loss}/{key}: {diff}"

    @pytest.mark.parametrize("name", KERNEL_MODELS)
    def test_one_sided_corruption_batches(self, name, rng):
        """All-head and all-tail corruption exercise both structured arms."""
        model = build_model(name, 40, 5, dim=8, seed=2)
        heads, relations, tails, corrupted, _ = _batch(rng, 40, 5)
        for corrupt_head in (np.zeros(len(heads), bool), np.ones(len(heads), bool)):
            batch = (heads, relations, tails, corrupted, corrupt_head)
            _, grads_a = autodiff_gradients(model, "margin", *batch)
            _, grads_f = fused_gradients(model, "margin", *batch)
            for key in grads_a:
                assert np.abs(grads_a[key] - grads_f[key]).max() <= GRAD_TOL

    def test_duplicate_rows_accumulate(self, rng):
        """A batch hammering one entity still matches autodiff exactly."""
        model = build_model("distmult", 40, 5, dim=8, seed=2)
        b, k = 16, 4
        heads = np.zeros(b, dtype=np.int64)  # every positive shares entity 0
        relations = np.zeros(b, dtype=np.int64)
        tails = rng.integers(40, size=b)
        corrupted = np.full((b, k), 7, dtype=np.int64)  # every negative too
        corrupt_head = np.zeros(b, dtype=bool)
        batch = (heads, relations, tails, corrupted, corrupt_head)
        _, grads_a = autodiff_gradients(model, "softplus", *batch)
        _, grads_f = fused_gradients(model, "softplus", *batch)
        for key in grads_a:
            assert np.abs(grads_a[key] - grads_f[key]).max() <= GRAD_TOL

    def test_autodiff_reference_passes_finite_differences(self, rng):
        """Anchor the chain: autodiff itself is checked against gradcheck."""
        model = build_model("distmult", 12, 3, dim=4, seed=0)
        heads, relations, tails, corrupted, corrupt_head = _batch(rng, 12, 3, b=6, k=3)
        neg_h, neg_r, neg_t = expand_corruptions(
            heads, relations, tails, corrupted, corrupt_head
        )
        loss_fn = get_loss("softplus")

        def compute():
            from repro.autodiff.engine import reshape

            positive = model.score_triples(heads, relations, tails)
            negative = reshape(
                model.score_triples(
                    neg_h.reshape(-1), neg_r.reshape(-1), neg_t.reshape(-1)
                ),
                corrupted.shape,
            )
            return loss_fn(positive, negative, margin=1.0)

        assert gradcheck(compute, model.parameter_list(), eps=1e-6) < 1e-7


class TestTrainerDispatch:
    def _run_both_paths(self, graph, optimizer):
        def run(use_fused):
            model = build_model(
                "distmult", graph.num_entities, graph.num_relations, dim=8, seed=0
            )
            config = TrainingConfig(
                epochs=2,
                batch_size=128,
                num_negatives=4,
                lr=0.05,
                loss="softplus",
                optimizer=optimizer,
                seed=3,
                use_fused=use_fused,
            )
            history = Trainer(config).fit(model, graph)
            return model, history

        return run(True), run(False)

    @pytest.mark.parametrize("optimizer", ["sgd", "adagrad"])
    def test_fused_and_autodiff_training_agree(self, codex_s, optimizer):
        """Same seeds, both paths: near-identical parameters after 2 epochs.

        SGD and Adagrad carry no decaying state, so their sparse updates
        are exactly the dense updates whenever the gradients agree.
        """
        (fused_model, fused_history), (auto_model, auto_history) = self._run_both_paths(
            codex_s.graph, optimizer
        )
        np.testing.assert_allclose(fused_history.losses, auto_history.losses, atol=1e-9)
        np.testing.assert_allclose(
            fused_model.entity.data, auto_model.entity.data, atol=1e-7
        )

    def test_adam_lazy_updates_track_dense_adam(self, codex_s):
        """Sparse Adam is *lazy* (decay only on touched rows), so it is
        close to — but deliberately not bit-identical with — dense Adam."""
        (fused_model, fused_history), (auto_model, auto_history) = self._run_both_paths(
            codex_s.graph, "adam"
        )
        np.testing.assert_allclose(fused_history.losses, auto_history.losses, atol=5e-3)
        correlation = np.corrcoef(
            fused_model.entity.data.ravel(), auto_model.entity.data.ravel()
        )[0, 1]
        assert correlation > 0.95

    def test_no_fused_flag_forces_autodiff(self, codex_s, monkeypatch):
        graph = codex_s.graph
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
        calls = []
        import repro.models.training as training_module

        original = training_module.fused_step

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(training_module, "fused_step", spy)
        Trainer(TrainingConfig(epochs=1, use_fused=False)).fit(model, graph)
        assert not calls
        Trainer(TrainingConfig(epochs=1, use_fused=True)).fit(model, graph)
        assert calls

    def test_models_without_kernel_fall_back(self, codex_s, monkeypatch):
        """ConvE trains through autodiff even with use_fused=True."""
        graph = codex_s.graph
        model = build_model("conve", graph.num_entities, graph.num_relations, dim=16)
        import repro.models.training as training_module

        monkeypatch.setattr(
            training_module,
            "fused_step",
            lambda *a, **k: (_ for _ in ()).throw(AssertionError("fused on ConvE")),
        )
        history = Trainer(TrainingConfig(epochs=1, loss="bce", use_fused=True)).fit(
            model, graph
        )
        assert len(history.losses) == 1

    def test_fused_loss_decreases(self, codex_s):
        graph = codex_s.graph
        model = build_model("complex", graph.num_entities, graph.num_relations, dim=16)
        history = Trainer(
            TrainingConfig(epochs=4, lr=0.1, loss="softplus", use_fused=True)
        ).fit(model, graph)
        assert history.losses[-1] < history.losses[0]


class TestDtype:
    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            build_model("distmult", 10, 2, dim=4, dtype="float16")

    def test_float32_initialisation_is_cast_float64(self):
        """float32 params start at the rounding of the float64 init."""
        m64 = build_model("complex", 20, 3, dim=8, seed=5)
        m32 = build_model("complex", 20, 3, dim=8, seed=5, dtype="float32")
        np.testing.assert_array_equal(
            m32.entity.data, m64.entity.data.astype(np.float32)
        )

    def test_float32_fused_training_stays_float32(self, codex_s):
        graph = codex_s.graph
        model = build_model(
            "distmult", graph.num_entities, graph.num_relations, dim=8, dtype="float32"
        )
        Trainer(TrainingConfig(epochs=1, loss="softplus")).fit(model, graph)
        assert model.entity.data.dtype == np.float32
        assert model.score_all(0, 0, "tail").dtype == np.float32

    def test_float32_autodiff_fallback_trains(self, codex_s):
        """Models without a kernel accept float32 too (upcast internally)."""
        graph = codex_s.graph
        model = build_model(
            "tucker", graph.num_entities, graph.num_relations, dim=8, dtype="float32"
        )
        history = Trainer(TrainingConfig(epochs=1, loss="bce")).fit(model, graph)
        assert len(history.losses) == 1
        assert model.entity.data.dtype == np.float32


def test_fused_step_rejects_out_of_range_ids():
    model = build_model("distmult", 10, 2, dim=4)
    kernel = get_kernel(model)
    loss_grad = get_fused_loss("margin")
    bad = np.asarray([99])
    ok = np.asarray([0])
    with pytest.raises(IndexError):
        fused_step(
            model, kernel, loss_grad, bad, ok, ok,
            np.asarray([[1]]), np.asarray([False]),
        )
