"""Model checkpointing: bit-exact round trips for every registry model."""

import inspect

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, Trainer, TrainingConfig, build_model
from repro.models.io import load_model, save_model

#: The constructor parameters every KGEModel shares (not "extra").
_COMMON_INIT_PARAMS = {"self", "num_entities", "num_relations", "dim", "seed", "dtype"}

#: Non-default constructor kwargs exercised by the round-trip test, so
#: checkpoints are proven to carry them (defaults would mask a drop).
_EXTRA_KWARGS: dict[str, dict] = {
    "transe": {"norm": 2},
    "conve": {"embedding_height": 2, "num_filters": 4, "kernel_size": 2},
}


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_round_trip_scores_identically(name, tmp_path):
    model = build_model(name, 20, 4, dim=8, seed=3, **_EXTRA_KWARGS.get(name, {}))
    path = tmp_path / f"{name}.npz"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.name == name
    np.testing.assert_array_equal(
        loaded.score_all(2, 1, "tail"), model.score_all(2, 1, "tail")
    )
    np.testing.assert_array_equal(
        loaded.score_all(2, 1, "head"), model.score_all(2, 1, "head")
    )
    triples = (np.asarray([0, 3, 7]), np.asarray([1, 0, 2]), np.asarray([5, 2, 19]))
    np.testing.assert_array_equal(
        loaded.score_triples_numpy(*triples), model.score_triples_numpy(*triples)
    )


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_extra_init_fields_cover_the_constructor(name):
    """Every model-specific constructor kwarg must be checkpointed.

    A new constructor parameter that is not declared in
    ``extra_init_fields`` would be silently reset to its default on
    ``load_model`` — this is the guard the class-attribute refactor
    exists for.
    """
    cls = MODEL_REGISTRY[name]
    params = set(inspect.signature(cls.__init__).parameters)
    extras = params - _COMMON_INIT_PARAMS
    assert extras == set(cls.extra_init_fields), (
        f"{cls.__name__}: constructor kwargs {sorted(extras)} must match "
        f"extra_init_fields {sorted(cls.extra_init_fields)}"
    )


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_extra_init_fields_are_saved_attributes(name, tmp_path):
    """Declared extras exist as attributes and survive the round trip."""
    model = build_model(name, 12, 3, dim=8, seed=1, **_EXTRA_KWARGS.get(name, {}))
    path = tmp_path / f"{name}.npz"
    save_model(model, path)
    loaded = load_model(path)
    for field in model.extra_init_fields:
        assert getattr(loaded, field) == getattr(model, field)


def test_trained_parameters_survive(tmp_path, codex_s):
    graph = codex_s.graph
    model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=0)
    Trainer(TrainingConfig(epochs=1, loss="softplus")).fit(model, graph)
    path = tmp_path / "trained.npz"
    save_model(model, path)
    loaded = load_model(path)
    np.testing.assert_array_equal(loaded.entity.data, model.entity.data)


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_float32_dtype_round_trips(name, tmp_path):
    """A float32 checkpoint reloads as a float32 model, scores identical."""
    model = build_model(
        name, 20, 4, dim=8, seed=3, dtype="float32", **_EXTRA_KWARGS.get(name, {})
    )
    assert model.entity.data.dtype == np.float32
    path = tmp_path / f"{name}-f32.npz"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.dtype == "float32"
    for key, tensor in loaded.parameters.items():
        assert tensor.data.dtype == np.float32, key
    np.testing.assert_array_equal(
        loaded.score_all(2, 1, "tail"), model.score_all(2, 1, "tail")
    )


def test_pre_dtype_checkpoints_load_as_float64(tmp_path):
    """Checkpoints written before the dtype knob default to float64."""
    import json

    model = build_model("distmult", 10, 2, dim=4)
    path = tmp_path / "old.npz"
    save_model(model, path)
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    meta = json.loads(bytes(arrays["__meta__"].tobytes()).decode("utf-8"))
    del meta["dtype"]  # simulate an old checkpoint
    arrays["__meta__"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **arrays)
    loaded = load_model(path)
    assert loaded.dtype == "float64"
    np.testing.assert_array_equal(loaded.entity.data, model.entity.data)


def test_transe_norm_preserved(tmp_path):
    model = build_model("transe", 10, 2, dim=4, norm=2)
    save_model(model, tmp_path / "m.npz")
    assert load_model(tmp_path / "m.npz").norm == 2


def test_conve_geometry_preserved(tmp_path):
    model = build_model("conve", 10, 2, dim=8, embedding_height=2)
    save_model(model, tmp_path / "m.npz")
    loaded = load_model(tmp_path / "m.npz")
    assert loaded.embedding_height == 2
    assert loaded.num_filters == model.num_filters


def test_non_checkpoint_rejected(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, stuff=np.zeros(3))
    with pytest.raises(ValueError, match="not a repro model checkpoint"):
        load_model(path)


def test_shape_mismatch_detected(tmp_path):
    model = build_model("distmult", 10, 2, dim=4)
    path = tmp_path / "m.npz"
    save_model(model, path)
    # Corrupt the checkpoint: swap in a wrong-shaped entity table.
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    arrays["entity"] = np.zeros((3, 3))
    np.savez(path, **arrays)
    with pytest.raises(ValueError, match="shape"):
        load_model(path)
