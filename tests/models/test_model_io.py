"""Model checkpointing: bit-exact round trips for every registry model."""

import numpy as np
import pytest

from repro.models import MODEL_REGISTRY, Trainer, TrainingConfig, build_model
from repro.models.io import load_model, save_model


@pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
def test_round_trip_scores_identically(name, tmp_path):
    model = build_model(name, 20, 4, dim=8, seed=3)
    path = tmp_path / f"{name}.npz"
    save_model(model, path)
    loaded = load_model(path)
    assert loaded.name == name
    np.testing.assert_array_equal(
        loaded.score_all(2, 1, "tail"), model.score_all(2, 1, "tail")
    )
    np.testing.assert_array_equal(
        loaded.score_all(2, 1, "head"), model.score_all(2, 1, "head")
    )


def test_trained_parameters_survive(tmp_path, codex_s):
    graph = codex_s.graph
    model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=0)
    Trainer(TrainingConfig(epochs=1, loss="softplus")).fit(model, graph)
    path = tmp_path / "trained.npz"
    save_model(model, path)
    loaded = load_model(path)
    np.testing.assert_array_equal(loaded.entity.data, model.entity.data)


def test_transe_norm_preserved(tmp_path):
    model = build_model("transe", 10, 2, dim=4, norm=2)
    save_model(model, tmp_path / "m.npz")
    assert load_model(tmp_path / "m.npz").norm == 2


def test_conve_geometry_preserved(tmp_path):
    model = build_model("conve", 10, 2, dim=8, embedding_height=2)
    save_model(model, tmp_path / "m.npz")
    loaded = load_model(tmp_path / "m.npz")
    assert loaded.embedding_height == 2
    assert loaded.num_filters == model.num_filters


def test_non_checkpoint_rejected(tmp_path):
    path = tmp_path / "junk.npz"
    np.savez(path, stuff=np.zeros(3))
    with pytest.raises(ValueError, match="not a repro model checkpoint"):
        load_model(path)


def test_shape_mismatch_detected(tmp_path):
    model = build_model("distmult", 10, 2, dim=4)
    path = tmp_path / "m.npz"
    save_model(model, path)
    # Corrupt the checkpoint: swap in a wrong-shaped entity table.
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    arrays["entity"] = np.zeros((3, 3))
    np.savez(path, **arrays)
    with pytest.raises(ValueError, match="shape"):
        load_model(path)
