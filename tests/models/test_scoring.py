"""Cross-model scoring contracts: every model, every surface, one suite.

These are the invariants the evaluation framework relies on being true of
*any* model plugged into it:

* ``score_triples`` (training surface) agrees with ``score_candidates``
  (inference surface) on the same triple;
* ``score_all`` equals ``score_candidates`` on slices;
* ``score_candidates_batch`` equals row-wise ``score_candidates``;
* scoring is deterministic;
* gradients flow into the embedding tables.
"""

import numpy as np
import pytest

from repro.autodiff.engine import sum_
from repro.kg.graph import HEAD, TAIL
from repro.models import MODEL_REGISTRY, available_models, build_model

NUM_ENTITIES = 40
NUM_RELATIONS = 6


@pytest.fixture(params=sorted(MODEL_REGISTRY), scope="module")
def model(request):
    return build_model(request.param, NUM_ENTITIES, NUM_RELATIONS, dim=8, seed=3)


class TestSurfacesAgree:
    def test_triples_match_candidates_tail_side(self, model):
        heads = np.array([0, 5, 11])
        relations = np.array([0, 2, 1])
        tails = np.array([7, 3, 30])
        train_scores = model.score_triples(heads, relations, tails).data
        for h, r, t, expected in zip(heads, relations, tails, train_scores):
            inferred = model.score_candidates(int(h), int(r), TAIL, np.array([t]))[0]
            assert inferred == pytest.approx(float(expected), abs=1e-9)

    @pytest.mark.parametrize("side", [HEAD, TAIL])
    def test_score_all_matches_candidates(self, model, side):
        full = model.score_all(4, 1, side)
        subset = np.array([0, 4, 17, 39])
        np.testing.assert_allclose(
            model.score_candidates(4, 1, side, subset), full[subset], atol=1e-12
        )

    @pytest.mark.parametrize("side", [HEAD, TAIL])
    def test_batch_matches_rowwise(self, model, side):
        anchors = np.array([1, 8, 23])
        candidates = np.array([2, 9, 15, 31])
        batch = model.score_candidates_batch(anchors, 2, side, candidates)
        assert batch.shape == (3, 4)
        for i, anchor in enumerate(anchors):
            np.testing.assert_allclose(
                batch[i],
                model.score_candidates(int(anchor), 2, side, candidates),
                atol=1e-12,
            )

    @pytest.mark.parametrize("side", [HEAD, TAIL])
    def test_batch_default_is_all_entities(self, model, side):
        anchors = np.array([3, 12])
        batch = model.score_candidates_batch(anchors, 0, side)
        assert batch.shape == (2, NUM_ENTITIES)
        np.testing.assert_allclose(batch[0], model.score_all(3, 0, side), atol=1e-12)


class TestDeterminism:
    def test_same_seed_same_scores(self, model):
        twin = build_model(model.name, NUM_ENTITIES, NUM_RELATIONS, dim=8, seed=3)
        np.testing.assert_array_equal(
            model.score_all(2, 1, TAIL), twin.score_all(2, 1, TAIL)
        )

    def test_repeated_calls_agree(self, model):
        a = model.score_all(6, 0, HEAD)
        b = model.score_all(6, 0, HEAD)
        np.testing.assert_array_equal(a, b)


class TestValidation:
    def test_out_of_range_ids_rejected(self, model):
        with pytest.raises(IndexError):
            model.score_triples(
                np.array([NUM_ENTITIES]), np.array([0]), np.array([0])
            )

    def test_out_of_range_candidates_rejected(self, model):
        with pytest.raises(IndexError):
            model.score_candidates(0, 0, TAIL, np.array([NUM_ENTITIES + 5]))

    def test_bad_dim_rejected(self):
        with pytest.raises(ValueError):
            build_model("transe", NUM_ENTITIES, NUM_RELATIONS, dim=0)

    def test_empty_vocab_rejected(self):
        with pytest.raises(ValueError):
            build_model("transe", 0, 3)


class TestGradients:
    def test_loss_reaches_entity_table(self, model):
        if model.name == "random":
            pytest.skip("random model has no trainable scoring path")
        model.zero_grad()
        loss = sum_(model.score_triples(np.array([0, 1]), np.array([0, 1]), np.array([2, 3])))
        loss.backward()
        entity = model.parameters["entity"]
        assert entity.grad is not None
        assert np.abs(entity.grad).sum() > 0


class TestRegistry:
    def test_available_names(self):
        assert available_models() == sorted(
            ["transe", "distmult", "complex", "rescal", "rotate", "tucker", "conve"]
        )

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="transe"):
            build_model("bert", 10, 2)

    def test_case_insensitive(self):
        assert build_model("TransE", 10, 2).name == "transe"

    def test_parameter_counts_positive(self):
        for name in available_models():
            model = build_model(name, 12, 3, dim=8)
            assert model.num_parameters() > 0
