"""Loss functions: values, gradients, registry."""

import numpy as np
import pytest

from repro.autodiff.engine import Tensor, parameter
from repro.models.losses import (
    available_losses,
    bce_loss,
    get_loss,
    l2_penalty,
    loss_value,
    margin_ranking_loss,
    softplus_loss,
)


def _pair(pos, neg):
    return Tensor(np.asarray(pos, dtype=float)), Tensor(np.asarray(neg, dtype=float))


class TestMarginLoss:
    def test_zero_when_margin_satisfied(self):
        positive, negative = _pair([5.0], [[1.0, 2.0]])
        loss = margin_ranking_loss(positive, negative, margin=1.0)
        assert float(loss.data) == pytest.approx(0.0)

    def test_linear_in_violation(self):
        positive, negative = _pair([0.0], [[0.0]])
        loss = margin_ranking_loss(positive, negative, margin=1.0)
        assert float(loss.data) == pytest.approx(1.0)

    def test_mean_over_all_pairs(self):
        positive, negative = _pair([0.0, 10.0], [[0.0, 0.0], [0.0, 0.0]])
        loss = margin_ranking_loss(positive, negative, margin=1.0)
        # First row contributes 1.0 twice, second row 0: mean = 0.5.
        assert float(loss.data) == pytest.approx(0.5)

    def test_gradient_pushes_scores_apart(self):
        pos = parameter(np.array([0.0]))
        neg = parameter(np.array([[0.0]]))
        loss = margin_ranking_loss(pos, neg, margin=1.0)
        loss.backward()
        assert pos.grad[0] < 0  # increase the positive score
        assert neg.grad[0, 0] > 0  # decrease the negative score


class TestBCELoss:
    def test_confident_correct_is_near_zero(self):
        positive, negative = _pair([50.0], [[-50.0]])
        assert float(bce_loss(positive, negative).data) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric_blocks(self):
        positive, negative = _pair([0.0], [[0.0]])
        # softplus(0) = log 2 from each block.
        assert float(bce_loss(positive, negative).data) == pytest.approx(2 * np.log(2.0))


class TestSoftplusLoss:
    def test_matches_logistic_formula(self):
        positive, negative = _pair([1.0], [[2.0, -1.0]])
        expected = np.log1p(np.exp(-1.0)) + np.mean(
            [np.log1p(np.exp(2.0)), np.log1p(np.exp(-1.0))]
        )
        assert float(softplus_loss(positive, negative).data) == pytest.approx(expected)


class TestShapesAndRegistry:
    def test_shape_mismatch_rejected(self):
        positive = Tensor(np.zeros(3))
        negative = Tensor(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            margin_ranking_loss(positive, negative)

    def test_positive_must_be_1d(self):
        with pytest.raises(ValueError):
            margin_ranking_loss(Tensor(np.zeros((3, 1))), Tensor(np.zeros((3, 4))))

    def test_registry_contents(self):
        assert available_losses() == ["bce", "margin", "softplus"]

    def test_get_loss_unknown_raises(self):
        with pytest.raises(KeyError, match="margin"):
            get_loss("hinge^2")


class TestHelpers:
    def test_l2_penalty_value(self):
        penalty = l2_penalty([parameter(np.array([3.0, 4.0]))], 0.5)
        assert float(penalty.data) == pytest.approx(12.5)

    def test_l2_penalty_disabled(self):
        assert l2_penalty([parameter(np.zeros(2))], 0.0) is None

    def test_loss_value_guards_nan(self):
        with pytest.raises(FloatingPointError):
            loss_value(Tensor(np.array(np.nan)))
