"""Mmap shard IO: bitwise round-trips, probe-and-grow, digests, gauge."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.models import available_models, build_model
from repro.models.io import (
    MMAP_BYTES_GAUGE,
    init_sharded,
    open_mmap,
    read_shard_manifest,
    save_sharded,
)


@pytest.fixture
def model():
    return build_model("complex", 20, 4, dim=8, seed=0)


class TestSaveOpenRoundTrip:
    @pytest.mark.parametrize("name", sorted(available_models()))
    def test_every_model_round_trips_bitwise(self, name, tmp_path):
        original = build_model(name, 12, 3, dim=8, seed=0)
        save_sharded(original, tmp_path / name)
        reopened = open_mmap(tmp_path / name)
        assert reopened.name == original.name
        assert reopened.num_entities == original.num_entities
        assert set(reopened.parameters) == set(original.parameters)
        for key, tensor in original.parameters.items():
            np.testing.assert_array_equal(
                reopened.parameters[key].data, tensor.data
            )

    def test_multi_shard_files_rejoin(self, model, tmp_path):
        # Force several shards per parameter, then verify the join.
        save_sharded(model, tmp_path / "s", max_shard_bytes=400)
        manifest = read_shard_manifest(tmp_path / "s")
        assert any(
            len(meta["shards"]) > 1 for meta in manifest["params"].values()
        )
        reopened = open_mmap(tmp_path / "s")
        for key, tensor in model.parameters.items():
            np.testing.assert_array_equal(
                reopened.parameters[key].data, tensor.data
            )

    def test_arrays_are_read_only_maps(self, model, tmp_path):
        save_sharded(model, tmp_path / "s")
        reopened = open_mmap(tmp_path / "s")
        array = next(iter(reopened.parameters.values())).data
        with pytest.raises((ValueError, TypeError)):
            array[0] = 0.0

    def test_shard_source_attached(self, model, tmp_path):
        source = save_sharded(model, tmp_path / "s")
        reopened = open_mmap(tmp_path / "s")
        assert reopened.shard_source.digest == source.digest
        assert reopened.shard_source.nbytes == source.nbytes

    def test_scores_identical(self, model, tmp_path):
        save_sharded(model, tmp_path / "s")
        reopened = open_mmap(tmp_path / "s")
        for anchor, relation in ((0, 0), (3, 1), (7, 2)):
            np.testing.assert_array_equal(
                reopened.score_all(anchor, relation, "tail"),
                model.score_all(anchor, relation, "tail"),
            )

    def test_row_count_mismatch_detected(self, model, tmp_path):
        # Digest checks live at the engine-attach layer (streaming the
        # bytes here would defeat out-of-core); open_mmap still validates
        # structure: entity tables must span the manifest's vocabulary.
        save_sharded(model, tmp_path / "s")
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["model"]["num_entities"] = model.num_entities + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="entity-indexed"):
            open_mmap(tmp_path / "s")

    def test_missing_parameter_detected(self, model, tmp_path):
        save_sharded(model, tmp_path / "s")
        manifest_path = tmp_path / "s" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        first = next(iter(manifest["params"]))
        del manifest["params"][first]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="do not match"):
            open_mmap(tmp_path / "s")

    def test_mmap_gauge_advances(self, model, tmp_path):
        from repro.obs import get_registry

        gauge = get_registry().gauge(
            MMAP_BYTES_GAUGE, "Bytes of model parameters served from mmap shards"
        )
        before = gauge.value()
        source = save_sharded(model, tmp_path / "s")
        open_mmap(tmp_path / "s")
        assert gauge.value() == before + source.nbytes


class TestInitSharded:
    """Block-streamed init: entity tables written without materialising."""

    @pytest.mark.parametrize("name", sorted(available_models()))
    def test_every_model_initialises_and_opens(self, name, tmp_path):
        source = init_sharded(name, 40, 4, directory=tmp_path / name, dim=8, seed=0)
        model = open_mmap(tmp_path / name)
        assert model.num_entities == 40
        assert model.shard_source.digest == source.digest
        # Must be scoreable end to end.
        scores = model.score_all(39, 3, "tail")
        assert scores.shape == (40,)
        assert np.isfinite(scores).all()

    def test_blocks_do_not_change_content(self, tmp_path):
        # Same seed, different block sizes: identical files.
        a = init_sharded(
            "distmult", 100, 3, directory=tmp_path / "a", dim=4, block_rows=7
        )
        b = init_sharded(
            "distmult", 100, 3, directory=tmp_path / "b", dim=4, block_rows=100
        )
        model_a, model_b = open_mmap(tmp_path / "a"), open_mmap(tmp_path / "b")
        for key in model_a.parameters:
            np.testing.assert_array_equal(
                model_a.parameters[key].data, model_b.parameters[key].data
            )
        assert a.digest == b.digest

    def test_relation_table_not_misflagged(self, tmp_path):
        # num_relations == probe entity count: the two-probe detection
        # must still classify the relation table as non-entity-indexed.
        init_sharded("distmult", 50, 8, directory=tmp_path / "s", dim=4)
        model = open_mmap(tmp_path / "s")
        assert model.parameters["entity"].data.shape[0] == 50
        assert model.parameters["relation"].data.shape[0] == 8


class TestAttachStrictness:
    def test_strict_rejects_grown_first_axis(self, model):
        arrays = {
            key: np.zeros((100,) + tensor.data.shape[1:], dtype=tensor.data.dtype)
            for key, tensor in model.parameters.items()
        }
        with pytest.raises(ValueError):
            model.attach_parameter_arrays(arrays)

    def test_lenient_rejects_trailing_dim_mismatch(self, model):
        arrays = {
            key: np.zeros(
                tensor.data.shape[:-1] + (tensor.data.shape[-1] + 1,),
                dtype=tensor.data.dtype,
            )
            for key, tensor in model.parameters.items()
        }
        with pytest.raises(ValueError):
            model.attach_parameter_arrays(arrays, strict=False)

    def test_lenient_rejects_dtype_mismatch(self, model):
        arrays = {
            key: tensor.data.astype(np.float32)
            for key, tensor in model.parameters.items()
        }
        with pytest.raises(ValueError):
            model.attach_parameter_arrays(arrays, strict=False)
