"""``repro top`` helpers: scraping, quantiles, rates, frame rendering."""

import io
import math

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.top import (
    histogram_quantile,
    label_values,
    render_top,
    run_top,
    scrape,
    sum_family,
    top_rows,
)


def serve_registry(requests: int = 10, uptime: float = 5.0) -> MetricsRegistry:
    """A registry shaped like a live serve instance with a 2-worker pool."""
    registry = MetricsRegistry()
    registry.counter("repro_serve_requests_total", labels=("endpoint",)).inc(
        requests, endpoint="rank"
    )
    registry.gauge("repro_serve_uptime_seconds").set(uptime)
    histogram = registry.histogram(
        "repro_serve_request_seconds", buckets=(0.005, 0.05, 0.5)
    )
    for _ in range(9):
        histogram.observe(0.001)
    histogram.observe(0.4)
    registry.gauge("repro_serve_mean_batch_size").set(3.5)
    registry.gauge("repro_serve_queue_depth").set(2)
    registry.gauge("repro_serve_cache_hit_rate").set(0.25)
    registry.gauge("repro_serve_cache_entries").set(8)
    registry.gauge("repro_engine_pool_workers").set(2)
    registry.gauge("repro_engine_pool_uptime_seconds").set(uptime)
    busy = registry.counter(
        "repro_engine_worker_busy_seconds_total", labels=("pool", "worker")
    )
    busy.inc(1.0, pool="engine", worker="0")
    busy.inc(2.0, pool="engine", worker="1")
    chunks = registry.counter(
        "repro_engine_worker_chunks_total", labels=("pool", "worker")
    )
    chunks.inc(4, pool="engine", worker="0")
    chunks.inc(6, pool="engine", worker="1")
    registry.gauge("repro_engine_shm_bytes").set(2048)
    registry.gauge("repro_engine_shm_segments").set(1)
    return registry


class TestScrapeHelpers:
    def test_scrape_registry_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("repro_serve_requests_total").inc(3)
        samples = scrape(registry)
        assert samples[("repro_serve_requests_total", ())] == 3.0

    def test_sum_family_merges_label_series(self):
        samples = scrape(serve_registry())
        total = sum_family(samples, "repro_engine_worker_chunks_total")
        assert total == 10.0

    def test_sum_family_filters_on_labels(self):
        samples = scrape(serve_registry())
        assert (
            sum_family(samples, "repro_engine_worker_chunks_total", worker="1")
            == 6.0
        )

    def test_sum_family_absent_family_is_zero(self):
        assert sum_family({}, "nope_total") == 0.0

    def test_label_values_sorted_distinct(self):
        samples = scrape(serve_registry())
        assert label_values(
            samples, "repro_engine_worker_busy_seconds_total", "worker"
        ) == ["0", "1"]


class TestHistogramQuantile:
    def test_absent_histogram_is_nan(self):
        assert math.isnan(histogram_quantile({}, "lat_seconds", 0.5))

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ValueError):
            histogram_quantile({}, "lat_seconds", 1.5)

    def test_interpolates_within_a_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        for _ in range(4):
            histogram.observe(1.5)
        # All mass in (1, 2]; the median interpolates inside that bucket.
        value = histogram_quantile(scrape(registry), "lat_seconds", 0.5)
        assert 1.0 < value <= 2.0

    def test_merges_bucket_series_across_label_sets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat_seconds", buckets=(1.0, 2.0), labels=("endpoint",)
        )
        for _ in range(9):
            histogram.observe(0.5, endpoint="rank")
        histogram.observe(1.5, endpoint="score")
        # 90% of the merged distribution sits at or below the first bound.
        assert histogram_quantile(scrape(registry), "lat_seconds", 0.5) <= 1.0

    def test_overflow_clamps_to_largest_finite_bound(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(1.0, 2.0)).observe(50.0)
        assert histogram_quantile(scrape(registry), "lat_seconds", 0.99) == 2.0


class TestTopRows:
    def test_once_mode_rows_cover_every_section(self):
        rows = dict(top_rows(scrape(serve_registry())))
        assert rows["uptime"] == "5.0 s"
        assert rows["requests"].startswith("10 (2.00/s)")  # 10 req / 5 s uptime
        assert "/" in rows["latency p50 / p99"]
        assert rows["pool workers"] == "2"
        assert "  worker 0" in rows and "  worker 1" in rows
        assert "4 chunks" in rows["  worker 0"]
        assert rows["shm"] == "2.0 KiB in 1 segments"

    def test_delta_mode_rates_use_the_scrape_interval(self):
        previous = scrape(serve_registry(requests=10))
        current = scrape(serve_registry(requests=30))
        rows = dict(top_rows(current, previous=previous, interval=2.0))
        assert "(10.00/s)" in rows["requests"]  # 20 new requests / 2 s

    def test_worker_utilisation_clamped_to_100_percent(self):
        previous = scrape(serve_registry())
        registry = serve_registry()
        registry.counter(
            "repro_engine_worker_busy_seconds_total", labels=("pool", "worker")
        ).inc(100.0, pool="engine", worker="0")
        rows = dict(top_rows(scrape(registry), previous=previous, interval=1.0))
        assert rows["  worker 0"].startswith("100.0% busy")

    def test_empty_scrape_still_renders(self):
        rows = dict(top_rows({}))
        assert rows["requests"] == "0 (0.00/s)"
        assert "—" in rows["latency p50 / p99"]  # NaN quantiles render as em-dash


class TestRenderAndRun:
    def test_render_top_aligns_rows_under_header(self):
        frame = render_top(scrape(serve_registry()), source="test")
        lines = frame.splitlines()
        assert lines[0].startswith("repro top — test — ")
        assert set(lines[1]) == {"─"}
        assert any(line.startswith("requests") for line in lines)

    def test_run_top_once_writes_one_frame(self):
        stream = io.StringIO()
        code = run_top(serve_registry(), once=True, stream=stream)
        assert code == 0
        assert stream.getvalue().count("repro top — ") == 1
        assert "\x1b[2J" not in stream.getvalue()  # no screen clearing

    def test_run_top_iterations_clears_between_frames(self):
        stream = io.StringIO()
        code = run_top(
            serve_registry(), interval=0.01, iterations=2, stream=stream
        )
        assert code == 0
        assert stream.getvalue().count("repro top — ") == 2
        assert stream.getvalue().count("\x1b[2J") == 1

    def test_unreachable_url_exits_nonzero(self, capsys):
        code = run_top(
            "http://127.0.0.1:1/metrics", once=True, stream=io.StringIO()
        )
        assert code == 1
        assert "cannot scrape" in capsys.readouterr().err
