"""Trace context: propagation, nesting, thread isolation."""

import threading

from repro.obs.context import (
    TraceContext,
    current_context,
    current_trace_id,
    new_context,
    new_trace_id,
    use_context,
)


class TestIds:
    def test_new_trace_id_is_16_hex(self):
        trace_id = new_trace_id()
        assert len(trace_id) == 16
        int(trace_id, 16)  # hex or raise

    def test_new_trace_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()

    def test_new_context_carries_request_id(self):
        context = new_context(request_id="req-9")
        assert context.request_id == "req-9"
        assert context.trace_id


class TestCurrent:
    def test_no_context_by_default(self):
        assert current_context() is None
        assert current_trace_id() is None

    def test_use_context_installs_and_restores(self):
        context = TraceContext(trace_id="t1", request_id="r1")
        with use_context(context):
            assert current_context() is context
            assert current_trace_id() == "t1"
        assert current_context() is None

    def test_use_context_nests(self):
        outer = TraceContext(trace_id="outer")
        inner = TraceContext(trace_id="inner")
        with use_context(outer):
            with use_context(inner):
                assert current_trace_id() == "inner"
            assert current_trace_id() == "outer"

    def test_none_is_a_noop(self):
        outer = TraceContext(trace_id="outer")
        with use_context(outer):
            with use_context(None):
                assert current_trace_id() == "outer"

    def test_restored_even_when_body_raises(self):
        try:
            with use_context(TraceContext(trace_id="boom")):
                raise RuntimeError("mid-span failure")
        except RuntimeError:
            pass
        assert current_context() is None


class TestThreads:
    def test_context_does_not_leak_into_fresh_threads(self):
        seen = []
        with use_context(TraceContext(trace_id="main-only")):
            thread = threading.Thread(target=lambda: seen.append(current_context()))
            thread.start()
            thread.join()
        assert seen == [None]

    def test_explicit_carry_across_threads(self):
        # The scheduler pattern: capture at submit, adopt at dispatch.
        captured = []
        with use_context(TraceContext(trace_id="carried")):
            context = current_context()

        def dispatch():
            with use_context(context):
                captured.append(current_trace_id())

        thread = threading.Thread(target=dispatch)
        thread.start()
        thread.join()
        assert captured == ["carried"]
