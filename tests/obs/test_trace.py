"""Span tracer: aggregation, nesting, thread safety, disabled-path cost."""

import threading

import pytest

from repro.obs import get_tracer, set_tracing
from repro.obs.context import TraceContext, use_context
from repro.obs.trace import (
    MAX_TIMELINE_EVENTS,
    Tracer,
    _NULL_SPAN,
    chrome_trace,
    render_trace,
)


class TestDisabled:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything") is _NULL_SPAN
        assert tracer.span("other") is _NULL_SPAN  # no per-call allocation

    def test_disabled_add_and_record_are_noops(self):
        tracer = Tracer()
        tracer.add("triples", 100)
        tracer.record("chunk", 1.0)
        assert tracer.summary() is None


class TestAggregation:
    def test_repeated_spans_aggregate_by_name(self):
        tracer = Tracer(enabled=True)
        for _ in range(5):
            with tracer.span("epoch"):
                pass
        summary = tracer.summary()
        assert len(summary["spans"]) == 1
        node = summary["spans"][0]
        assert node["name"] == "epoch"
        assert node["count"] == 5
        assert node["seconds"] >= 0.0

    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("fit"):
            for _ in range(3):
                with tracer.span("epoch"):
                    with tracer.span("batch"):
                        pass
        fit = tracer.summary()["spans"][0]
        assert fit["name"] == "fit" and fit["count"] == 1
        epoch = fit["children"][0]
        assert epoch["name"] == "epoch" and epoch["count"] == 3
        assert epoch["children"][0]["name"] == "batch"

    def test_counters_attach_to_the_innermost_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("fit"):
            with tracer.span("epoch"):
                tracer.add("triples", 100)
            with tracer.span("epoch"):
                tracer.add("triples", 50)
        epoch = tracer.summary()["spans"][0]["children"][0]
        assert epoch["counters"] == {"triples": 150.0}

    def test_record_folds_external_timings_in(self):
        tracer = Tracer(enabled=True)
        with tracer.span("run"):
            tracer.record("chunk", 0.25)
            tracer.record("chunk", 0.75)
        chunk = tracer.summary()["spans"][0]["children"][0]
        assert chunk["count"] == 2
        assert chunk["seconds"] == 1.0

    def test_reset_clears_the_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work"):
            pass
        tracer.reset()
        assert tracer.summary() is None

    def test_summary_is_json_ready(self):
        import json

        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            tracer.add("n", 1)
            with tracer.span("b"):
                pass
        assert json.loads(json.dumps(tracer.summary()))["spans"][0]["name"] == "a"


class TestThreads:
    def test_each_thread_keeps_its_own_stack(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(4)

        def work(name: str) -> None:
            barrier.wait()
            for _ in range(100):
                with tracer.span(name):
                    tracer.add("n", 1)

        threads = [
            threading.Thread(target=work, args=(f"t{i % 2}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = {node["name"]: node for node in tracer.summary()["spans"]}
        assert spans["t0"]["count"] == 200
        assert spans["t1"]["count"] == 200
        assert spans["t0"]["counters"]["n"] == 200.0


class TestGlobals:
    def test_set_tracing_resets_on_enable(self):
        tracer = set_tracing(True)
        try:
            with tracer.span("first"):
                pass
            set_tracing(True)  # re-enable resets the recorded tree
            assert tracer.summary() is None
            assert get_tracer() is tracer
        finally:
            set_tracing(False)

    def test_disable_preserves_recorded_tree(self):
        tracer = set_tracing(True)
        try:
            with tracer.span("work"):
                pass
        finally:
            set_tracing(False)
        assert tracer.summary() is not None
        tracer.reset()


class TestExceptionSafety:
    def test_raising_span_body_still_records_and_pops(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError, match="mid-span"):
            with tracer.span("work"):
                raise RuntimeError("mid-span failure")
        node = tracer.summary()["spans"][0]
        assert node["name"] == "work"
        assert node["count"] == 1
        assert node["seconds"] >= 0.0
        # The thread-local stack popped: a later span is a sibling root,
        # not a child of the failed one.
        with tracer.span("after"):
            pass
        names = {span["name"] for span in tracer.summary()["spans"]}
        assert names == {"work", "after"}

    def test_nested_raise_unwinds_every_level(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("deep failure")
        outer = tracer.summary()["spans"][0]
        assert outer["count"] == 1
        assert outer["children"][0]["name"] == "inner"
        assert outer["children"][0]["count"] == 1
        # Tracer remains usable at the root level afterwards.
        with tracer.span("next"):
            tracer.add("n", 1)
        spans = {span["name"]: span for span in tracer.summary()["spans"]}
        assert spans["next"]["counters"] == {"n": 1.0}

    def test_raising_span_records_timeline_event_too(self):
        tracer = Tracer(enabled=True, timeline=True)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert [event["name"] for event in tracer.events()] == ["doomed"]


class TestTimeline:
    def test_disabled_timeline_records_no_events(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work"):
            pass
        assert tracer.events() == []

    def test_span_close_appends_one_event(self):
        tracer = Tracer(enabled=True, timeline=True)
        with tracer.span("work"):
            pass
        (event,) = tracer.events()
        assert event["name"] == "work"
        assert event["dur"] >= 0.0
        assert event["ts"] > 0
        assert event["pid"] > 0 and event["tid"] > 0

    def test_record_synthesizes_an_event(self):
        tracer = Tracer(enabled=True, timeline=True)
        tracer.record("chunk", 0.5)
        (event,) = tracer.events()
        assert event["name"] == "chunk"
        assert event["dur"] == 0.5

    def test_record_event_false_folds_aggregate_only(self):
        tracer = Tracer(enabled=True, timeline=True)
        tracer.record("merged", 0.25, event=False)
        assert tracer.events() == []
        assert tracer.summary()["spans"][0]["seconds"] == 0.25

    def test_events_stamp_the_active_trace_id(self):
        tracer = Tracer(enabled=True, timeline=True)
        with use_context(TraceContext(trace_id="t-123")):
            with tracer.span("work"):
                pass
        assert tracer.events()[0]["trace_id"] == "t-123"

    def test_add_event_preserves_foreign_pid_tid(self):
        tracer = Tracer(enabled=True, timeline=True)
        tracer.add_event("worker.chunk", 10.0, 0.1, pid=999, tid=7, trace_id="w1")
        (event,) = tracer.events()
        assert (event["pid"], event["tid"], event["trace_id"]) == (999, 7, "w1")

    def test_cap_counts_dropped_events(self):
        tracer = Tracer(enabled=True, timeline=True)
        for index in range(MAX_TIMELINE_EVENTS + 5):
            tracer.add_event("e", float(index), 0.0)
        assert len(tracer.events()) == MAX_TIMELINE_EVENTS
        assert tracer.events_dropped == 5
        assert tracer.summary()["events_dropped"] == 5

    def test_summary_carries_events_and_reset_clears(self):
        tracer = Tracer(enabled=True, timeline=True)
        with tracer.span("work"):
            pass
        assert len(tracer.summary()["events"]) == 1
        tracer.reset()
        assert tracer.events() == []
        assert tracer.events_dropped == 0

    def test_set_tracing_timeline_follows_enabled(self):
        tracer = set_tracing(True)
        try:
            assert tracer.timeline
            set_tracing(True, timeline=False)
            assert not tracer.timeline
        finally:
            set_tracing(False)
        assert not tracer.timeline


class TestChromeTrace:
    def test_events_become_complete_slices_in_microseconds(self):
        events = [
            {"name": "engine.run", "ts": 2.0, "dur": 0.5, "pid": 1, "tid": 2},
            {"name": "serve.request", "ts": 1.0, "dur": 1.5, "pid": 1, "tid": 3,
             "trace_id": "abc"},
        ]
        payload = chrome_trace(events, metadata={"run_id": "r1"})
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"] == {"run_id": "r1"}
        first, second = payload["traceEvents"]  # sorted by ts
        assert first["name"] == "serve.request"
        assert first["ph"] == "X"
        assert first["ts"] == 1_000_000 and first["dur"] == 1_500_000
        assert first["args"]["trace_id"] == "abc"
        assert first["cat"] == "serve"
        assert second["cat"] == "engine"
        assert "args" not in second

    def test_round_trips_through_json(self):
        import json

        tracer = Tracer(enabled=True, timeline=True)
        with tracer.span("a.b"):
            pass
        parsed = json.loads(json.dumps(chrome_trace(tracer.events())))
        assert parsed["traceEvents"][0]["name"] == "a.b"


class TestRender:
    def test_render_trace_shows_hierarchy_and_counters(self):
        tracer = Tracer(enabled=True)
        with tracer.span("fit"):
            with tracer.span("epoch"):
                tracer.add("triples", 300)
        text = render_trace(tracer.summary())
        assert "fit" in text
        assert "  epoch" in text  # indented child
        assert "triples=300" in text

    def test_render_empty_summary(self):
        assert render_trace({"spans": []}) == "(empty trace)"
