"""Span tracer: aggregation, nesting, thread safety, disabled-path cost."""

import threading

from repro.obs import get_tracer, set_tracing
from repro.obs.trace import Tracer, _NULL_SPAN, render_trace


class TestDisabled:
    def test_disabled_span_is_the_shared_null_span(self):
        tracer = Tracer()
        assert tracer.span("anything") is _NULL_SPAN
        assert tracer.span("other") is _NULL_SPAN  # no per-call allocation

    def test_disabled_add_and_record_are_noops(self):
        tracer = Tracer()
        tracer.add("triples", 100)
        tracer.record("chunk", 1.0)
        assert tracer.summary() is None


class TestAggregation:
    def test_repeated_spans_aggregate_by_name(self):
        tracer = Tracer(enabled=True)
        for _ in range(5):
            with tracer.span("epoch"):
                pass
        summary = tracer.summary()
        assert len(summary["spans"]) == 1
        node = summary["spans"][0]
        assert node["name"] == "epoch"
        assert node["count"] == 5
        assert node["seconds"] >= 0.0

    def test_nested_spans_build_a_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("fit"):
            for _ in range(3):
                with tracer.span("epoch"):
                    with tracer.span("batch"):
                        pass
        fit = tracer.summary()["spans"][0]
        assert fit["name"] == "fit" and fit["count"] == 1
        epoch = fit["children"][0]
        assert epoch["name"] == "epoch" and epoch["count"] == 3
        assert epoch["children"][0]["name"] == "batch"

    def test_counters_attach_to_the_innermost_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("fit"):
            with tracer.span("epoch"):
                tracer.add("triples", 100)
            with tracer.span("epoch"):
                tracer.add("triples", 50)
        epoch = tracer.summary()["spans"][0]["children"][0]
        assert epoch["counters"] == {"triples": 150.0}

    def test_record_folds_external_timings_in(self):
        tracer = Tracer(enabled=True)
        with tracer.span("run"):
            tracer.record("chunk", 0.25)
            tracer.record("chunk", 0.75)
        chunk = tracer.summary()["spans"][0]["children"][0]
        assert chunk["count"] == 2
        assert chunk["seconds"] == 1.0

    def test_reset_clears_the_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work"):
            pass
        tracer.reset()
        assert tracer.summary() is None

    def test_summary_is_json_ready(self):
        import json

        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            tracer.add("n", 1)
            with tracer.span("b"):
                pass
        assert json.loads(json.dumps(tracer.summary()))["spans"][0]["name"] == "a"


class TestThreads:
    def test_each_thread_keeps_its_own_stack(self):
        tracer = Tracer(enabled=True)
        barrier = threading.Barrier(4)

        def work(name: str) -> None:
            barrier.wait()
            for _ in range(100):
                with tracer.span(name):
                    tracer.add("n", 1)

        threads = [
            threading.Thread(target=work, args=(f"t{i % 2}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        spans = {node["name"]: node for node in tracer.summary()["spans"]}
        assert spans["t0"]["count"] == 200
        assert spans["t1"]["count"] == 200
        assert spans["t0"]["counters"]["n"] == 200.0


class TestGlobals:
    def test_set_tracing_resets_on_enable(self):
        tracer = set_tracing(True)
        try:
            with tracer.span("first"):
                pass
            set_tracing(True)  # re-enable resets the recorded tree
            assert tracer.summary() is None
            assert get_tracer() is tracer
        finally:
            set_tracing(False)

    def test_disable_preserves_recorded_tree(self):
        tracer = set_tracing(True)
        try:
            with tracer.span("work"):
                pass
        finally:
            set_tracing(False)
        assert tracer.summary() is not None
        tracer.reset()


class TestRender:
    def test_render_trace_shows_hierarchy_and_counters(self):
        tracer = Tracer(enabled=True)
        with tracer.span("fit"):
            with tracer.span("epoch"):
                tracer.add("triples", 300)
        text = render_trace(tracer.summary())
        assert "fit" in text
        assert "  epoch" in text  # indented child
        assert "triples=300" in text

    def test_render_empty_summary(self):
        assert render_trace({"spans": []}) == "(empty trace)"
