"""BENCH_*.json record layer: stamping, trend, and the regression gate."""

import json
from pathlib import Path

import pytest

from repro.bench import stamp_bench_record
from repro.cli import main
from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    compare_records,
    comparable_metrics,
    config_fingerprint,
    gate_records,
    load_bench_records,
    metric_direction,
    trend_rows,
)

COMMITTED_RESULTS = Path(__file__).resolve().parents[2] / "benchmarks" / "results"


def _write(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestStamp:
    def test_stamp_adds_schema_timestamp_fingerprint(self):
        stamped = stamp_bench_record({"speedup": 2.0}, config={"dim": 64})
        assert stamped["schema_version"] == BENCH_SCHEMA_VERSION
        assert "T" in stamped["timestamp"]
        assert stamped["config_fingerprint"] == config_fingerprint({"dim": 64})
        assert stamped["speedup"] == 2.0

    def test_stamp_without_config_omits_fingerprint(self):
        stamped = stamp_bench_record({"speedup": 2.0})
        assert "config_fingerprint" not in stamped

    def test_stamp_does_not_mutate_the_payload(self):
        payload = {"speedup": 2.0}
        stamp_bench_record(payload)
        assert payload == {"speedup": 2.0}

    def test_fingerprint_is_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )


class TestDirections:
    @pytest.mark.parametrize(
        "key,expected",
        [
            ("latency_bound_speedup", "higher"),
            ("speedup_fused_vs_autodiff", "higher"),
            ("mrr_float32", "higher"),
            ("hits10", "higher"),
            ("throughput_rows", "higher"),
            ("fused_seconds_per_epoch", "lower"),
            ("cpu_bound_speedup", None),  # host-load noise: never gated
            ("workers", None),
            ("schema_version", None),
            ("min_speedup_asserted", None),
        ],
    )
    def test_metric_direction(self, key, expected):
        assert metric_direction(key) == expected

    def test_absolute_timings_gated_only_on_request(self):
        record = {"speedup": 2.0, "fused_seconds_per_epoch": 0.5}
        assert "fused_seconds_per_epoch" not in comparable_metrics(record)
        assert (
            comparable_metrics(record, absolute=True)["fused_seconds_per_epoch"]
            == "lower"
        )


class TestGate:
    def test_fails_on_injected_25_percent_regression(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "training", {"speedup_fused_vs_autodiff": 4.0})
        _write(cand, "training", {"speedup_fused_vs_autodiff": 3.0})  # -25%
        rows, regressions = gate_records(base, cand, max_regression=0.2)
        assert regressions == ["training.speedup_fused_vs_autodiff"]
        assert rows[0]["Status"] == "REGRESSED"

    def test_passes_within_the_margin(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "training", {"speedup_fused_vs_autodiff": 4.0})
        _write(cand, "training", {"speedup_fused_vs_autodiff": 3.4})  # -15%
        _, regressions = gate_records(base, cand, max_regression=0.2)
        assert regressions == []

    def test_lower_better_regression_with_absolute(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "t", {"fused_seconds_per_epoch": 1.0})
        _write(cand, "t", {"fused_seconds_per_epoch": 1.5})  # 50% slower
        _, silent = gate_records(base, cand)
        assert silent == []  # wall clock not gated by default
        _, loud = gate_records(base, cand, absolute=True)
        assert loud == ["t.fused_seconds_per_epoch"]

    def test_noisy_cpu_bound_never_gates(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "serve", {"cpu_bound_speedup": 1.0})
        _write(cand, "serve", {"cpu_bound_speedup": 0.1})
        _, regressions = gate_records(base, cand)
        assert regressions == []

    def test_empty_directories_raise(self, tmp_path):
        filled = tmp_path / "filled"
        _write(filled, "x", {"speedup": 1.0})
        with pytest.raises(FileNotFoundError):
            gate_records(tmp_path / "missing", filled)
        with pytest.raises(FileNotFoundError):
            gate_records(filled, tmp_path / "missing")

    def test_committed_baselines_pass_against_themselves(self):
        """The real committed records are self-consistent under the gate."""
        records = load_bench_records(COMMITTED_RESULTS)
        assert records, f"no committed BENCH_*.json under {COMMITTED_RESULTS}"
        _, regressions = compare_records(records, records)
        assert regressions == []

    def test_improvements_never_regress(self, tmp_path):
        base, cand = tmp_path / "base", tmp_path / "cand"
        _write(base, "t", {"speedup": 2.0})
        _write(cand, "t", {"speedup": 10.0})
        rows, regressions = gate_records(base, cand)
        assert regressions == []
        assert rows[0]["Status"] == "ok"


class TestTrend:
    def test_one_row_per_trackable_metric(self):
        records = {
            "training": {
                "speedup_fused_vs_autodiff": 5.0,
                "schema_version": 1,
                "timestamp": "2026-08-07T00:00:00",
                "config_fingerprint": "abc123",
                "bench": "bench_training",
            },
            "serve": {"latency_bound_speedup": 3.0, "cpu_bound_speedup": 0.4},
        }
        rows = trend_rows(records)
        by_metric = {(r["Bench"], r["Metric"]): r for r in rows}
        assert by_metric[("training", "speedup_fused_vs_autodiff")]["Schema"] == 1
        # cpu_bound shows in the trend, flagged info, despite never gating.
        assert by_metric[("serve", "cpu_bound_speedup")]["Direction"] == "info"
        assert ("training", "bench") not in by_metric


class TestCli:
    def test_bench_trend_on_committed_records(self, capsys):
        assert main(["bench", "trend", "--results", str(COMMITTED_RESULTS)]) == 0
        out = capsys.readouterr().out
        assert "speedup_fused_vs_autodiff" in out
        assert "latency_bound_speedup" in out

    def test_bench_trend_json_format(self, capsys):
        assert (
            main(
                [
                    "bench",
                    "trend",
                    "--results",
                    str(COMMITTED_RESULTS),
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert any(row["Metric"] == "speedup_fused_vs_autodiff" for row in rows)

    def test_bench_gate_cli_passes_on_committed_baselines(self, capsys):
        code = main(
            [
                "bench",
                "gate",
                "--baseline",
                str(COMMITTED_RESULTS),
                "--candidate",
                str(COMMITTED_RESULTS),
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_bench_gate_cli_fails_on_injected_regression(self, tmp_path, capsys):
        cand = tmp_path / "cand"
        for name, record in load_bench_records(COMMITTED_RESULTS).items():
            degraded = {
                key: value * 0.75
                if metric_direction(key) == "higher"
                and isinstance(value, (int, float))
                else value
                for key, value in record.items()
            }
            _write(cand, name, degraded)
        code = main(
            [
                "bench",
                "gate",
                "--baseline",
                str(COMMITTED_RESULTS),
                "--candidate",
                str(cand),
                "--max-regression",
                "0.2",
            ]
        )
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_bench_gate_cli_missing_baseline_is_an_error(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "gate",
                "--baseline",
                str(tmp_path / "nope"),
                "--candidate",
                str(COMMITTED_RESULTS),
            ]
        )
        assert code == 2
