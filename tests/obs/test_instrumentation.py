"""Instrumented hot paths: identical results, spans recorded, obs journaled."""

import numpy as np
import pytest

from repro.core.ranking import evaluate_full
from repro.datasets import SyntheticConfig, generate
from repro.experiment import ExperimentSpec, run
from repro.models import Trainer, TrainingConfig, build_model
from repro.obs import get_registry, get_tracer, set_tracing
from repro.store import ExperimentStore


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    set_tracing(False)


@pytest.fixture
def graph():
    return generate(
        SyntheticConfig(num_entities=120, num_relations=4, num_triples=600, seed=3)
    ).graph


def _fit(graph):
    model = build_model("complex", graph.num_entities, graph.num_relations, dim=8, seed=0)
    history = Trainer(TrainingConfig(epochs=2, seed=0)).fit(model, graph)
    return model, history


class TestTrainerSpans:
    def test_losses_bitwise_identical_with_tracing_on(self, graph):
        set_tracing(False)
        _, baseline = _fit(graph)
        set_tracing(True)
        _, traced = _fit(graph)
        assert baseline.losses == traced.losses  # exact float equality

    def test_epoch_spans_and_counters_recorded(self, graph):
        tracer = set_tracing(True)
        _fit(graph)
        spans = {node["name"]: node for node in tracer.summary()["spans"]}
        fit = spans["train.fit"]
        epoch = {node["name"]: node for node in fit["children"]}["train.epoch"]
        assert epoch["count"] == 2
        assert epoch["counters"]["triples"] == 2 * len(graph.train)
        assert epoch["counters"]["batches"] > 0


class TestEngineSpans:
    def test_ranks_bitwise_identical_with_tracing_on(self, graph):
        model, _ = _fit(graph)
        set_tracing(False)
        baseline = evaluate_full(model, graph)
        set_tracing(True)
        traced = evaluate_full(model, graph)
        assert baseline.ranks == traced.ranks
        assert baseline.metrics == traced.metrics

    def test_engine_run_span_counts_chunks_and_queries(self, graph):
        model, _ = _fit(graph)
        tracer = set_tracing(True)
        result = evaluate_full(model, graph, chunk_size=32)
        spans = {node["name"]: node for node in tracer.summary()["spans"]}
        run_span = spans["engine.run"]
        assert run_span["counters"]["queries"] == len(result.ranks)
        children = {node["name"]: node for node in run_span.get("children", [])}
        chunk = children["engine.chunk"]
        assert chunk["count"] == run_span["counters"]["chunks"]
        assert chunk["seconds"] > 0.0

    def test_engine_gauges_published_to_global_registry(self, graph):
        model, _ = _fit(graph)
        evaluate_full(model, graph, workers=1, chunk_size=17)
        registry = get_registry()
        assert registry.gauge("repro_engine_workers").value() == 1
        assert registry.gauge("repro_engine_chunk_size").value() == 17
        assert registry.counter("repro_engine_queries_total").value() > 0


class TestJournaledObs:
    SPEC = {
        "task": "evaluate",
        "dataset": {"name": "codex-s-lite"},
        "model": {"name": "distmult", "dim": 8},
        "training": {"epochs": 1},
        "evaluation": {"num_samples": 20},
    }

    def test_traced_run_journals_its_span_summary(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        set_tracing(True)
        result = run(ExperimentSpec.from_dict(self.SPEC), store=store, kind="test")
        record = store.journal.get(result.run_id)
        assert record.obs is not None
        names = {node["name"] for node in record.obs["spans"]}
        assert "experiment.task" in names
        task = next(n for n in record.obs["spans"] if n["name"] == "experiment.task")
        child_names = {node["name"] for node in task["children"]}
        assert {"dataset.load", "train.fit", "evaluate.full"} <= child_names

    def test_untraced_run_journals_no_obs(self, tmp_path):
        store = ExperimentStore(tmp_path / "store")
        set_tracing(False)
        result = run(ExperimentSpec.from_dict(self.SPEC), store=store, kind="test")
        record = store.journal.get(result.run_id)
        assert record.obs is None

    def test_traced_metrics_equal_untraced_metrics(self, tmp_path):
        spec = ExperimentSpec.from_dict(self.SPEC)
        set_tracing(False)
        plain = run(spec, store=None)
        set_tracing(True)
        traced = run(spec, store=None)
        assert plain.truth.metrics == traced.truth.metrics
        assert np.array_equal(plain.losses, traced.losses)
