"""Structured logging: line shape, context stamping, request-id hygiene."""

import io
import json

from repro.obs.context import TraceContext, use_context
from repro.obs.log import (
    MAX_REQUEST_ID_LENGTH,
    StructuredLogger,
    configure_logging,
    get_logger,
    log_event,
    sanitize_request_id,
)


class TestSanitizeRequestId:
    def test_plain_ids_pass_through(self):
        assert sanitize_request_id("req-42") == "req-42"

    def test_crlf_stripped(self):
        assert sanitize_request_id("bad\r\nX-Evil: 1") == "badX-Evil: 1"

    def test_all_control_characters_stripped(self):
        hostile = "a\x00b\x01c\x1fd\x7fe"
        assert sanitize_request_id(hostile) == "abcde"

    def test_length_clamped(self):
        assert len(sanitize_request_id("x" * 500)) == MAX_REQUEST_ID_LENGTH

    def test_whitespace_trimmed(self):
        assert sanitize_request_id("  padded  ") == "padded"

    def test_pure_garbage_collapses_to_empty(self):
        assert sanitize_request_id("\r\n\x00") == ""


class TestStructuredLogger:
    def test_disabled_by_default_and_noop(self):
        logger = StructuredLogger()
        assert not logger.enabled
        logger.event("engine.run", workers=2)  # must not raise
        assert logger.lines_written == 0

    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        logger.event("a.first", n=1)
        logger.event("a.second", n=2)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert [line["event"] for line in lines] == ["a.first", "a.second"]
        assert all("ts" in line for line in lines)
        assert logger.lines_written == 2

    def test_context_ids_stamped(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        with use_context(TraceContext(trace_id="t1", request_id="r1")):
            logger.event("serve.request", status=200)
        line = json.loads(stream.getvalue())
        assert line["trace_id"] == "t1"
        assert line["request_id"] == "r1"

    def test_no_context_means_no_id_fields(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        logger.event("engine.run")
        line = json.loads(stream.getvalue())
        assert "trace_id" not in line and "request_id" not in line

    def test_unserialisable_fields_fall_back_to_str(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        logger.event("weird", payload=object())
        assert "object object" in json.loads(stream.getvalue())["payload"]

    def test_file_sink(self, tmp_path):
        path = tmp_path / "events.jsonl"
        logger = StructuredLogger(path=str(path))
        logger.event("engine.pool.start", workers=2)
        logger.configure(None)  # closes the file
        line = json.loads(path.read_text().strip())
        assert line["event"] == "engine.pool.start"

    def test_stream_and_path_are_exclusive(self):
        import pytest

        with pytest.raises(ValueError, match="not both"):
            StructuredLogger(stream=io.StringIO(), path="x")


class TestGlobalLogger:
    def test_configure_and_disable_round_trip(self):
        stream = io.StringIO()
        try:
            logger = configure_logging(stream)
            assert logger is get_logger()
            assert logger.enabled
            log_event("test.event", value=7)
            assert json.loads(stream.getvalue())["value"] == 7
        finally:
            configure_logging(None)
        assert not get_logger().enabled

    def test_disabled_global_is_noop(self):
        configure_logging(None)
        log_event("never.written")  # must not raise
