"""Metrics registry: concurrency, quantile edges, exposition round-trip."""

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_deltas,
    parse_prometheus,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("requests_total")
        assert counter.value() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter("requests_total").inc(-1)

    def test_labelled_series_are_independent(self):
        counter = Counter("requests_total", labels=("endpoint",))
        counter.inc(endpoint="rank")
        counter.inc(3, endpoint="score")
        assert counter.value(endpoint="rank") == 1.0
        assert counter.value(endpoint="score") == 3.0

    def test_rejects_invalid_names(self):
        with pytest.raises(ValueError):
            Counter("9starts-with-digit")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("queue_depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(3)
        assert gauge.value() == 4.0

    def test_can_go_negative(self):
        gauge = Gauge("drift")
        gauge.dec(2)
        assert gauge.value() == -2.0


class TestHistogramQuantiles:
    def test_empty_histogram_quantile_is_nan(self):
        histogram = Histogram("latency_seconds")
        assert math.isnan(histogram.quantile(0.5))

    def test_single_sample(self):
        histogram = Histogram("latency_seconds", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1.5)
        # The only sample sits in the (1, 2] bucket at every quantile.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert 1.0 <= histogram.quantile(q) <= 2.0

    def test_out_of_range_quantile_rejected(self):
        histogram = Histogram("latency_seconds")
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(-0.1)
        with pytest.raises(ValueError):
            histogram.quantile(1.1)

    def test_overflow_observations_clamp_to_largest_bound(self):
        histogram = Histogram("latency_seconds", buckets=(1.0, 2.0))
        histogram.observe(100.0)  # beyond every finite bucket
        assert histogram.quantile(0.5) == 2.0
        assert histogram.count() == 1
        assert histogram.sum() == 100.0

    def test_p50_p99_separate_under_skew(self):
        histogram = Histogram("latency_seconds", buckets=DEFAULT_BUCKETS)
        for _ in range(99):
            histogram.observe(0.001)
        histogram.observe(5.0)
        assert histogram.quantile(0.5) <= 0.005
        assert histogram.quantile(0.99) >= 0.0005
        assert histogram.quantile(1.0) >= 2.5

    def test_sum_and_count_track_observations(self):
        histogram = Histogram("latency_seconds")
        for value in (0.001, 0.01, 0.1):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(0.111)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("requests_total")
        second = registry.counter("requests_total")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", labels=("endpoint",))
        with pytest.raises(ValueError):
            registry.counter("x_total", labels=("side",))

    def test_reset_forgets_everything(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc()
        registry.reset()
        assert registry.names() == []


class TestConcurrency:
    """Many threads hammering one family must lose no updates."""

    THREADS = 8
    PER_THREAD = 2000

    def test_concurrent_counter_increments(self):
        counter = Counter("hits_total", labels=("worker",))

        def work(worker: int) -> None:
            for _ in range(self.PER_THREAD):
                counter.inc(worker=str(worker % 2))

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = counter.value(worker="0") + counter.value(worker="1")
        assert total == self.THREADS * self.PER_THREAD

    def test_concurrent_histogram_observations(self):
        histogram = Histogram("latency_seconds", buckets=(0.5, 1.0, 2.0))

        def work() -> None:
            for i in range(self.PER_THREAD):
                histogram.observe(0.25 + (i % 3) * 0.5)  # 0.25 / 0.75 / 1.25

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = self.THREADS * self.PER_THREAD
        assert histogram.count() == expected

    def test_concurrent_get_or_create(self):
        registry = MetricsRegistry()
        instances = []

        def work() -> None:
            instances.append(registry.counter("shared_total"))

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(map(id, instances))) == 1


class TestWorkerMerge:
    """The shm-pool shipping path: snapshot, diff, merge with labels."""

    def test_counter_values_sums_across_label_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("chunks_total", labels=("side",))
        counter.inc(2, side="a")
        counter.inc(3, side="b")
        registry.counter("plain_total").inc(4)
        registry.gauge("depth").set(9)  # gauges are not counters
        assert registry.counter_values() == {
            "chunks_total": 5.0,
            "plain_total": 4.0,
        }

    def test_counter_deltas_diffs_positive_only(self):
        previous = {"a_total": 2.0, "b_total": 5.0}
        current = {"a_total": 3.5, "b_total": 5.0, "c_total": 1.0}
        assert counter_deltas(current, previous) == {
            "a_total": 1.5,
            "c_total": 1.0,
        }

    def test_merge_counters_applies_labels(self):
        registry = MetricsRegistry()
        registry.merge_counters(
            {"worker_chunks_total": 2.0},
            labels={"pool": "engine", "worker": "0"},
            help_texts={"worker_chunks_total": "Chunks scored"},
        )
        registry.merge_counters(
            {"worker_chunks_total": 3.0},
            labels={"pool": "engine", "worker": "1"},
        )
        counter = registry.counter(
            "worker_chunks_total", labels=("pool", "worker")
        )
        assert counter.value(pool="engine", worker="0") == 2.0
        assert counter.value(pool="engine", worker="1") == 3.0
        assert "# HELP worker_chunks_total Chunks scored" in registry.render()

    def test_merge_counters_accumulates_across_calls(self):
        registry = MetricsRegistry()
        for _ in range(3):
            registry.merge_counters(
                {"busy_seconds_total": 0.5}, labels={"worker": "0"}
            )
        counter = registry.counter("busy_seconds_total", labels=("worker",))
        assert counter.value(worker="0") == 1.5

    def test_merge_counters_skips_non_positive_deltas(self):
        registry = MetricsRegistry()
        registry.merge_counters(
            {"good_total": 1.0, "zero_total": 0.0, "bad_total": -2.0},
            labels={"worker": "0"},
        )
        assert registry.names() == ["good_total"]

    def test_merge_without_labels_hits_plain_counters(self):
        registry = MetricsRegistry()
        registry.merge_counters({"events_total": 2.0})
        assert registry.counter("events_total").value() == 2.0


class TestExposition:
    def test_render_contains_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", "Requests served").inc(3)
        text = registry.render()
        assert "# HELP requests_total Requests served" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text

    def test_histogram_buckets_are_cumulative_and_end_with_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 9.0):
            histogram.observe(value)
        samples = parse_prometheus(registry.render())
        assert samples[("lat_seconds_bucket", (("le", "1"),))] == 1
        assert samples[("lat_seconds_bucket", (("le", "2"),))] == 2
        assert samples[("lat_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("lat_seconds_count", ())] == 3
        assert samples[("lat_seconds_sum", ())] == pytest.approx(11.0)

    def test_round_trip_counters_gauges_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("req_total", "by endpoint", labels=("endpoint",))
        counter.inc(2, endpoint="rank")
        counter.inc(5, endpoint="score")
        registry.gauge("up").set(1)
        samples = parse_prometheus(registry.render())
        assert samples[("req_total", (("endpoint", "rank"),))] == 2
        assert samples[("req_total", (("endpoint", "score"),))] == 5
        assert samples[("up", ())] == 1

    def test_label_values_escape_round_trip(self):
        registry = MetricsRegistry()
        counter = registry.counter("odd_total", labels=("path",))
        tricky = 'a"b\\c\nd'
        counter.inc(path=tricky)
        samples = parse_prometheus(registry.render())
        assert samples[("odd_total", (("path", tricky),))] == 1

    def test_families_render_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz_total").inc()
        registry.counter("aaa_total").inc()
        text = registry.render()
        assert text.index("aaa_total") < text.index("zzz_total")
