"""Structural guard for the mkdocs site.

CI builds the site with ``mkdocs build --strict``; this test keeps the
same invariants enforceable in environments without mkdocs installed:
the nav and the docs/ directory agree, and every internal markdown link
resolves.  A broken page name fails here in the tier-1 suite instead of
only in the docs CI job.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"

LINK_PATTERN = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")


def _nav_targets() -> list[str]:
    import yaml

    config = yaml.safe_load(MKDOCS_YML.read_text(encoding="utf-8"))
    assert config["site_name"]
    targets: list[str] = []

    def walk(node) -> None:
        if isinstance(node, str):
            targets.append(node)
        elif isinstance(node, list):
            for item in node:
                walk(item)
        elif isinstance(node, dict):
            for value in node.values():
                walk(value)

    walk(config["nav"])
    return targets


def test_nav_targets_exist():
    targets = _nav_targets()
    assert targets, "mkdocs nav is empty"
    for target in targets:
        assert (DOCS_DIR / target).is_file(), f"nav references missing page {target}"


def test_every_docs_page_is_in_the_nav():
    targets = set(_nav_targets())
    pages = {p.relative_to(DOCS_DIR).as_posix() for p in DOCS_DIR.rglob("*.md")}
    orphans = pages - targets
    assert not orphans, f"docs pages missing from mkdocs nav: {sorted(orphans)}"


def test_internal_markdown_links_resolve():
    broken: list[str] = []
    for page in DOCS_DIR.rglob("*.md"):
        for match in LINK_PATTERN.finditer(page.read_text(encoding="utf-8")):
            href = match.group(1)
            if href.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = href.split("#", 1)[0]
            if not path.endswith(".md"):
                continue
            if not (page.parent / path).is_file():
                broken.append(f"{page.name} -> {href}")
    assert not broken, f"broken internal links: {broken}"


def test_docs_cover_the_required_guides():
    """The ISSUE-mandated pages: architecture, reproduction map, store."""
    architecture = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
    for layer in ("repro.kg", "repro.models", "repro.core", "repro.engine", "repro.store"):
        assert layer in architecture, f"architecture overview misses {layer}"

    reproduce = (DOCS_DIR / "reproduce.md").read_text(encoding="utf-8")
    bench_names = {
        p.name for p in (REPO_ROOT / "benchmarks").glob("bench_*.py")
    }
    unmapped = {name for name in bench_names if name not in reproduce}
    assert not unmapped, f"reproduce.md misses benchmarks: {sorted(unmapped)}"

    store = (DOCS_DIR / "store.md").read_text(encoding="utf-8")
    assert "warm" in store.lower() and "journal" in store.lower()


def test_serve_guide_documents_the_api():
    """The serving guide covers the API schema and the batching knobs."""
    serve = (DOCS_DIR / "serve.md").read_text(encoding="utf-8")
    for endpoint in ("/v1/rank", "/v1/score", "/v1/models", "/healthz"):
        assert endpoint in serve, f"serve.md misses endpoint {endpoint}"
    for knob in ("--max-batch", "--max-wait-ms", "--model-path", "--save-model"):
        assert knob in serve, f"serve.md misses knob {knob}"
    assert "micro-batch" in serve.lower()
    assert "bitwise-identical" in serve

    architecture = (DOCS_DIR / "architecture.md").read_text(encoding="utf-8")
    assert "repro.serve" in architecture

    cli = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
    assert "## `serve`" in cli
