"""Shared fixtures: hand-built toy graphs and cached zoo datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SyntheticConfig, generate, load
from repro.kg import KnowledgeGraph, TripleSet, Vocabulary, build_graph
from repro.kg.typing import build_type_store


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def lock_sanitizer():
    """Lock-order/race sanitizer over the process-global obs state.

    Wraps the global :class:`~repro.obs.metrics.MetricsRegistry` and
    :class:`~repro.obs.trace.Tracer` locks for the duration of the
    test: any lock-order inversion or mutation of their shared dicts
    without the owning lock fails the test at teardown.  The test body
    receives the :class:`~repro.analysis.LockSanitizer` and may call
    ``assert_clean()`` earlier, or inspect ``violations`` directly.
    """
    from repro.analysis import LockSanitizer, sanitize_registry, sanitize_tracer
    from repro.obs import get_registry, get_tracer

    sanitizer = LockSanitizer()
    registry_handle = sanitize_registry(get_registry(), sanitizer)
    tracer_handle = sanitize_tracer(get_tracer(), sanitizer)
    try:
        yield sanitizer
        sanitizer.assert_clean()
    finally:
        tracer_handle.restore()
        registry_handle.restore()


@pytest.fixture
def tiny_graph() -> KnowledgeGraph:
    """A 6-entity, 3-relation graph with train/valid/test splits.

    Laid out so every query has hand-checkable filtered answers:

    * ``likes``: e0->e1, e0->e2, e1->e2 (train), e0->e3 (test)
    * ``knows``: e3->e4 (train), e4->e5 (valid)
    * ``made``:  e5->e0 (train)
    """
    entities = Vocabulary([f"e{i}" for i in range(6)])
    relations = Vocabulary(["likes", "knows", "made"])
    return KnowledgeGraph(
        entities=entities,
        relations=relations,
        train=TripleSet([(0, 0, 1), (0, 0, 2), (1, 0, 2), (3, 1, 4), (5, 2, 0)]),
        valid=TripleSet([(4, 1, 5)]),
        test=TripleSet([(0, 0, 3)]),
        name="tiny",
    )


@pytest.fixture
def gates_graph() -> KnowledgeGraph:
    """The paper's Figure 2 toy KG (Youn & Tagkopoulos example).

    Entities: Melinda French, Bill Gates, Jennifer Gates, Washington,
    Microsoft, United States; relations as in the figure.  All triples go
    into train so recommender tests see the full structure.
    """
    triples = [
        ("MelindaFrench", "divorcedWith", "BillGates"),
        ("BillGates", "divorcedWith", "MelindaFrench"),
        ("BillGates", "founderOf", "Microsoft"),
        ("BillGates", "bornIn", "Washington"),
        ("JenniferGates", "daughterOf", "MelindaFrench"),
        ("JenniferGates", "daughterOf", "BillGates"),
        ("JenniferGates", "bornIn", "Washington"),
        ("Microsoft", "locatedIn", "UnitedStates"),
        ("Washington", "locatedIn", "UnitedStates"),
    ]
    return build_graph({"train": triples}, name="gates-toy")


@pytest.fixture
def typed_tiny_graph(tiny_graph):
    """The tiny graph plus a type store: persons e0-e4, artifact e5."""
    assignments = {
        0: ["Person"],
        1: ["Person"],
        2: ["Person"],
        3: ["Person"],
        4: ["Person"],
        5: ["Artifact"],
    }
    return tiny_graph, build_type_store(assignments)


@pytest.fixture(scope="session")
def small_dataset():
    """A small deterministic synthetic dataset (not from the zoo cache)."""
    config = SyntheticConfig(
        num_entities=300,
        num_relations=10,
        num_types=6,
        num_triples=2500,
        num_communities=2,
        noise_triples=4,
        seed=42,
        name="small-test",
    )
    return generate(config)


@pytest.fixture(scope="session")
def codex_s():
    """The smallest zoo dataset (cached across the whole test session)."""
    return load("codex-s-lite")
