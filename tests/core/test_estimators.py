"""Sampled estimators: filtering, pool semantics, agreement with reference."""

import numpy as np
import pytest

from repro.core import build_pools, evaluate_full, evaluate_sampled, sampled_rank
from repro.core.sampling import NegativePools
from repro.kg.graph import HEAD, TAIL
from repro.models import OracleModel, build_model


def _manual_pools(graph, mapping, strategy="static"):
    """Build a NegativePools with explicit per-(relation, side) entities."""
    pools = {HEAD: {}, TAIL: {}}
    for (relation, side), entities in mapping.items():
        pools[side][relation] = np.sort(np.asarray(entities, dtype=np.int64))
    return NegativePools(
        strategy=strategy,
        pools=pools,
        num_entities=graph.num_entities,
        sample_size=max((len(v) for v in mapping.values()), default=0),
    )


class TestSampledRank:
    def test_empty_pool_gives_rank_one(self, tiny_graph):
        model = build_model("distmult", 6, 3, dim=4, seed=0)
        rank, scored = sampled_rank(
            model, tiny_graph, 0, 0, TAIL, 3, np.empty(0, dtype=np.int64)
        )
        assert rank == 1.0
        assert scored == 1

    def test_known_answers_filtered_from_pool(self, tiny_graph):
        """Pool of only known answers behaves like an empty pool."""
        model = build_model("distmult", 6, 3, dim=4, seed=0)
        known = tiny_graph.true_answers(0, 0, TAIL)  # {1, 2, 3}
        rank, _ = sampled_rank(model, tiny_graph, 0, 0, TAIL, 3, known)
        assert rank == 1.0

    def test_rank_counts_pool_competitors(self, tiny_graph):
        class FixedModel(OracleModel):
            def _scores_for(self, anchor, relation, side, candidates):
                return candidates.astype(float)

        model = FixedModel(tiny_graph, seed=0)
        # Query (0, likes, ?) truth 3; pool {4, 5} both score higher.
        rank, _ = sampled_rank(model, tiny_graph, 0, 0, TAIL, 3, np.array([4, 5]))
        assert rank == 3.0


class TestEvaluateSampled:
    def test_matches_manual_reference(self, codex_s):
        graph = codex_s.graph
        model = build_model("complex", graph.num_entities, graph.num_relations, dim=8, seed=5)
        pools = build_pools(
            graph, "random", rng=np.random.default_rng(0), sample_fraction=0.2
        )
        result = evaluate_sampled(model, graph, pools, split="test")
        for (h, r, t, side), rank in list(result.ranks.items())[:50]:
            anchor, truth = (t, h) if side == HEAD else (h, t)
            reference, _ = sampled_rank(model, graph, anchor, r, side, truth, pools.pool(r, side))
            assert rank == pytest.approx(reference)

    def test_strategy_recorded(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, seed=0)
        pools = build_pools(graph, "random", rng=np.random.default_rng(0), num_samples=10)
        result = evaluate_sampled(model, graph, pools, split="test")
        assert result.strategy == "random"
        assert result.num_queries == 2 * len(graph.test)

    def test_num_scored_below_full(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, seed=0)
        pools = build_pools(graph, "random", rng=np.random.default_rng(0), num_samples=20)
        sampled = evaluate_sampled(model, graph, pools, split="test")
        full = evaluate_full(model, graph, split="test")
        assert sampled.num_scored < full.num_scored

    def test_pool_containing_all_entities_recovers_truth(self, tiny_graph):
        model = build_model("distmult", 6, 3, dim=4, seed=1)
        mapping = {
            (r, side): np.arange(6)
            for r in range(3)
            for side in (HEAD, TAIL)
        }
        pools = _manual_pools(tiny_graph, mapping)
        sampled = evaluate_sampled(model, tiny_graph, pools, split="test")
        full = evaluate_full(model, tiny_graph, split="test")
        for query, rank in sampled.ranks.items():
            assert rank == pytest.approx(full.ranks[query])

    def test_missing_pool_treated_as_empty(self, tiny_graph):
        model = build_model("distmult", 6, 3, dim=4, seed=1)
        pools = _manual_pools(tiny_graph, {})  # no pools at all
        result = evaluate_sampled(model, tiny_graph, pools, split="test")
        assert all(rank == 1.0 for rank in result.ranks.values())

    def test_truth_inside_pool_not_counted_as_negative(self, tiny_graph):
        """The truth being sampled must not outrank itself."""
        model = build_model("distmult", 6, 3, dim=4, seed=1)
        mapping = {(0, TAIL): np.array([3]), (0, HEAD): np.array([0])}
        pools = _manual_pools(tiny_graph, mapping)
        result = evaluate_sampled(model, tiny_graph, pools, split="test")
        assert result.ranks[(0, 0, 3, TAIL)] == 1.0
        assert result.ranks[(0, 0, 3, HEAD)] == 1.0
