"""EvaluationProtocol: the one-call API's contracts."""

import numpy as np
import pytest

from repro.core import EvaluationProtocol
from repro.models import OracleModel, build_model
from repro.recommenders import LinearWD


class TestConstruction:
    def test_default_sample_fraction(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph)
        assert protocol.sample_fraction == 0.1

    def test_accepts_recommender_instance(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, recommender=LinearWD())
        assert protocol.recommender.name == "l-wd"

    def test_unknown_recommender_raises(self, codex_s):
        with pytest.raises(KeyError):
            EvaluationProtocol(codex_s.graph, recommender="magic")


class TestPrepare:
    def test_idempotent(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="static")
        first = protocol.prepare()
        assert protocol.prepare() is first

    def test_random_needs_no_recommender(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="random")
        report = protocol.prepare()
        assert protocol.fitted is None
        assert report.fit_seconds == 0.0

    def test_static_builds_candidates(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="static")
        protocol.prepare()
        assert protocol.candidates is not None
        assert protocol.pools is not None

    def test_probabilistic_skips_candidates(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="probabilistic")
        protocol.prepare()
        assert protocol.candidates is None
        assert protocol.fitted is not None

    def test_report_totals(self, codex_s):
        report = EvaluationProtocol(codex_s.graph, strategy="static").prepare()
        assert report.total_seconds == pytest.approx(
            report.fit_seconds + report.candidates_seconds + report.pools_seconds
        )


class TestEvaluate:
    def test_auto_prepares(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="random", num_samples=20)
        model = OracleModel(codex_s.graph, seed=0)
        result = protocol.evaluate(model)
        assert result.num_queries == 2 * len(codex_s.graph.test)

    def test_same_pools_give_identical_estimates(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="static", seed=5)
        model = OracleModel(codex_s.graph, seed=0)
        a = protocol.evaluate(model)
        b = protocol.evaluate(model)
        assert a.metrics.mrr == b.metrics.mrr

    def test_resample_changes_pools(self, codex_s):
        protocol = EvaluationProtocol(
            codex_s.graph, strategy="random", num_samples=30, seed=1
        )
        protocol.prepare()
        before = protocol.pools.pool(0, "tail").copy()
        protocol.resample(seed=99)
        after = protocol.pools.pool(0, "tail")
        assert not np.array_equal(before, after)

    def test_resample_before_prepare(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="random", num_samples=10)
        protocol.resample(seed=3)
        assert protocol.pools is not None

    def test_full_and_sampled_share_query_keys(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="static", seed=0)
        model = build_model(
            "distmult", codex_s.graph.num_entities, codex_s.graph.num_relations, dim=8
        )
        sampled = protocol.evaluate(model)
        full = protocol.evaluate_full(model)
        assert set(sampled.ranks) == set(full.ranks)

    def test_sampled_ranks_never_exceed_full(self, codex_s):
        """A pool is a subset of the full candidate list, so each sampled
        rank is a lower bound on the full filtered rank."""
        protocol = EvaluationProtocol(codex_s.graph, strategy="static", seed=0)
        model = OracleModel(codex_s.graph, skill=1.0, seed=2)
        sampled = protocol.evaluate(model)
        full = protocol.evaluate_full(model)
        for query, rank in sampled.ranks.items():
            assert rank <= full.ranks[query] + 1e-9

    def test_repr_mentions_strategy(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="static", num_samples=64)
        assert "static" in repr(protocol)
        assert "64" in repr(protocol)
