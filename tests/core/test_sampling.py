"""Negative pools: draw counts, strategy semantics, 2|R| accounting."""

import numpy as np
import pytest

from repro.core import build_pools, build_static_candidates, resolve_sample_size
from repro.kg.graph import HEAD, TAIL
from repro.recommenders import build_recommender


class TestResolveSampleSize:
    def test_exactly_one_spec_required(self):
        with pytest.raises(ValueError):
            resolve_sample_size(100)
        with pytest.raises(ValueError):
            resolve_sample_size(100, num_samples=10, sample_fraction=0.1)

    def test_count_capped_at_vocabulary(self):
        assert resolve_sample_size(100, num_samples=500) == 100

    def test_fraction_rounds(self):
        assert resolve_sample_size(100, sample_fraction=0.25) == 25

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            resolve_sample_size(100, sample_fraction=0.0)
        with pytest.raises(ValueError):
            resolve_sample_size(100, sample_fraction=1.5)

    def test_count_bounds(self):
        with pytest.raises(ValueError):
            resolve_sample_size(100, num_samples=0)


@pytest.fixture(scope="module")
def prepared(codex_s_module):
    graph = codex_s_module.graph
    fitted = build_recommender("l-wd").fit(graph)
    candidates = build_static_candidates(fitted, graph)
    return graph, fitted, candidates


@pytest.fixture(scope="module")
def codex_s_module():
    from repro.datasets import load

    return load("codex-s-lite")


class TestBuildPools:
    def test_one_pool_per_relation_side(self, prepared, rng):
        graph, fitted, candidates = prepared
        pools = build_pools(graph, "random", rng=rng, num_samples=30)
        assert len(pools.pools[HEAD]) == graph.num_relations
        assert len(pools.pools[TAIL]) == graph.num_relations
        assert pools.total_sampled() == 2 * graph.num_relations * 30

    def test_random_pools_have_exact_size(self, prepared, rng):
        graph, _, _ = prepared
        pools = build_pools(graph, "random", rng=rng, num_samples=25)
        for side in (HEAD, TAIL):
            for relation in range(graph.num_relations):
                pool = pools.pool(relation, side)
                assert pool.size == 25
                assert np.all(np.diff(pool) > 0)  # sorted, no replacement

    def test_static_pools_capped_by_set_size(self, prepared, rng):
        graph, _, candidates = prepared
        pools = build_pools(
            graph, "static", rng=rng, num_samples=10_000, candidates=candidates
        )
        for side in (HEAD, TAIL):
            for relation in range(graph.num_relations):
                assert pools.pool(relation, side).size == candidates.set_size(relation, side)

    def test_static_pools_subset_of_candidates(self, prepared, rng):
        graph, _, candidates = prepared
        pools = build_pools(graph, "static", rng=rng, num_samples=20, candidates=candidates)
        for side in (HEAD, TAIL):
            for relation in range(graph.num_relations):
                pool = set(pools.pool(relation, side).tolist())
                assert pool <= set(candidates.candidates(relation, side).tolist())

    def test_probabilistic_pools_subset_of_support(self, prepared, rng):
        graph, fitted, _ = prepared
        pools = build_pools(graph, "probabilistic", rng=rng, num_samples=20, fitted=fitted)
        for relation in range(graph.num_relations):
            support = set(fitted.column_support(relation, TAIL).tolist())
            pool = set(pools.pool(relation, TAIL).tolist())
            # Support smaller than n_s falls back to uniform; otherwise subset.
            if len(support) >= 20:
                assert pool <= support

    def test_probabilistic_prefers_high_scores(self, prepared):
        """High-score entities appear in far more pools than low-score ones."""
        graph, fitted, _ = prepared
        hits = np.zeros(graph.num_entities)
        for seed in range(30):
            pools = build_pools(
                graph,
                "probabilistic",
                rng=np.random.default_rng(seed),
                num_samples=15,
                fitted=fitted,
            )
            for entity in pools.pool(0, TAIL):
                hits[entity] += 1
        probs = fitted.column_probabilities(0, TAIL)
        top = np.argsort(probs)[-5:]
        bottom = np.flatnonzero(probs == 0)
        if bottom.size:
            assert hits[top].mean() > hits[bottom].mean()

    def test_strategy_validation(self, prepared, rng):
        graph, fitted, candidates = prepared
        with pytest.raises(KeyError):
            build_pools(graph, "stratified", rng=rng, num_samples=5)
        with pytest.raises(ValueError, match="recommender"):
            build_pools(graph, "probabilistic", rng=rng, num_samples=5)
        with pytest.raises(ValueError, match="candidate"):
            build_pools(graph, "static", rng=rng, num_samples=5)

    def test_deterministic_under_seed(self, prepared):
        graph, fitted, candidates = prepared
        a = build_pools(graph, "random", rng=np.random.default_rng(9), num_samples=12)
        b = build_pools(graph, "random", rng=np.random.default_rng(9), num_samples=12)
        for side in (HEAD, TAIL):
            for relation in range(graph.num_relations):
                np.testing.assert_array_equal(
                    a.pool(relation, side), b.pool(relation, side)
                )
