"""Protocol with typed recommenders and non-default metric sets."""

import pytest

from repro.core import EvaluationProtocol
from repro.models import OracleModel


class TestTypedProtocol:
    @pytest.mark.parametrize("name", ["dbh-t", "ontosim", "l-wd-t"])
    def test_typed_recommenders_work_with_types(self, codex_s, name):
        protocol = EvaluationProtocol(
            codex_s.graph,
            recommender=name,
            strategy="static",
            num_samples=30,
            types=codex_s.types,
        )
        model = OracleModel(codex_s.graph, seed=0)
        result = protocol.evaluate(model)
        assert result.num_queries == 2 * len(codex_s.graph.test)

    def test_typed_recommender_without_types_fails_at_prepare(self, codex_s):
        protocol = EvaluationProtocol(
            codex_s.graph, recommender="dbh-t", strategy="static"
        )
        with pytest.raises(ValueError, match="types"):
            protocol.prepare()

    def test_custom_hits_levels(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="random", num_samples=30)
        model = OracleModel(codex_s.graph, seed=0)
        result = protocol.evaluate(model, hits_at=(1, 5, 50))
        assert set(result.metrics.hits.keys()) == {1, 5, 50}
        assert result.metrics.hits_at(5) <= result.metrics.hits_at(50)

    def test_valid_split_evaluation(self, codex_s):
        protocol = EvaluationProtocol(codex_s.graph, strategy="random", num_samples=30)
        model = OracleModel(codex_s.graph, seed=0)
        result = protocol.evaluate(model, split="valid")
        assert result.num_queries == 2 * len(codex_s.graph.valid)

    def test_probabilistic_with_pie(self, codex_s):
        from repro.recommenders import PIE

        protocol = EvaluationProtocol(
            codex_s.graph,
            recommender=PIE(epochs=2, hidden_dim=8),
            strategy="probabilistic",
            num_samples=25,
        )
        model = OracleModel(codex_s.graph, seed=0)
        result = protocol.evaluate(model)
        assert 0.0 <= result.metrics.mrr <= 1.0
