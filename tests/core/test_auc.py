"""AUC estimation over hard negatives (the §7 extension)."""

import numpy as np
import pytest

from repro.core import build_pools, corrupt_with_pools, estimate_auc
from repro.models import OracleModel, RandomModel
from repro.recommenders import build_recommender


@pytest.fixture(scope="module")
def setup(codex_s_module):
    graph = codex_s_module.graph
    fitted = build_recommender("l-wd").fit(graph)
    pools = build_pools(
        graph,
        "probabilistic",
        rng=np.random.default_rng(0),
        sample_fraction=0.2,
        fitted=fitted,
    )
    return graph, pools


@pytest.fixture(scope="module")
def codex_s_module():
    from repro.datasets import load

    return load("codex-s-lite")


class TestCorruption:
    def test_exactly_one_end_changed(self, setup, rng):
        graph, pools = setup
        triples = graph.test.array
        corrupted = corrupt_with_pools(triples, graph, pools, rng)
        changed_head = corrupted[:, 0] != triples[:, 0]
        changed_tail = corrupted[:, 2] != triples[:, 2]
        assert np.all(changed_head ^ changed_tail)
        np.testing.assert_array_equal(corrupted[:, 1], triples[:, 1])

    def test_avoids_known_true_answers(self, setup, rng):
        graph, pools = setup
        corrupted = corrupt_with_pools(graph.test.array, graph, pools, rng)
        collisions = 0
        for h, r, t in corrupted:
            if t in graph.true_answers(int(h), int(r), "tail"):
                collisions += 1
        # Retried corruption leaves at most stragglers.
        assert collisions <= 2

    def test_uniform_when_pools_none(self, setup, rng):
        graph, _ = setup
        corrupted = corrupt_with_pools(graph.test.array, graph, None, rng)
        assert corrupted.shape == graph.test.array.shape


class TestEstimateAUC:
    def test_good_model_scores_high(self, setup):
        graph, pools = setup
        model = OracleModel(graph, skill=3.0, seed=0)
        estimate = estimate_auc(model, graph, pools=None, seed=1)
        assert estimate.roc_auc > 0.9
        assert estimate.average_precision > 0.9

    def test_random_model_near_chance(self, setup):
        graph, _ = setup
        model = RandomModel(graph.num_entities, graph.num_relations, seed=0)
        estimate = estimate_auc(model, graph, pools=None, seed=1)
        assert 0.35 < estimate.roc_auc < 0.65

    def test_hard_negatives_are_harder(self, setup):
        """The §7 claim: AUC against guided negatives < AUC against random."""
        graph, pools = setup
        model = OracleModel(graph, skill=1.0, seed=0)
        easy = estimate_auc(model, graph, pools=None, seed=2)
        hard = estimate_auc(model, graph, pools=pools, seed=2)
        assert hard.roc_auc < easy.roc_auc
        assert hard.strategy == "probabilistic"

    def test_subsampling(self, setup):
        graph, pools = setup
        model = OracleModel(graph, skill=1.0, seed=0)
        estimate = estimate_auc(model, graph, num_triples=30, seed=3)
        assert estimate.num_positive == 30
        assert estimate.num_negative == 30

    def test_empty_split_rejected(self, tiny_graph):
        from repro.kg import KnowledgeGraph

        bare = KnowledgeGraph(
            entities=tiny_graph.entities,
            relations=tiny_graph.relations,
            train=tiny_graph.train,
        )
        model = RandomModel(bare.num_entities, bare.num_relations)
        with pytest.raises(ValueError):
            estimate_auc(model, bare, split="test")

    def test_as_row(self, setup):
        graph, _ = setup
        model = OracleModel(graph, skill=1.0, seed=0)
        row = estimate_auc(model, graph, num_triples=20).as_row()
        assert set(row) == {"Negatives", "ROC-AUC", "AUC-PR", "n+", "n-"}
