"""Sampling-complexity accounting (Table 3)."""

import pytest

from repro.core import sampling_complexity
from repro.core.complexity import distinct_test_pairs, distinct_test_relations


class TestCounts:
    def test_pairs_counted_per_side(self, tiny_graph):
        # test split: one triple (0, likes, 3) -> 1 (h,r) + 1 (r,t) pair.
        assert distinct_test_pairs(tiny_graph.test) == 2

    def test_relations_in_split(self, tiny_graph):
        assert distinct_test_relations(tiny_graph.test) == 1
        assert distinct_test_relations(tiny_graph.train) == 3

    def test_empty_split(self, tiny_graph):
        from repro.kg import TripleSet

        assert distinct_test_relations(TripleSet([])) == 0


class TestComplexity:
    def test_sample_counts(self, codex_s):
        graph = codex_s.graph
        complexity = sampling_complexity(graph, sample_fraction=0.025)
        per_pool = round(0.025 * graph.num_entities)
        assert complexity.samples_per_pool == per_pool
        assert complexity.entity_aware_samples == complexity.test_pairs * per_pool
        assert (
            complexity.relational_samples
            == 2 * complexity.test_relations * per_pool
        )

    def test_relational_is_cheaper(self, codex_s):
        """Table 3's conclusion: at least an order of magnitude on real shapes."""
        complexity = sampling_complexity(codex_s.graph, sample_fraction=0.025)
        assert complexity.reduction_factor > 2.0

    def test_reduction_independent_of_fraction(self, codex_s):
        a = sampling_complexity(codex_s.graph, sample_fraction=0.01)
        b = sampling_complexity(codex_s.graph, sample_fraction=0.2)
        assert a.reduction_factor == pytest.approx(b.reduction_factor, rel=0.05)

    def test_fraction_validation(self, codex_s):
        with pytest.raises(ValueError):
            sampling_complexity(codex_s.graph, sample_fraction=0.0)

    def test_as_row_columns(self, codex_s):
        row = sampling_complexity(codex_s.graph).as_row()
        assert "Sampling reduction" in row
        assert row["Dataset"] == codex_s.graph.name
