"""Equation 1 and Theorem 1: the hypergeometric theory, property-tested.

These tests tie the implementation to the paper's analysis:

* ``expected_outranking`` matches the hypergeometric mean and vanishes as
  the sample shrinks (Equation 1 — why small uniform samples flatter);
* ``expected_gain`` is non-negative everywhere (Theorem 1: sampling inside
  the range set never hurts) and matches a Monte-Carlo simulation of the
  two sampling schemes;
* the empirical estimator really is optimistic: on a fixed model the
  sampled MRR stochastically dominates the true MRR.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    build_pools,
    evaluate_full,
    evaluate_sampled,
    expected_gain,
    expected_outranking,
    optimism_curve,
)
from repro.models import OracleModel


class TestExpectedOutranking:
    def test_matches_hypergeometric_mean(self):
        assert expected_outranking(10, 100, 20) == pytest.approx(2.0)

    def test_limit_at_zero_samples(self):
        """Equation 1: lim_{n_s -> 0} E[X_u] = 0."""
        assert expected_outranking(50, 1000, 0) == 0.0

    def test_full_sample_recovers_true_count(self):
        assert expected_outranking(37, 500, 500) == pytest.approx(37.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_outranking(11, 10, 5)
        with pytest.raises(ValueError):
            expected_outranking(2, 10, 11)

    @settings(max_examples=60)
    @given(
        num_entities=st.integers(1, 10_000),
        better_frac=st.floats(0, 1),
        sample_frac=st.floats(0, 1),
    )
    def test_property_monotone_in_sample_size(self, num_entities, better_frac, sample_frac):
        num_better = int(better_frac * num_entities)
        n_small = int(sample_frac * num_entities * 0.5)
        n_large = int(sample_frac * num_entities)
        assert expected_outranking(num_better, num_entities, n_small) <= (
            expected_outranking(num_better, num_entities, n_large) + 1e-12
        )

    def test_curve_is_linear(self):
        sizes = np.array([0, 10, 20, 40])
        curve = optimism_curve(5, 100, sizes)
        np.testing.assert_allclose(curve, [0.0, 0.5, 1.0, 2.0])


class TestExpectedGain:
    @settings(max_examples=120)
    @given(data=st.data())
    def test_property_theorem1_nonnegative(self, data):
        """E[Y] >= 0 for every admissible configuration."""
        num_entities = data.draw(st.integers(2, 5000))
        range_size = data.draw(st.integers(1, num_entities))
        num_better = data.draw(st.integers(0, range_size))
        num_samples = data.draw(st.integers(1, num_entities))
        gain = expected_gain(num_better, num_entities, range_size, num_samples)
        assert gain >= -1e-12

    def test_zero_when_range_is_everything(self):
        """No gain possible when the range set equals the entity set and
        the sample is full."""
        assert expected_gain(5, 100, 100, 100) == pytest.approx(0.0)

    def test_case_boundary_continuity(self):
        """The two closed forms agree at n_s = |RS_r|."""
        below = expected_gain(4, 200, 50, 49)
        at = expected_gain(4, 200, 50, 50)
        above = expected_gain(4, 200, 50, 51)
        assert below <= at + 1e-9
        assert abs(at - expected_gain(4, 200, 50, 50)) < 1e-12
        assert above <= at + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_gain(10, 100, 5, 10)  # better > range
        with pytest.raises(ValueError):
            expected_gain(1, 100, 50, 0)  # no samples

    def test_matches_monte_carlo(self):
        """Simulate both sampling schemes and compare E[Y] empirically."""
        rng = np.random.default_rng(0)
        num_entities, range_size, num_better, num_samples = 200, 40, 8, 30
        analytic = expected_gain(num_better, num_entities, range_size, num_samples)
        gains = []
        for _ in range(3000):
            uniform_draw = rng.choice(num_entities, size=num_samples, replace=False)
            x_uniform = int((uniform_draw < num_better).sum())
            in_range = rng.choice(range_size, size=min(num_samples, range_size), replace=False)
            x_range = int((in_range < num_better).sum())
            gains.append(x_range - x_uniform)
        assert np.mean(gains) == pytest.approx(analytic, abs=0.15)


class TestEmpiricalOptimism:
    def test_random_sampling_overestimates_mrr(self, codex_s):
        """The paper's headline: uniform sampled MRR >> true MRR."""
        graph = codex_s.graph
        model = OracleModel(graph, skill=1.5, seed=0)
        true_result = evaluate_full(model, graph, split="test")
        pools = build_pools(
            graph, "random", rng=np.random.default_rng(1), sample_fraction=0.1
        )
        sampled = evaluate_sampled(model, graph, pools, split="test")
        assert sampled.metrics.mrr > true_result.metrics.mrr

    def test_optimism_grows_as_sample_shrinks(self, codex_s):
        graph = codex_s.graph
        model = OracleModel(graph, skill=1.5, seed=0)
        estimates = []
        for fraction in (0.05, 0.2, 0.8):
            pools = build_pools(
                graph, "random", rng=np.random.default_rng(2), sample_fraction=fraction
            )
            estimates.append(
                evaluate_sampled(model, graph, pools, split="test").metrics.mrr
            )
        assert estimates[0] >= estimates[1] >= estimates[2]

    def test_full_sample_recovers_truth(self, codex_s):
        """Sampling 100% of entities must reproduce the full metrics."""
        graph = codex_s.graph
        model = OracleModel(graph, skill=1.5, seed=0)
        true_result = evaluate_full(model, graph, split="test")
        pools = build_pools(
            graph, "random", rng=np.random.default_rng(3), sample_fraction=1.0
        )
        sampled = evaluate_sampled(model, graph, pools, split="test")
        assert sampled.metrics.mrr == pytest.approx(true_result.metrics.mrr, abs=1e-12)
        assert sampled.metrics.hits_at(10) == pytest.approx(
            true_result.metrics.hits_at(10), abs=1e-12
        )

    def test_guided_sampling_beats_random(self, codex_s):
        """Static and probabilistic pools estimate closer than random."""
        from repro.core import build_static_candidates
        from repro.recommenders import build_recommender

        graph = codex_s.graph
        model = OracleModel(graph, skill=1.5, seed=0)
        truth = evaluate_full(model, graph, split="test").metrics.mrr
        fitted = build_recommender("l-wd").fit(graph)
        candidates = build_static_candidates(fitted, graph)
        errors = {}
        for strategy in ("random", "probabilistic", "static"):
            pools = build_pools(
                graph,
                strategy,
                rng=np.random.default_rng(4),
                sample_fraction=0.1,
                fitted=fitted,
                candidates=candidates,
            )
            estimate = evaluate_sampled(model, graph, pools, split="test").metrics.mrr
            errors[strategy] = abs(estimate - truth)
        assert errors["static"] < errors["random"]
        assert errors["probabilistic"] < errors["random"]
