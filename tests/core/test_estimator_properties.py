"""Property-based invariants of the sampled estimator.

The two structural facts everything else rests on:

* **pool monotonicity** — adding candidates to a pool can only push the
  estimated rank up (toward the truth), never down;
* **subset bound** — any pool's rank is a lower bound on the full rank,
  and equals it when the pool is the full entity set.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate_full, evaluate_sampled, filtered_rank
from repro.core.sampling import NegativePools
from repro.kg.graph import HEAD, TAIL
from repro.models import build_model


def _pools_from(graph, mapping, strategy="static"):
    pools = {HEAD: {}, TAIL: {}}
    for side in (HEAD, TAIL):
        for relation in range(graph.num_relations):
            pools[side][relation] = np.sort(mapping(relation, side))
    return NegativePools(
        strategy=strategy,
        pools=pools,
        num_entities=graph.num_entities,
        sample_size=graph.num_entities,
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), size_small=st.integers(1, 30))
def test_property_pool_monotonicity(codex_s, seed, size_small):
    """rank(pool A) <= rank(pool A ∪ B) for every query."""
    graph = codex_s.graph
    model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=1)
    rng = np.random.default_rng(seed)
    base = {
        (r, side): rng.choice(graph.num_entities, size=size_small, replace=False)
        for r in range(graph.num_relations)
        for side in (HEAD, TAIL)
    }
    extra = {
        key: np.union1d(pool, rng.choice(graph.num_entities, size=20, replace=False))
        for key, pool in base.items()
    }
    small = _pools_from(graph, lambda r, s: base[(r, s)])
    large = _pools_from(graph, lambda r, s: extra[(r, s)])
    ranks_small = evaluate_sampled(model, graph, small, split="test").ranks
    ranks_large = evaluate_sampled(model, graph, large, split="test").ranks
    for query, rank in ranks_small.items():
        assert rank <= ranks_large[query] + 1e-9, query


def test_full_pool_equals_full_evaluation(codex_s):
    graph = codex_s.graph
    model = build_model("complex", graph.num_entities, graph.num_relations, dim=8, seed=2)
    everything = _pools_from(graph, lambda r, s: np.arange(graph.num_entities))
    sampled = evaluate_sampled(model, graph, everything, split="test")
    full = evaluate_full(model, graph, split="test")
    for query, rank in sampled.ranks.items():
        assert rank == pytest.approx(full.ranks[query]), query


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_filtered_rank_bounds(seed):
    """1 <= filtered rank <= |candidates| + 1 regardless of inputs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 50))
    scores = rng.standard_normal(n)
    truth = int(rng.integers(n))
    known = rng.choice(n, size=int(rng.integers(1, n)), replace=False)
    known = np.unique(np.append(known, truth))
    rank = filtered_rank(scores, truth, known)
    assert 1.0 <= rank <= n - known.size + 1 + 1e-9
