"""Static candidate sets: threshold search, CR/RR evaluation, monotonicity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_static_candidates, choose_threshold, evaluate_tradeoff
from repro.kg.graph import HEAD, TAIL
from repro.recommenders import build_recommender


class TestChooseThreshold:
    def test_zero_column_yields_empty_set(self):
        threshold, point = choose_threshold(np.zeros(10), np.empty(0, dtype=np.int64))
        assert threshold == np.inf
        assert point.reduction_rate == 1.0

    def test_clean_separation_picks_the_gap(self):
        """Truths at 1.0, junk at 0.01: the optimum keeps exactly the truths."""
        scores = np.full(100, 0.01)
        truths = np.arange(5)
        scores[truths] = 1.0
        threshold, point = choose_threshold(scores, truths)
        assert 0.01 < threshold <= 1.0
        assert point.candidate_recall == 1.0
        assert point.reduction_rate == pytest.approx(0.95)

    def test_trade_off_sacrifices_tail_of_truths(self):
        """A straggler truth tied with a big junk mass is worth dropping:
        keeping it would mean keeping 500 junk entities too."""
        scores = np.full(1000, 0.0)
        scores[:49] = 1.0  # 49 clean truths
        scores[400:900] = 0.001  # junk plateau
        straggler = 899  # one truth hiding inside the plateau
        truths = np.append(np.arange(49), straggler)
        threshold, point = choose_threshold(scores, truths)
        assert threshold > 0.001
        assert point.candidate_recall == pytest.approx(49 / 50)
        assert point.reduction_rate > 0.9

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_property_kept_set_shrinks_with_threshold(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(50) * (rng.random(50) > 0.3)
        thresholds = np.unique(scores[scores > 0])
        sizes = [(scores >= t).sum() for t in thresholds]
        assert sizes == sorted(sizes, reverse=True)


class TestBuildStaticCandidates:
    @pytest.fixture(scope="class")
    def sets(self, codex_s):
        fitted = build_recommender("l-wd").fit(codex_s.graph)
        return build_static_candidates(fitted, codex_s.graph)

    def test_every_column_present(self, sets, codex_s):
        graph = codex_s.graph
        for side in (HEAD, TAIL):
            for relation in range(graph.num_relations):
                assert sets.candidates(relation, side) is not None

    def test_candidates_sorted_unique(self, sets, codex_s):
        for side in (HEAD, TAIL):
            for relation in range(codex_s.graph.num_relations):
                pool = sets.candidates(relation, side)
                assert np.all(np.diff(pool) > 0)

    def test_observed_entities_always_included(self, sets, codex_s):
        graph = codex_s.graph
        for side in (HEAD, TAIL):
            for relation in range(graph.num_relations):
                observed = set(graph.observed(relation, side).tolist())
                pool = set(sets.candidates(relation, side).tolist())
                assert observed <= pool

    def test_exclude_observed_option(self, codex_s):
        fitted = build_recommender("l-wd").fit(codex_s.graph)
        bare = build_static_candidates(fitted, codex_s.graph, include_observed=False)
        merged = build_static_candidates(fitted, codex_s.graph, include_observed=True)
        total_bare = sum(
            bare.set_size(r, s) for s in (HEAD, TAIL) for r in range(codex_s.graph.num_relations)
        )
        total_merged = sum(
            merged.set_size(r, s) for s in (HEAD, TAIL) for r in range(codex_s.graph.num_relations)
        )
        assert total_bare <= total_merged

    def test_contains(self, sets):
        pool = sets.candidates(0, TAIL)
        assert sets.contains(int(pool[0]), 0, TAIL)
        outside = set(range(sets.num_entities)) - set(pool.tolist())
        if outside:
            assert not sets.contains(next(iter(outside)), 0, TAIL)

    def test_mean_reduction_rate_positive(self, sets):
        assert 0.0 < sets.mean_reduction_rate() < 1.0


class TestEvaluateTradeoff:
    def test_report_fields(self, codex_s):
        fitted = build_recommender("l-wd").fit(codex_s.graph)
        sets = build_static_candidates(fitted, codex_s.graph)
        report = evaluate_tradeoff(sets, codex_s.graph, fit_seconds=fitted.fit_seconds)
        assert 0.0 <= report.candidate_recall_test <= 1.0
        assert 0.0 <= report.candidate_recall_unseen <= 1.0
        assert 0.0 <= report.reduction_rate <= 1.0
        assert report.num_test_pairs > report.num_unseen_pairs >= 0

    def test_pt_has_zero_unseen_recall(self, codex_s):
        """The paper's structural result for PT (Table 5)."""
        fitted = build_recommender("pt").fit(codex_s.graph)
        sets = build_static_candidates(fitted, codex_s.graph)
        report = evaluate_tradeoff(sets, codex_s.graph)
        assert report.candidate_recall_unseen == 0.0

    def test_ontosim_recall_beats_pt(self, codex_s):
        pt_sets = build_static_candidates(
            build_recommender("pt").fit(codex_s.graph), codex_s.graph
        )
        onto_sets = build_static_candidates(
            build_recommender("ontosim").fit(codex_s.graph, codex_s.types), codex_s.graph
        )
        pt_report = evaluate_tradeoff(pt_sets, codex_s.graph)
        onto_report = evaluate_tradeoff(onto_sets, codex_s.graph)
        assert onto_report.candidate_recall_test >= pt_report.candidate_recall_test
        # ... at the price of a worse reduction rate.
        assert onto_report.reduction_rate <= pt_report.reduction_rate

    def test_full_entity_sets_give_perfect_recall(self, codex_s):
        """Degenerate candidate sets containing everything: CR = 1, RR = 0."""
        from repro.core.candidates import CandidateSets

        graph = codex_s.graph
        everything = np.arange(graph.num_entities)
        sets = CandidateSets(
            sets={
                side: {r: everything for r in range(graph.num_relations)}
                for side in (HEAD, TAIL)
            },
            thresholds={side: {} for side in (HEAD, TAIL)},
            num_entities=graph.num_entities,
            recommender_name="all",
        )
        report = evaluate_tradeoff(sets, graph)
        assert report.candidate_recall_test == 1.0
        assert report.candidate_recall_unseen == 1.0
        assert report.reduction_rate == 0.0
