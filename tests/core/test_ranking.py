"""Full filtered ranking: hand-checked ranks, filtering semantics, batching."""

import numpy as np
import pytest

from repro.core import evaluate_full, filtered_rank
from repro.core.ranking import chunk_filtered_ranks, grouped_queries, query_chunks, split_triples
from repro.kg.graph import HEAD, TAIL
from repro.models import RandomModel, build_model


class TestFilteredRank:
    def test_best_rank_is_one(self):
        scores = np.array([0.1, 0.9, 0.2, 0.3])
        assert filtered_rank(scores, truth=1, known_answers=np.array([1])) == 1.0

    def test_counts_better_candidates(self):
        scores = np.array([0.5, 0.1, 0.9, 0.8])
        # truth = 1 (0.1): three candidates score higher.
        assert filtered_rank(scores, truth=1, known_answers=np.array([1])) == 4.0

    def test_known_answers_are_filtered(self):
        scores = np.array([0.5, 0.1, 0.9, 0.8])
        # 2 and 3 are known true answers: only 0 outranks the truth.
        assert filtered_rank(scores, truth=1, known_answers=np.array([1, 2, 3])) == 2.0

    def test_ties_count_half(self):
        scores = np.array([0.5, 0.5, 0.5])
        assert filtered_rank(scores, truth=0, known_answers=np.array([0])) == 2.0

    def test_truth_never_competes_with_itself(self):
        scores = np.array([0.5])
        assert filtered_rank(scores, truth=0, known_answers=np.empty(0, dtype=int)) == 1.0


class TestChunkFilteredRanks:
    def test_matches_scalar_reference_full(self, rng):
        scores = rng.standard_normal((5, 20))
        truths = rng.integers(20, size=5)
        true_scores = scores[np.arange(5), truths]
        knowns = [
            np.unique(np.append(rng.integers(20, size=3), truths[i]))
            for i in range(5)
        ]
        ranks = chunk_filtered_ranks(scores, true_scores, knowns)
        for i in range(5):
            expected = filtered_rank(scores[i], int(truths[i]), knowns[i])
            assert ranks[i] == pytest.approx(expected)

    def test_pool_mode_ignores_out_of_pool_exclusions(self, rng):
        pool = np.array([2, 5, 9, 14])
        scores = rng.standard_normal((2, 4))
        true_scores = np.array([10.0, -10.0])  # truth not in pool
        knowns = [np.array([5, 100]), np.array([3])]  # 100 and 3 not in pool
        ranks = chunk_filtered_ranks(scores, true_scores, knowns, pool=pool)
        # Query 0: truth outranks everything -> rank 1.
        assert ranks[0] == 1.0
        # Query 1: all four pool scores beat -10 -> rank 5.
        assert ranks[1] == 5.0

    def test_empty_knowns(self, rng):
        scores = np.asarray([[1.0, 2.0, 3.0]])
        ranks = chunk_filtered_ranks(scores, np.array([2.5]), [np.empty(0, dtype=np.int64)])
        assert ranks[0] == 2.0


class TestGrouping:
    def test_groups_cover_both_sides(self, tiny_graph):
        groups = grouped_queries(tiny_graph, "test")
        assert (0, HEAD) in groups and (0, TAIL) in groups
        assert len(groups[(0, TAIL)]) == 1
        anchor, truth, h, t = groups[(0, TAIL)][0]
        assert (anchor, truth, h, t) == (0, 3, 0, 3)

    def test_single_side(self, tiny_graph):
        groups = grouped_queries(tiny_graph, "test", sides=(TAIL,))
        assert all(side == TAIL for (_, side) in groups)

    def test_chunks_partition(self):
        slices = list(query_chunks(10, chunk_size=4))
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(10))

    def test_unknown_split_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            split_triples(tiny_graph, "dev")


class TestEvaluateFull:
    def test_perfect_model_gets_mrr_one(self, tiny_graph):
        """A model that scores exactly the known answers highest."""

        class PerfectModel(RandomModel):
            def __init__(self, graph):
                self.graph = graph
                super().__init__(graph.num_entities, graph.num_relations, seed=0)

            def score_all(self, anchor, relation, side):
                scores = np.zeros(self.num_entities)
                scores[self.graph.true_answers(anchor, relation, side)] = 1.0
                return scores

        result = evaluate_full(PerfectModel(tiny_graph), tiny_graph, split="test")
        assert result.metrics.mrr == 1.0
        assert result.metrics.hits_at(1) == 1.0

    def test_two_queries_per_triple(self, tiny_graph):
        model = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations)
        result = evaluate_full(model, tiny_graph, split="test")
        assert result.num_queries == 2 * len(tiny_graph.test)

    def test_num_scored_counts_full_vocabulary(self, tiny_graph):
        model = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations)
        result = evaluate_full(model, tiny_graph, split="test")
        assert result.num_scored == 2 * len(tiny_graph.test) * tiny_graph.num_entities

    def test_valid_split_supported(self, tiny_graph):
        model = RandomModel(tiny_graph.num_entities, tiny_graph.num_relations)
        result = evaluate_full(model, tiny_graph, split="valid")
        assert result.num_queries == 2

    def test_batched_equals_reference_on_real_model(self, codex_s):
        graph = codex_s.graph
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=1)
        result = evaluate_full(model, graph, split="test")
        for (h, r, t, side), rank in list(result.ranks.items())[:40]:
            anchor, truth = (t, h) if side == HEAD else (h, t)
            reference = filtered_rank(
                model.score_all(anchor, r, side), truth, graph.true_answers(anchor, r, side)
            )
            assert rank == pytest.approx(reference)

    def test_filtering_lowers_no_rank(self, codex_s):
        """Filtered ranks are never worse than raw ranks."""
        graph = codex_s.graph
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8, seed=1)
        result = evaluate_full(model, graph, split="test")
        for (h, r, t, side), rank in list(result.ranks.items())[:40]:
            anchor, truth = (t, h) if side == HEAD else (h, t)
            raw = filtered_rank(
                model.score_all(anchor, r, side), truth, np.array([truth])
            )
            assert rank <= raw + 1e-9
