"""Easy-negative mining (Table 2) and the false-negative audit (Table 10)."""

import numpy as np
import pytest

from repro.core import EasyNegativeClassifier, mine_easy_negatives
from repro.recommenders import build_recommender


@pytest.fixture(scope="module")
def report(codex_s_module):
    fitted = build_recommender("l-wd").fit(codex_s_module.graph)
    return fitted, mine_easy_negatives(fitted, codex_s_module.graph)


@pytest.fixture(scope="module")
def codex_s_module():
    from repro.datasets import load

    return load("codex-s-lite")


class TestMining:
    def test_counts_add_up(self, report, codex_s_module):
        fitted, result = report
        graph = codex_s_module.graph
        assert result.total_slots == graph.num_entities * 2 * graph.num_relations
        assert result.easy_negatives == result.total_slots - fitted.total_nonzero()

    def test_substantial_easy_mass(self, report):
        """The paper's Table 2: a large share of slots is ruled out."""
        _, result = report
        assert result.easy_fraction > 0.3

    def test_false_negatives_are_rare(self, report):
        """... and almost none of them are real triples (Table 2 bottom row)."""
        _, result = report
        assert result.num_false < 20
        assert result.num_false / max(result.easy_negatives, 1) < 1e-3

    def test_false_negatives_only_outside_train(self, report):
        """L-WD scores every training participant > 0 by construction, so
        every false easy negative comes from valid/test."""
        _, result = report
        assert all(fn.split in ("valid", "test") for fn in result.false_easy_negatives)

    def test_false_negatives_are_the_injected_noise(self, report, codex_s_module):
        """The audit recovers signature-violating (noise) triples."""
        _, result = report
        dataset = codex_s_module
        for false_negative in result.false_easy_negatives:
            schema = dataset.schemas[false_negative.relation]
            admits = schema.admits(
                dataset.types.types_of(false_negative.head),
                dataset.types.types_of(false_negative.tail),
            )
            assert not admits

    def test_labelled_rows(self, report, codex_s_module):
        _, result = report
        if result.false_easy_negatives:
            head, relation, tail = result.false_easy_negatives[0].labelled(
                codex_s_module.graph
            )
            assert isinstance(head, str) and isinstance(relation, str)

    def test_as_row_columns(self, report):
        _, result = report
        row = result.as_row()
        assert set(row) == {
            "Dataset",
            "Easy negatives (%)",
            "Easy negatives",
            "False easy negatives",
        }


class TestClassifier:
    def test_accepts_training_triples(self, report, codex_s_module):
        fitted, _ = report
        classifier = EasyNegativeClassifier(fitted)
        triples = codex_s_module.graph.train.array[:50]
        assert classifier.classify_batch(triples).all()

    def test_rejects_zero_scored_triples(self, report, codex_s_module):
        fitted, _ = report
        graph = codex_s_module.graph
        classifier = EasyNegativeClassifier(fitted)
        mask = fitted.zero_mask(0, "head")
        dead_heads = np.flatnonzero(mask)
        if dead_heads.size == 0:
            pytest.skip("no easy negatives for relation 0")
        assert not classifier.classify(int(dead_heads[0]), 0, 0)

    def test_batch_shape_validation(self, report):
        fitted, _ = report
        classifier = EasyNegativeClassifier(fitted)
        with pytest.raises(ValueError):
            classifier.classify_batch(np.zeros((3, 2), dtype=np.int64))

    def test_classifier_separates_positives_from_random(self, report, codex_s_module):
        """Extension check: real triples pass far more often than random ones."""
        fitted, _ = report
        graph = codex_s_module.graph
        classifier = EasyNegativeClassifier(fitted)
        rng = np.random.default_rng(0)
        random_triples = np.stack(
            [
                rng.integers(graph.num_entities, size=300),
                rng.integers(graph.num_relations, size=300),
                rng.integers(graph.num_entities, size=300),
            ],
            axis=1,
        )
        positive_rate = classifier.classify_batch(graph.test.array).mean()
        random_rate = classifier.classify_batch(random_triples).mean()
        assert positive_rate > random_rate + 0.2
