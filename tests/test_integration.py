"""End-to-end integration: the full pipeline on real (synthetic) data.

These tests exercise the complete workflow a downstream user runs —
generate data, fit recommenders, train a model, evaluate fast and slow —
and assert the paper's qualitative claims hold on it.
"""

import numpy as np
import pytest

from repro.core import (
    EvaluationProtocol,
    evaluate_full,
    mine_easy_negatives,
)
from repro.datasets import load
from repro.kp import knowledge_persistence
from repro.metrics import mae, pearson
from repro.models import OracleModel, Trainer, TrainingConfig, build_model
from repro.recommenders import build_recommender


@pytest.fixture(scope="module")
def dataset():
    return load("codex-m-lite")


class TestTrainedModelPipeline:
    """Train a real model and check the estimators track it."""

    @pytest.fixture(scope="class")
    def trained(self, dataset):
        graph = dataset.graph
        model = build_model("complex", graph.num_entities, graph.num_relations, dim=24, seed=0)
        Trainer(TrainingConfig(epochs=6, lr=0.1, loss="softplus", seed=0)).fit(model, graph)
        return model

    def test_training_beats_chance(self, dataset, trained):
        result = evaluate_full(trained, dataset.graph, split="test")
        chance = 20 / dataset.graph.num_entities  # generous chance bound
        assert result.metrics.mrr > chance * 3

    def test_estimator_ordering_on_trained_model(self, dataset, trained):
        """|est - true| is worst for random, best for static/probabilistic."""
        graph = dataset.graph
        truth = evaluate_full(trained, graph, split="test").metrics.mrr
        errors = {}
        for strategy in ("random", "probabilistic", "static"):
            protocol = EvaluationProtocol(
                graph, strategy=strategy, sample_fraction=0.1, types=dataset.types, seed=11
            )
            estimate = protocol.evaluate(trained).metrics.mrr
            errors[strategy] = abs(estimate - truth)
        assert errors["random"] > errors["probabilistic"]
        assert errors["random"] > errors["static"]

    def test_sampled_evaluation_does_less_work(self, dataset, trained):
        """The scoring-work ratio is the robust speed claim at this scale;
        wall-clock on a ~10 ms evaluation is overhead-dominated (the
        paper's own small-dataset observation), so time only gets a loose
        regression guard."""
        graph = dataset.graph
        protocol = EvaluationProtocol(graph, strategy="static", sample_fraction=0.05, seed=0)
        protocol.prepare()
        sampled = protocol.evaluate(trained)
        full = protocol.evaluate_full(trained)
        assert sampled.num_scored < full.num_scored / 5
        assert sampled.seconds < full.seconds * 3


class TestEpochTracking:
    def test_estimates_correlate_across_epochs(self, dataset):
        """The per-epoch estimated MRR tracks the true MRR (Table 7 shape)."""
        graph = dataset.graph
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=16, seed=1)
        protocol = EvaluationProtocol(graph, strategy="static", sample_fraction=0.1, seed=3)
        protocol.prepare()
        true_series, est_series = [], []

        def track(epoch, current, history):
            true_series.append(evaluate_full(current, graph, split="valid").metrics.mrr)
            est_series.append(protocol.evaluate(current, split="valid").metrics.mrr)

        Trainer(TrainingConfig(epochs=8, lr=0.03, loss="softplus")).fit(
            model, graph, callbacks=[track]
        )
        assert pearson(est_series, true_series) > 0.8
        assert mae(est_series, true_series) < 0.15


class TestOracleSweep:
    def test_estimators_track_oracle_skill(self, dataset):
        """Across oracle skill levels, estimates rank the models correctly."""
        graph = dataset.graph
        protocol = EvaluationProtocol(
            graph, strategy="probabilistic", sample_fraction=0.1, seed=5
        )
        protocol.prepare()
        true_values, estimates = [], []
        for skill in (0.0, 1.0, 2.5):
            model = OracleModel(graph, skill=skill, seed=2)
            true_values.append(evaluate_full(model, graph, split="test").metrics.mrr)
            estimates.append(protocol.evaluate(model).metrics.mrr)
        assert true_values == sorted(true_values)
        assert estimates == sorted(estimates)


class TestEasyNegativePipeline:
    def test_easy_negatives_consistent_with_sampling(self, dataset):
        """Entities mined as easy negatives get zero probabilistic mass."""
        graph = dataset.graph
        fitted = build_recommender("l-wd").fit(graph)
        report = mine_easy_negatives(fitted, graph)
        assert report.easy_fraction > 0.2
        probs = fitted.column_probabilities(0, "tail")
        zero_mask = fitted.zero_mask(0, "tail")
        assert probs[zero_mask].sum() == pytest.approx(0.0)


class TestKPIntegration:
    def test_kp_tracks_skill_direction(self, dataset):
        graph = dataset.graph
        values = [
            knowledge_persistence(
                OracleModel(graph, skill=skill, seed=1), graph, split="valid",
                num_triples=150, seed=4,
            ).value
            for skill in (0.0, 3.0)
        ]
        assert values[1] != values[0]

    def test_kp_faster_than_full_eval(self, dataset):
        graph = dataset.graph
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=16)
        kp = knowledge_persistence(model, graph, split="valid", num_triples=150, seed=0)
        full = evaluate_full(model, graph, split="valid")
        assert kp.seconds < full.seconds


class TestReproducibility:
    def test_full_pipeline_deterministic(self):
        """Same seeds end to end -> identical metrics."""

        def run():
            data = load("codex-s-lite", use_cache=False)
            graph = data.graph
            model = build_model("transe", graph.num_entities, graph.num_relations, dim=8, seed=2)
            Trainer(TrainingConfig(epochs=2, seed=2)).fit(model, graph)
            protocol = EvaluationProtocol(graph, strategy="static", seed=2)
            return protocol.evaluate(model).metrics.mrr

        assert run() == run()
