"""CLI: every subcommand end-to-end through main(argv)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["easy-negatives", "--dataset", "fb15k"])

    def test_parser_lists_all_commands(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        }
        assert set(actions["command"].choices) == {
            "run",
            "datasets",
            "generate",
            "recommenders",
            "easy-negatives",
            "complexity",
            "analyze",
            "train",
            "evaluate",
            "serve",
            "ingest",
            "lint",
            "shard",
            "runs",
            "cache",
            "trace",
            "bench",
            "top",
        }


def _all_commands() -> list[str]:
    parser = build_parser()
    for action in parser._actions:
        if getattr(action, "choices", None) and action.dest == "command":
            return sorted(action.choices)
    raise AssertionError("no subcommands registered")


class TestHelpSmoke:
    """Every subcommand (and nested subcommand) parses --help, exit code 0."""

    @pytest.mark.parametrize("command", _all_commands())
    def test_command_help(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "path",
        [
            ("runs", "list"),
            ("runs", "show"),
            ("cache", "ls"),
            ("cache", "gc"),
            ("trace", "show"),
            ("trace", "export"),
            ("bench", "trend"),
            ("bench", "gate"),
        ],
    )
    def test_nested_command_help(self, path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*path, "--help"])
        assert excinfo.value.code == 0
        assert "usage:" in capsys.readouterr().out

    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for command in _all_commands():
            assert command in out


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "codex-s-lite" in out and "wikikg2-lite" in out
        assert "|E|" in out

    def test_generate_round_trips(self, tmp_path, capsys):
        assert main(["generate", "--dataset", "codex-s-lite", "--out", str(tmp_path / "kg")]) == 0
        assert (tmp_path / "kg" / "train.tsv").exists()
        assert (tmp_path / "kg" / "types.tsv").exists()
        from repro.kg.io import load_graph_dir

        graph = load_graph_dir(tmp_path / "kg")
        assert graph.num_entities == 400

    def test_recommenders_subset(self, capsys):
        assert main(["recommenders", "--dataset", "codex-s-lite", "--recommenders", "pt", "l-wd"]) == 0
        out = capsys.readouterr().out
        assert "pt" in out and "l-wd" in out
        assert "CR Unseen" in out

    def test_easy_negatives(self, capsys):
        assert main(["easy-negatives", "--dataset", "codex-s-lite"]) == 0
        out = capsys.readouterr().out
        assert "Easy negatives" in out
        assert "Table 10" in out

    def test_complexity(self, capsys):
        assert main(["complexity", "--dataset", "codex-s-lite", "--fraction", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Sampling reduction" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--dataset", "codex-s-lite"]) == 0
        out = capsys.readouterr().out
        assert "Cardinality classes" in out
        assert "Unseen test answers" in out
        assert "Connectivity" in out

    def test_evaluate_small_run(self, capsys, tmp_path):
        checkpoint = tmp_path / "model.npz"
        code = main(
            [
                "evaluate",
                "--dataset",
                "codex-s-lite",
                "--model",
                "distmult",
                "--epochs",
                "1",
                "--dim",
                "8",
                "--fraction",
                "0.1",
                "--save-model",
                str(checkpoint),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full filtered ranking" in out
        assert "random @ 10%" in out
        assert "MRR error" in out
        from repro.models import load_model

        assert load_model(checkpoint).name == "distmult"

    def test_train_writes_checkpoint(self, capsys, tmp_path):
        checkpoint = tmp_path / "trained.npz"
        code = main(
            [
                "train",
                "--dataset",
                "codex-s-lite",
                "--model",
                "transe",
                "--epochs",
                "1",
                "--dim",
                "8",
                "--dtype",
                "float32",
                "--out",
                str(checkpoint),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "triples/s" in out
        from repro.models import load_model

        loaded = load_model(checkpoint)
        assert loaded.name == "transe"
        assert loaded.dtype == "float32"

    def test_train_no_fused_flag(self, capsys, tmp_path):
        """--no-fused trains through the autodiff path (and says so)."""
        code = main(
            [
                "train",
                "--dataset",
                "codex-s-lite",
                "--model",
                "distmult",
                "--epochs",
                "1",
                "--dim",
                "8",
                "--no-fused",
                "--out",
                str(tmp_path / "m.npz"),
            ]
        )
        assert code == 0
        assert "autodiff path" in capsys.readouterr().out

    def test_evaluate_save_alias_still_works(self, tmp_path):
        """--save (the pre-serve spelling) remains an alias of --save-model."""
        args = build_parser().parse_args(
            ["evaluate", "--save", str(tmp_path / "m.npz")]
        )
        assert args.save_model == str(tmp_path / "m.npz")

    def test_serve_dry_run_with_saved_checkpoint(self, capsys, tmp_path):
        """evaluate --save-model -> serve --model-path, no Python in between."""
        checkpoint = tmp_path / "dm.npz"
        assert (
            main(
                [
                    "evaluate",
                    "--dataset", "codex-s-lite",
                    "--model", "distmult",
                    "--epochs", "1",
                    "--dim", "8",
                    "--save-model", str(checkpoint),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            [
                "serve",
                "--dataset", "codex-s-lite",
                "--model-path", f"prod={checkpoint}",
                "--store", str(tmp_path / "store"),
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving codex-s-lite" in out
        assert "prod" in out and "distmult" in out
        assert "Dry run" in out

    def test_serve_model_path_with_equals_in_directory(self, capsys, tmp_path):
        """A bare path containing '=' in a directory name is one path."""
        from repro.datasets import load
        from repro.models import build_model, save_model

        weird_dir = tmp_path / "run=3"
        weird_dir.mkdir()
        graph = load("codex-s-lite").graph
        save_model(
            build_model("distmult", graph.num_entities, graph.num_relations, dim=8),
            weird_dir / "dm.npz",
        )
        code = main(
            [
                "serve",
                "--dataset", "codex-s-lite",
                "--model-path", str(weird_dir / "dm.npz"),
                "--store", str(tmp_path / "store"),
                "--dry-run",
            ]
        )
        assert code == 0
        assert "dm" in capsys.readouterr().out

    def test_serve_model_path_relative_with_equals(self, capsys, tmp_path, monkeypatch):
        """`run=3/dm.npz` relative to cwd is one bare path too."""
        from repro.datasets import load
        from repro.models import build_model, save_model

        (tmp_path / "run=3").mkdir()
        graph = load("codex-s-lite").graph
        save_model(
            build_model("distmult", graph.num_entities, graph.num_relations, dim=8),
            tmp_path / "run=3" / "dm.npz",
        )
        monkeypatch.chdir(tmp_path)
        code = main(
            [
                "serve",
                "--dataset", "codex-s-lite",
                "--model-path", "run=3/dm.npz",
                "--store", str(tmp_path / "store"),
                "--dry-run",
            ]
        )
        assert code == 0
        assert "dm" in capsys.readouterr().out

    def test_serve_dry_run_trains_ad_hoc_without_checkpoints(self, capsys, tmp_path):
        code = main(
            [
                "serve",
                "--dataset", "codex-s-lite",
                "--model", "distmult",
                "--epochs", "1",
                "--dim", "8",
                "--store", str(tmp_path / "store"),
                "--dry-run",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ad-hoc" in out
        assert "Serving codex-s-lite" in out
        # The ad-hoc model was persisted: a second serve discovers it.
        assert (tmp_path / "store" / "serve" / "distmult.npz").exists()


class TestRunCommand:
    """The declarative front door: `repro run <spec.json>`."""

    @staticmethod
    def _write_spec(path, payload):
        import json

        path.write_text(json.dumps(payload))
        return str(path)

    _TINY = {
        "task": "evaluate",
        "dataset": {"name": "codex-s-lite"},
        "model": {"name": "distmult", "dim": 8},
        "training": {"epochs": 1},
    }

    def test_dry_run_prints_resolved_spec(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path / "spec.json", self._TINY)
        assert main(["run", spec, "--dry-run"]) == 0
        out = capsys.readouterr().out
        import json

        resolved = json.loads(out[: out.rindex("}") + 1])
        # Every section is fully materialised with defaults.
        assert resolved["evaluation"]["recommender"] == "l-wd"
        assert resolved["training"]["lr"] == 0.05
        assert resolved["model"]["dim"] == 8
        assert "Spec key:" in out
        assert "Dry run" in out

    def test_set_overrides_resolve_before_validation(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path / "spec.json", self._TINY)
        code = main(
            ["run", spec, "--dry-run", "--set", "model.dim=16",
             "--set", "evaluation.strategy=random"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert '"dim": 16' in out
        assert '"strategy": "random"' in out

    def test_unknown_key_fails_with_suggestion(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path / "spec.json", self._TINY)
        assert main(["run", spec, "--set", "training.lrr=0.1"]) == 2
        err = capsys.readouterr().err
        assert "did you mean 'lr'" in err

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_run_executes_and_journals(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path / "spec.json", self._TINY)
        store = str(tmp_path / "store")
        assert main(["run", spec, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "full filtered ranking" in out
        assert "Journaled run" in out
        # The journal record carries the originating spec; `runs show`
        # prints it.
        from repro.store import ExperimentStore

        record = ExperimentStore(store).journal.records()[-1]
        assert record.kind == "cli:run"
        assert record.spec is not None
        capsys.readouterr()
        assert main(["runs", "show", record.run_id, "--store", store]) == 0
        detail = capsys.readouterr().out
        assert '"spec"' in detail and '"distmult"' in detail

    def test_train_task_writes_checkpoint(self, tmp_path, capsys):
        payload = dict(self._TINY, task="train", checkpoint=str(tmp_path / "m.npz"))
        spec = self._write_spec(tmp_path / "spec.json", payload)
        assert main(["run", spec]) == 0
        assert "triples/s" in capsys.readouterr().out
        from repro.models import load_model

        assert load_model(tmp_path / "m.npz").name == "distmult"

    def test_sweep_expands_and_summarises(self, tmp_path, capsys):
        payload = dict(self._TINY)
        payload["sweep"] = {"grid": {"model.dim": [4, 8]}}
        spec = self._write_spec(tmp_path / "spec.json", payload)
        assert main(["run", spec]) == 0
        out = capsys.readouterr().out
        assert "Sweep summary (2 variants)" in out
        assert "dim=4" in out and "dim=8" in out

    def test_set_can_override_the_sweep_section(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path / "spec.json", self._TINY)
        code = main(
            ["run", spec, "--dry-run",
             "--set", 'sweep={"grid": {"model.dim": [4, 8]}}']
        )
        assert code == 0
        assert "Sweep: 2 variants" in capsys.readouterr().out

    def test_serve_shim_preserves_margin_loss(self, tmp_path, monkeypatch):
        """The ad-hoc fallback keeps its historical training objective."""
        import repro.cli as cli

        captured = {}
        monkeypatch.setattr(
            cli,
            "_serve_from_spec",
            lambda spec, store, dry_run: captured.update(spec=spec) or 0,
        )
        assert main(["serve", "--store", str(tmp_path / "s"), "--dry-run"]) == 0
        assert captured["spec"].training.loss == "margin"

    def test_sweep_dry_run_lists_variants(self, tmp_path, capsys):
        payload = dict(self._TINY)
        payload["sweep"] = {"grid": {"training.lr": [0.01, 0.05, 0.1]}}
        spec = self._write_spec(tmp_path / "spec.json", payload)
        assert main(["run", spec, "--dry-run"]) == 0
        assert "Sweep: 3 variants" in capsys.readouterr().out

    def test_cli_parity_with_evaluate_flags(self, tmp_path, capsys):
        """Acceptance: flags and the equivalent spec produce identical
        metrics and identical store keys."""
        store_flags = tmp_path / "flags"
        store_spec = tmp_path / "spec"
        assert (
            main(
                [
                    "evaluate",
                    "--dataset", "codex-s-lite",
                    "--model", "distmult",
                    "--epochs", "1",
                    "--dim", "8",
                    "--fraction", "0.1",
                    "--store", str(store_flags),
                ]
            )
            == 0
        )
        spec = self._write_spec(
            tmp_path / "spec.json",
            {
                "task": "evaluate",
                "dataset": {"name": "codex-s-lite"},
                "model": {"name": "distmult", "dim": 8},
                "training": {"epochs": 1},
                "evaluation": {"sample_fraction": 0.1},
            },
        )
        assert main(["run", spec, "--store", str(store_spec)]) == 0
        capsys.readouterr()
        from repro.store import ExperimentStore

        flags_store = ExperimentStore(store_flags)
        spec_store = ExperimentStore(store_spec)
        flag_keys = {(e.kind, e.key) for e in flags_store.artifacts.entries()}
        spec_keys = {(e.kind, e.key) for e in spec_store.artifacts.entries()}
        assert flag_keys == spec_keys and flag_keys
        flag_record = flags_store.journal.records()[-1]
        spec_record = spec_store.journal.records()[-1]
        assert flag_record.metrics == spec_record.metrics
        # The shim itself is spec-driven: both journal the same spec.
        assert flag_record.spec == spec_record.spec


class TestStoreCommands:
    def test_runs_list_on_empty_store(self, tmp_path, capsys):
        assert main(["runs", "list", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Run journal (0 runs)" in out
        assert "(no rows)" in out

    def test_cache_ls_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "ls", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Artifact cache (0 artifacts" in out

    def test_runs_show_unknown_id_fails(self, tmp_path, capsys):
        assert main(["runs", "show", "deadbeef", "--store", str(tmp_path / "s")]) == 1
        assert "no run matching" in capsys.readouterr().out

    def test_evaluate_with_store_then_inspect(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "evaluate",
            "--dataset", "codex-s-lite",
            "--model", "distmult",
            "--epochs", "1",
            "--dim", "8",
            "--store", store,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Journaled run" in out

        assert main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cli:evaluate" in out and "miss" in out

        # The second run reuses the cached preparation and ground truth.
        assert main(args) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--store", store, "--format", "json"]) == 0
        import json

        rows = json.loads(capsys.readouterr().out)
        assert [row["Cache"] for row in rows] == ["miss", "hit"]

        run_id = rows[0]["Run"]
        assert main(["runs", "show", run_id, "--store", store]) == 0
        detail = capsys.readouterr().out
        assert '"kind": "cli:evaluate"' in detail and "codex-s-lite" in detail

        assert main(["cache", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "pools" in out and "truth" in out

        assert main(["cache", "gc", "--store", store]) == 0
        assert "Removed 0 orphaned files" in capsys.readouterr().out

    def test_runs_list_env_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert main(["runs", "list"]) == 0
        assert "env-store" in capsys.readouterr().out


class TestIngestShard:
    """The out-of-core commands: ingest, shard, evaluate --backend mmap."""

    def test_ingest_directory(self, tmp_path, capsys):
        (tmp_path / "train.tsv").write_text("a\tr\tb\nb\tr\tc\na\tr\tb\n")
        (tmp_path / "valid.tsv").write_text("a\tr\tc\n")
        assert main(["ingest", str(tmp_path), "--out", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "3 entities" in out and "Compact store written" in out
        assert (tmp_path / "store" / "manifest.json").exists()

    def test_ingest_error_exits_2(self, tmp_path, capsys):
        (tmp_path / "train.tsv").write_text("broken line\n")
        code = main(["ingest", str(tmp_path), "--out", str(tmp_path / "store")])
        assert code == 2
        assert "ingest error" in capsys.readouterr().err

    def test_shard_checkpoint(self, tmp_path, capsys):
        from repro.models import build_model, save_model

        model = build_model("distmult", 10, 2, dim=4, seed=0)
        save_model(model, tmp_path / "ckpt.npz")
        assert main(
            ["shard", str(tmp_path / "ckpt.npz"), "--out", str(tmp_path / "shards")]
        ) == 0
        assert "Sharded distmult" in capsys.readouterr().out
        assert (tmp_path / "shards" / "manifest.json").exists()

    def test_evaluate_backend_mmap(self, tmp_path, capsys):
        assert main(
            [
                "evaluate",
                "--dataset", "codex-s-lite",
                "--model", "distmult",
                "--epochs", "1",
                "--dim", "8",
                "--backend", "mmap",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Sharded distmult" in out
        assert "full filtered ranking" in out
