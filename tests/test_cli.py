"""CLI: every subcommand end-to-end through main(argv)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["easy-negatives", "--dataset", "fb15k"])

    def test_parser_lists_all_commands(self):
        parser = build_parser()
        actions = {
            action.dest: action
            for action in parser._actions
            if hasattr(action, "choices") and action.choices
        }
        assert set(actions["command"].choices) == {
            "datasets",
            "generate",
            "recommenders",
            "easy-negatives",
            "complexity",
            "analyze",
            "evaluate",
            "runs",
            "cache",
        }


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "codex-s-lite" in out and "wikikg2-lite" in out
        assert "|E|" in out

    def test_generate_round_trips(self, tmp_path, capsys):
        assert main(["generate", "--dataset", "codex-s-lite", "--out", str(tmp_path / "kg")]) == 0
        assert (tmp_path / "kg" / "train.tsv").exists()
        assert (tmp_path / "kg" / "types.tsv").exists()
        from repro.kg.io import load_graph_dir

        graph = load_graph_dir(tmp_path / "kg")
        assert graph.num_entities == 400

    def test_recommenders_subset(self, capsys):
        assert main(["recommenders", "--dataset", "codex-s-lite", "--recommenders", "pt", "l-wd"]) == 0
        out = capsys.readouterr().out
        assert "pt" in out and "l-wd" in out
        assert "CR Unseen" in out

    def test_easy_negatives(self, capsys):
        assert main(["easy-negatives", "--dataset", "codex-s-lite"]) == 0
        out = capsys.readouterr().out
        assert "Easy negatives" in out
        assert "Table 10" in out

    def test_complexity(self, capsys):
        assert main(["complexity", "--dataset", "codex-s-lite", "--fraction", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Sampling reduction" in out

    def test_analyze(self, capsys):
        assert main(["analyze", "--dataset", "codex-s-lite"]) == 0
        out = capsys.readouterr().out
        assert "Cardinality classes" in out
        assert "Unseen test answers" in out
        assert "Connectivity" in out

    def test_evaluate_small_run(self, capsys, tmp_path):
        checkpoint = tmp_path / "model.npz"
        code = main(
            [
                "evaluate",
                "--dataset",
                "codex-s-lite",
                "--model",
                "distmult",
                "--epochs",
                "1",
                "--dim",
                "8",
                "--fraction",
                "0.1",
                "--save",
                str(checkpoint),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full filtered ranking" in out
        assert "random @ 10%" in out
        assert "MRR error" in out
        from repro.models import load_model

        assert load_model(checkpoint).name == "distmult"


class TestStoreCommands:
    def test_runs_list_on_empty_store(self, tmp_path, capsys):
        assert main(["runs", "list", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Run journal (0 runs)" in out
        assert "(no rows)" in out

    def test_cache_ls_on_empty_store(self, tmp_path, capsys):
        assert main(["cache", "ls", "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "Artifact cache (0 artifacts" in out

    def test_runs_show_unknown_id_fails(self, tmp_path, capsys):
        assert main(["runs", "show", "deadbeef", "--store", str(tmp_path / "s")]) == 1
        assert "no run matching" in capsys.readouterr().out

    def test_evaluate_with_store_then_inspect(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        args = [
            "evaluate",
            "--dataset", "codex-s-lite",
            "--model", "distmult",
            "--epochs", "1",
            "--dim", "8",
            "--store", store,
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "Journaled run" in out

        assert main(["runs", "list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "cli:evaluate" in out and "miss" in out

        # The second run reuses the cached preparation and ground truth.
        assert main(args) == 0
        capsys.readouterr()
        assert main(["runs", "list", "--store", store, "--format", "json"]) == 0
        import json

        rows = json.loads(capsys.readouterr().out)
        assert [row["Cache"] for row in rows] == ["miss", "hit"]

        run_id = rows[0]["Run"]
        assert main(["runs", "show", run_id, "--store", store]) == 0
        detail = capsys.readouterr().out
        assert '"kind": "cli:evaluate"' in detail and "codex-s-lite" in detail

        assert main(["cache", "ls", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "pools" in out and "truth" in out

        assert main(["cache", "gc", "--store", store]) == 0
        assert "Removed 0 orphaned files" in capsys.readouterr().out

    def test_runs_list_env_default(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "env-store"))
        assert main(["runs", "list"]) == 0
        assert "env-store" in capsys.readouterr().out
