"""Streaming ingestion: id parity with build_graph + every edge case."""

from __future__ import annotations

import gzip

import numpy as np
import pytest

from repro.datasets import (
    IngestError,
    SyntheticScaleConfig,
    generate_scale_tsv,
    ingest_directory,
    ingest_files,
    iter_triples,
)
from repro.datasets.ingest import discover_split_files
from repro.kg import build_graph, open_compact


def _write(path, text):
    path.write_text(text, encoding="utf-8")
    return path


class TestIterTriples:
    def test_tsv_basic(self, tmp_path):
        path = _write(tmp_path / "x.tsv", "a\tr\tb\nb\tr\tc\n")
        assert list(iter_triples(path)) == [("a", "r", "b"), ("b", "r", "c")]

    def test_blank_lines_skipped(self, tmp_path):
        path = _write(tmp_path / "x.tsv", "a\tr\tb\n\n   \nb\tr\tc\n")
        assert len(list(iter_triples(path))) == 2

    def test_crlf_line_endings(self, tmp_path):
        path = (tmp_path / "x.tsv")
        path.write_bytes(b"a\tr\tb\r\nb\tr\tc\r\n")
        assert list(iter_triples(path)) == [("a", "r", "b"), ("b", "r", "c")]

    def test_malformed_tsv_names_path_and_line(self, tmp_path):
        path = _write(tmp_path / "x.tsv", "a\tr\tb\nonly two\tfields\n")
        with pytest.raises(IngestError, match=r"x\.tsv:2"):
            list(iter_triples(path))

    def test_empty_field_rejected(self, tmp_path):
        path = _write(tmp_path / "x.tsv", "a\t\tb\n")
        with pytest.raises(IngestError, match=r"x\.tsv:1"):
            list(iter_triples(path))

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "x.tsv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("a\tr\tb\n")
        assert list(iter_triples(path)) == [("a", "r", "b")]

    def test_nt_iris_and_bnodes(self, tmp_path):
        path = _write(
            tmp_path / "x.nt",
            "# a comment\n"
            "<http://x/a> <http://x/p> <http://x/b> .\n"
            "_:b1 <http://x/p> <http://x/a> .\n",
        )
        assert list(iter_triples(path)) == [
            ("http://x/a", "http://x/p", "http://x/b"),
            ("_:b1", "http://x/p", "http://x/a"),
        ]

    def test_nt_malformed_rejected(self, tmp_path):
        path = _write(tmp_path / "x.nt", "<http://x/a> <http://x/p> missing-dot\n")
        with pytest.raises(IngestError, match=r"x\.nt:1"):
            list(iter_triples(path))

    def test_unknown_format_rejected(self, tmp_path):
        path = _write(tmp_path / "x.tsv", "a\tr\tb\n")
        with pytest.raises(IngestError, match="format"):
            list(iter_triples(path, fmt="parquet"))


class TestDiscoverSplitFiles:
    def test_finds_each_split(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\n")
        _write(tmp_path / "valid.txt", "a\tr\tb\n")
        found = discover_split_files(tmp_path)
        assert set(found) == {"train", "valid"}

    def test_train_required(self, tmp_path):
        _write(tmp_path / "valid.tsv", "a\tr\tb\n")
        with pytest.raises(IngestError, match="train"):
            discover_split_files(tmp_path)

    def test_ambiguous_split_rejected(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\n")
        _write(tmp_path / "train.txt", "a\tr\tb\n")
        with pytest.raises(IngestError, match="ambiguous"):
            discover_split_files(tmp_path)


class TestIngestFiles:
    def test_ids_match_build_graph(self, tmp_path):
        train = [("a", "r", "b"), ("b", "r", "c"), ("c", "s", "a")]
        valid = [("a", "s", "c")]
        test = [("b", "s", "a")]
        _write(tmp_path / "train.tsv", "".join(f"{h}\t{r}\t{t}\n" for h, r, t in train))
        _write(tmp_path / "valid.tsv", "".join(f"{h}\t{r}\t{t}\n" for h, r, t in valid))
        _write(tmp_path / "test.tsv", "".join(f"{h}\t{r}\t{t}\n" for h, r, t in test))
        result = ingest_directory(tmp_path, tmp_path / "store")
        compact = open_compact(result.directory)
        reference = build_graph({"train": train, "valid": valid, "test": test})
        assert compact.entity_labels() == list(reference.entities.labels())
        assert compact.relation_labels() == list(reference.relations.labels())
        for split in ("train", "valid", "test"):
            np.testing.assert_array_equal(
                getattr(compact, split).array, getattr(reference, split).array
            )

    def test_duplicates_dropped_and_counted(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\na\tr\tb\nb\tr\tc\na\tr\tb\n")
        result = ingest_directory(tmp_path, tmp_path / "store")
        assert result.splits["train"] == 2
        assert result.stats["train"]["read"] == 4
        assert result.stats["train"]["duplicates"] == 2

    def test_unseen_in_train_entities_counted(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\n")
        _write(tmp_path / "valid.tsv", "a\tr\tc\nd\tr\tb\n")
        result = ingest_directory(tmp_path, tmp_path / "store")
        # c and d never appear in train (whose vocabulary is {a, b}).
        assert result.stats["valid"]["unseen_in_train_entities"] == 2

    def test_missing_optional_splits_are_empty(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\n")
        result = ingest_directory(tmp_path, tmp_path / "store")
        assert result.splits == {"train": 1, "valid": 0, "test": 0}
        compact = open_compact(result.directory)
        assert len(compact.valid) == 0 and len(compact.test) == 0

    def test_gzip_crlf_train_ingests(self, tmp_path):
        path = tmp_path / "train.tsv.gz"
        with gzip.open(path, "wt", encoding="utf-8", newline="") as handle:
            handle.write("a\tr\tb\r\nb\tr\tc\r\n")
        result = ingest_directory(tmp_path, tmp_path / "store")
        assert result.splits["train"] == 2

    def test_nt_splits_ingest(self, tmp_path):
        _write(
            tmp_path / "train.nt",
            "<http://x/a> <http://x/p> <http://x/b> .\n",
        )
        result = ingest_directory(tmp_path, tmp_path / "store")
        compact = open_compact(result.directory)
        assert compact.entity_labels() == ["http://x/a", "http://x/b"]
        assert compact.relation_labels() == ["http://x/p"]

    def test_unknown_split_key_rejected(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\n")
        with pytest.raises(IngestError, match="unknown splits"):
            ingest_files(
                {"train": tmp_path / "train.tsv", "extra": tmp_path / "train.tsv"},
                tmp_path / "store",
            )

    def test_malformed_line_aborts_with_location(self, tmp_path):
        _write(tmp_path / "train.tsv", "a\tr\tb\nbroken line\n")
        with pytest.raises(IngestError, match=r"train\.tsv:2"):
            ingest_directory(tmp_path, tmp_path / "store")

    def test_counter_metric_advances(self, tmp_path):
        from repro.datasets.ingest import INGEST_TRIPLES_COUNTER
        from repro.obs import get_registry

        counter = get_registry().counter(
            INGEST_TRIPLES_COUNTER,
            "Triples written to compact stores by streaming ingestion",
            labels=("split",),
        )
        before = counter.value(split="train")
        _write(tmp_path / "train.tsv", "a\tr\tb\nb\tr\tc\n")
        ingest_directory(tmp_path, tmp_path / "store")
        assert counter.value(split="train") == before + 2


class TestSyntheticScale:
    def test_vocabulary_fully_covered(self, tmp_path):
        config = SyntheticScaleConfig(
            num_entities=500, num_relations=5, num_train=800,
            num_valid=50, num_test=50,
        )
        generate_scale_tsv(tmp_path / "raw", config)
        result = ingest_directory(tmp_path / "raw", tmp_path / "store")
        assert result.num_entities == 500
        assert result.num_relations <= 5
        # Eval splits only reference trained entities by construction.
        assert result.stats["valid"]["unseen_in_train_entities"] == 0
        assert result.stats["test"]["unseen_in_train_entities"] == 0

    def test_train_must_cover_entities(self):
        with pytest.raises(ValueError, match="num_train"):
            SyntheticScaleConfig(num_entities=100, num_train=50)

    def test_config_or_overrides_not_both(self, tmp_path):
        config = SyntheticScaleConfig(num_entities=10, num_train=10)
        with pytest.raises(TypeError):
            generate_scale_tsv(tmp_path, config, num_entities=20)
