"""Synthetic generator: invariants the paper's analysis depends on."""

import numpy as np
import pytest

from repro.datasets import SyntheticConfig, generate
from repro.datasets.schema import Cardinality


@pytest.fixture(scope="module")
def dataset():
    return generate(
        SyntheticConfig(
            num_entities=300,
            num_relations=12,
            num_types=8,
            num_triples=2500,
            num_communities=2,
            noise_triples=5,
            seed=7,
        )
    )


class TestConfigValidation:
    def test_too_few_types_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_types=1)

    def test_more_communities_than_types_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(num_types=4, num_communities=5)

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(noise_triples=-1)

    def test_community_assignment_round_robin(self):
        config = SyntheticConfig(num_types=6, num_communities=3)
        assert [config.community_of_type(t) for t in range(6)] == [0, 1, 2, 0, 1, 2]


class TestStructure:
    def test_determinism(self):
        config = SyntheticConfig(num_entities=150, num_triples=800, seed=5)
        a = generate(config)
        b = generate(config)
        assert np.array_equal(a.graph.train.array, b.graph.train.array)
        assert a.types.assignments == b.types.assignments

    def test_entities_are_contiguous_and_used(self, dataset):
        triples = dataset.graph.all_triples.array
        used = np.unique(triples[:, [0, 2]])
        assert used.tolist() == list(range(dataset.graph.num_entities))

    def test_every_entity_typed(self, dataset):
        for entity in range(dataset.graph.num_entities):
            assert dataset.types.types_of(entity), entity

    def test_transductive_split(self, dataset):
        graph = dataset.graph
        seen_entities = set(graph.train.heads) | set(graph.train.tails)
        seen_relations = set(graph.train.relations)
        for split in (graph.valid, graph.test):
            for h, r, t in split:
                assert h in seen_entities and t in seen_entities and r in seen_relations

    def test_signatures_respected_except_noise(self, dataset):
        """At most ``noise_triples`` violate their relation schema."""
        violations = 0
        for h, r, t in dataset.graph.all_triples:
            # Relation vocabulary order matches the schema list order.
            schema = dataset.schemas[r]
            assert dataset.graph.relations.label_of(r) == schema.name
            if not schema.admits(dataset.types.types_of(h), dataset.types.types_of(t)):
                violations += 1
        assert 0 < violations <= dataset.config.noise_triples

    def test_no_self_loops_outside_noise(self, dataset):
        triples = dataset.graph.all_triples.array
        assert int((triples[:, 0] == triples[:, 2]).sum()) == 0


class TestCardinalityConstraints:
    def test_one_to_one_heads_never_repeat(self, dataset):
        """1-1 relations use each head at most once (noise triples aside)."""
        for rel_id, schema in enumerate(dataset.schemas):
            if schema.cardinality is not Cardinality.ONE_TO_ONE:
                continue
            mask = dataset.graph.all_triples.relations == rel_id
            heads = dataset.graph.all_triples.heads[mask]
            counts = np.unique(heads, return_counts=True)[1]
            # Noise triples can collide; allow that many repeats overall.
            assert int((counts > 1).sum()) <= dataset.config.noise_triples


class TestZipfShape:
    def test_entity_popularity_is_skewed(self, dataset):
        degrees = np.bincount(
            dataset.graph.all_triples.array[:, [0, 2]].reshape(-1),
            minlength=dataset.graph.num_entities,
        )
        top_share = np.sort(degrees)[::-1][: len(degrees) // 10].sum() / degrees.sum()
        assert top_share > 0.25  # top 10% of entities carry >25% of the mass
