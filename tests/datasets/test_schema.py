"""Relation schemas: cardinality semantics and validation."""

import pytest

from repro.datasets import Cardinality, RelationSchema


class TestCardinality:
    def test_head_repeats(self):
        assert Cardinality.ONE_TO_MANY.head_repeats
        assert Cardinality.MANY_TO_MANY.head_repeats
        assert not Cardinality.ONE_TO_ONE.head_repeats
        assert not Cardinality.MANY_TO_ONE.head_repeats

    def test_tail_repeats(self):
        assert Cardinality.MANY_TO_ONE.tail_repeats
        assert Cardinality.MANY_TO_MANY.tail_repeats
        assert not Cardinality.ONE_TO_ONE.tail_repeats
        assert not Cardinality.ONE_TO_MANY.tail_repeats

    def test_values_match_paper_notation(self):
        assert Cardinality.ONE_TO_ONE.value == "1-1"
        assert Cardinality.MANY_TO_MANY.value == "M-M"


class TestRelationSchema:
    def test_admits_requires_both_sides(self):
        schema = RelationSchema(
            name="livesIn",
            domain_types=(0,),
            range_types=(1, 2),
            cardinality=Cardinality.MANY_TO_ONE,
        )
        assert schema.admits((0,), (2,))
        assert not schema.admits((1,), (2,))  # wrong head type
        assert not schema.admits((0,), (0,))  # wrong tail type

    def test_multi_typed_entity_admitted_via_any_type(self):
        schema = RelationSchema(
            name="r", domain_types=(3,), range_types=(4,), cardinality=Cardinality.MANY_TO_MANY
        )
        assert schema.admits((0, 3), (4, 9))

    def test_empty_signature_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema(
                name="r", domain_types=(), range_types=(1,), cardinality=Cardinality.ONE_TO_ONE
            )

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema(
                name="r",
                domain_types=(0,),
                range_types=(1,),
                cardinality=Cardinality.ONE_TO_ONE,
                weight=0.0,
            )
