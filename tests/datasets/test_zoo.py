"""Zoo: naming, caching, per-dataset shape expectations."""

import pytest

from repro.datasets import ZOO, available_datasets, clear_cache, load


class TestRegistry:
    def test_paper_analogues_plus_scale_testbed(self):
        assert len(ZOO) == 8
        for expected in (
            "codex-s-lite",
            "codex-m-lite",
            "codex-l-lite",
            "fb15k-lite",
            "fb15k237-lite",
            "yago310-lite",
            "wikikg2-lite",
            "wikikg2-xl",
        ):
            assert expected in ZOO

    def test_available_is_sorted(self):
        assert available_datasets() == sorted(available_datasets())

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="codex-s-lite"):
            load("nope")


class TestCaching:
    def test_cache_returns_same_object(self):
        clear_cache()
        assert load("codex-s-lite") is load("codex-s-lite")

    def test_no_cache_returns_fresh_object(self):
        a = load("codex-s-lite")
        b = load("codex-s-lite", use_cache=False)
        assert a is not b

    def test_clear_cache(self):
        a = load("codex-s-lite")
        clear_cache()
        assert load("codex-s-lite") is not a


class TestShapes:
    def test_config_names_match_keys(self):
        for name, config in ZOO.items():
            assert config.name == name

    def test_wikikg2_xl_is_largest(self):
        sizes = {name: config.num_entities for name, config in ZOO.items()}
        assert max(sizes, key=sizes.get) == "wikikg2-xl"

    def test_fb15k_has_most_relations(self):
        relations = {name: config.num_relations for name, config in ZOO.items()}
        assert max(relations, key=relations.get) == "fb15k-lite"

    def test_codex_s_loads_with_splits(self, codex_s):
        graph = codex_s.graph
        assert len(graph.valid) > 0 and len(graph.test) > 0
        assert graph.num_entities <= ZOO["codex-s-lite"].num_entities
