"""The online rank accumulator: streaming metrics, mergeable partials."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.aggregator import RankAccumulator
from repro.metrics.ranking import aggregate_ranks


class TestRankAccumulator:
    def test_matches_batch_aggregation(self, rng):
        ranks = rng.integers(1, 500, size=1000).astype(np.float64)
        acc = RankAccumulator()
        for chunk in np.array_split(ranks, 13):
            acc.update(chunk)
        streamed = acc.finalize()
        batch = aggregate_ranks(ranks)
        assert streamed.num_queries == batch.num_queries
        assert streamed.mrr == pytest.approx(batch.mrr, abs=1e-12)
        assert streamed.mean_rank == pytest.approx(batch.mean_rank, abs=1e-9)
        assert streamed.hits == batch.hits

    def test_empty_accumulator_finalizes_to_zero_metrics(self):
        metrics = RankAccumulator(hits_at=(1, 10)).finalize()
        assert metrics.num_queries == 0
        assert metrics.mrr == 0.0
        assert metrics.hits == {1: 0.0, 10: 0.0}

    def test_empty_chunks_are_noops(self):
        acc = RankAccumulator()
        acc.update(np.empty(0))
        acc.update(np.asarray([2.0]))
        acc.update(np.empty(0))
        assert acc.finalize().num_queries == 1

    def test_rejects_sub_one_ranks(self):
        acc = RankAccumulator()
        with pytest.raises(ValueError, match=">= 1"):
            acc.update(np.asarray([0.5]))

    def test_merge_equals_single_stream(self, rng):
        ranks = rng.integers(1, 50, size=200).astype(np.float64)
        single = RankAccumulator()
        single.update(ranks)

        left, right = RankAccumulator(), RankAccumulator()
        left.update(ranks[:77])
        right.update(ranks[77:])
        merged = left.merge(right).finalize()

        expected = single.finalize()
        assert merged.num_queries == expected.num_queries
        assert merged.mrr == pytest.approx(expected.mrr, abs=1e-12)
        assert merged.hits == expected.hits

    def test_merge_rejects_mismatched_hits_grids(self):
        with pytest.raises(ValueError, match="hits grids"):
            RankAccumulator(hits_at=(1,)).merge(RankAccumulator(hits_at=(1, 3)))

    def test_mean_tie_ranks_count_fractionally(self):
        acc = RankAccumulator(hits_at=(1, 3))
        acc.update(np.asarray([1.5, 3.0]))
        metrics = acc.finalize()
        assert metrics.hits_at(1) == 0.0  # 1.5 is not a hit at 1
        assert metrics.hits_at(3) == 1.0
