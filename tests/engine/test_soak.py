"""Soak: one persistent pool, many runs, flat resource gauges.

Fifty consecutive evaluations must reuse the same worker processes and
the same published shared-memory state: worker count stays constant,
``repro_engine_shm_bytes`` stays flat (one published state, republished
zero times), and nothing accumulates run over run.  The serve path gets
the same treatment through its service-owned pool.
"""

from __future__ import annotations

import pytest

from repro.engine import EvaluationEngine, get_engine_pool
from repro.engine.shm import SHM_BYTES_GAUGE, SHM_SEGMENTS_GAUGE
from repro.models import build_model
from repro.obs import get_registry

SOAK_RUNS = 50


@pytest.fixture
def model(tiny_graph):
    return build_model(
        "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4, seed=0
    )


class TestPoolSoak:
    def test_fifty_runs_one_pool_flat_gauges(self, tiny_graph, model):
        engine = EvaluationEngine(workers=2, transport="shm")
        registry = get_registry()
        baseline = engine.run(model, tiny_graph, split="test")
        pool = get_engine_pool(2)
        pids = set(pool.worker_pids())
        runs_before = pool.runs_completed
        published_before = pool.states_published
        shm_bytes = registry.gauge(SHM_BYTES_GAUGE, "").value()
        shm_segments = registry.gauge(SHM_SEGMENTS_GAUGE, "").value()
        assert shm_bytes > 0 and shm_segments > 0

        for _ in range(SOAK_RUNS):
            run = engine.run(model, tiny_graph, split="test")
            assert run.metrics == baseline.metrics
            # Flat, not sawtooth: the same state serves every run.
            assert registry.gauge(SHM_BYTES_GAUGE, "").value() == shm_bytes
            assert registry.gauge(SHM_SEGMENTS_GAUGE, "").value() == shm_segments

        assert pool.alive()
        assert set(pool.worker_pids()) == pids  # zero worker churn
        assert pool.runs_completed == runs_before + SOAK_RUNS
        assert pool.states_published == published_before  # zero republishes
        assert (
            registry.gauge(
                "repro_engine_pool_workers", "", labels=("pool",)
            ).value(pool=pool.label)
            == pool.workers
        )

    def test_retraining_republishes_exactly_once(self, tiny_graph, model):
        engine = EvaluationEngine(workers=2, transport="shm")
        engine.run(model, tiny_graph, split="test")
        pool = get_engine_pool(2)
        published = pool.states_published
        # A training step mutates parameters in place; the stale shared
        # state must NOT be reused...
        next(iter(model.parameter_arrays().values()))[...] += 0.5
        engine.run(model, tiny_graph, split="test")
        assert pool.states_published == published + 1
        # ...but further runs of the now-unchanged model are reuses again.
        engine.run(model, tiny_graph, split="test")
        assert pool.states_published == published + 1


class TestServeSoak:
    def test_serve_path_reuses_service_pool(self, tiny_graph, model, tmp_path):
        from repro.serve.registry import ModelRegistry
        from repro.serve.service import LinkPredictionService
        from repro.store import ExperimentStore

        registry = ModelRegistry(ExperimentStore(tmp_path / "store"), tiny_graph)
        registry.register("dm", model)
        with LinkPredictionService(registry, engine_workers=2) as service:
            first = service.evaluate_model("dm", split="test")
            for _ in range(9):
                repeat = service.evaluate_model("dm", split="test")
                assert repeat["metrics"] == first["metrics"]
            stats = service.engine_pool_stats()
            assert stats["started"] and stats["alive"]
            assert stats["runs_completed"] == 10
            assert stats["states_published"] == 1  # one publish, nine reuses
            assert stats["evaluations"] == 10
            assert service.health()["engine_pool"]["runs_completed"] == 10
        assert service.engine_pool_stats()["started"] is False  # close() shut it
