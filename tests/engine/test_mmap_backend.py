"""Mmap backend through the engine: zero-copy transport, bitwise ranks.

The acceptance matrix of the out-of-core backend: a model served from
``.npy`` mmap shards must produce ranks bitwise-identical to its
in-memory twin on the full protocol and the sampled estimator, at any
worker count, under both start methods, over a :class:`KnowledgeGraph`
and a :class:`CompactGraph` alike.  The shared-memory transport ships
only the shard manifest (no parameter blocks), and attaching verifies
the manifest digest.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.estimators import evaluate_sampled
from repro.core.ranking import evaluate_full
from repro.core.sampling import build_pools
from repro.datasets.zoo import load
from repro.engine.shm import publish_state, state_fingerprint
from repro.kg import open_compact, save_compact
from repro.models import build_model
from repro.models.io import open_mmap, save_sharded

WORKER_COUNTS = (1, 4)
START_METHODS = ("fork", "spawn")


def _require_method(method: str) -> None:
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable on this platform")


@pytest.fixture(scope="module")
def dataset():
    return load("codex-s-lite")


@pytest.fixture(scope="module")
def memory_model(dataset):
    graph = dataset.graph
    return build_model(
        "complex", graph.num_entities, graph.num_relations, dim=8, seed=0
    )


@pytest.fixture(scope="module")
def mmap_model(memory_model, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards")
    save_sharded(memory_model, directory)
    return open_mmap(directory)


@pytest.fixture(scope="module")
def compact_graph(dataset, tmp_path_factory):
    directory = tmp_path_factory.mktemp("compact")
    save_compact(dataset.graph, directory)
    return open_compact(directory)


@pytest.fixture(scope="module")
def pools(dataset):
    return build_pools(
        dataset.graph, "random", np.random.default_rng(0), num_samples=32
    )


@pytest.fixture(scope="module")
def full_baseline(dataset, memory_model):
    return evaluate_full(memory_model, dataset.graph, workers=1)


@pytest.fixture(scope="module")
def sampled_baseline(dataset, memory_model, pools):
    return evaluate_sampled(memory_model, dataset.graph, pools, workers=1)


@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestMmapExactness:
    def test_full_ranks_bitwise_equal(
        self, dataset, mmap_model, full_baseline, workers, start_method
    ):
        _require_method(start_method)
        result = evaluate_full(
            mmap_model,
            dataset.graph,
            workers=workers,
            start_method=start_method,
            transport="shm",
        )
        assert result.ranks == full_baseline.ranks
        assert result.metrics == full_baseline.metrics

    def test_sampled_ranks_bitwise_equal(
        self, dataset, mmap_model, pools, sampled_baseline, workers, start_method
    ):
        _require_method(start_method)
        result = evaluate_sampled(
            mmap_model,
            dataset.graph,
            pools,
            workers=workers,
            start_method=start_method,
            transport="shm",
        )
        assert result.ranks == sampled_baseline.ranks
        assert result.metrics == sampled_baseline.metrics

    def test_compact_graph_matches_knowledge_graph(
        self, compact_graph, mmap_model, full_baseline, workers, start_method
    ):
        _require_method(start_method)
        result = evaluate_full(
            mmap_model,
            compact_graph,
            workers=workers,
            start_method=start_method,
            transport="shm",
        )
        assert result.ranks == full_baseline.ranks
        assert result.metrics == full_baseline.metrics


class TestShardTransport:
    """The shm manifest route for mmap models: ship paths, not bytes."""

    @pytest.fixture
    def published(self, dataset, mmap_model):
        from repro.engine.worker import build_state

        state = build_state(mmap_model, dataset.graph, "test")
        published = publish_state(state)
        yield published
        published.close()

    def test_manifest_ships_shards_not_params(self, published, mmap_model):
        manifest = published.manifest
        assert manifest.model_shards is not None
        assert manifest.model_shards["digest"] == mmap_model.shard_source.digest
        assert manifest.model_pickle is None
        # No parameter bytes go through shared memory.
        assert not any(name.startswith("param_") for name in manifest.arrays)

    def test_fingerprint_short_circuits_on_digest(
        self, dataset, mmap_model, memory_model
    ):
        from repro.engine.worker import build_state

        mmap_key = state_fingerprint(build_state(mmap_model, dataset.graph, "test"))
        memory_key = state_fingerprint(
            build_state(memory_model, dataset.graph, "test")
        )
        assert mmap_key != memory_key
        assert mmap_key[0][1] == ("mmap", mmap_model.shard_source.digest)

    def test_attach_verifies_digest(self, published):
        from dataclasses import replace

        from repro.engine.shm import attach_state

        manifest = published.manifest
        tampered = replace(
            manifest,
            model_shards=dict(
                manifest.model_shards,
                digest="0" * len(manifest.model_shards["digest"]),
            ),
        )
        with pytest.raises(RuntimeError, match="changed underneath"):
            attach_state(tampered)

    def test_attach_round_trips(self, published, mmap_model):
        from repro.engine.shm import attach_state

        attached = attach_state(published.manifest)
        try:
            model = attached.state.model
            assert model.shard_source.digest == mmap_model.shard_source.digest
            np.testing.assert_array_equal(
                model.parameters["entity"].data,
                mmap_model.parameters["entity"].data,
            )
        finally:
            attached.close()
