"""The engine's headline guarantee: parallelism never changes a result.

Every test here compares a multi-worker run against the serial path on
the same inputs and demands *exact* equality — same rank dictionary, same
metrics — because the engine consumes chunk results in schedule order and
scoring is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimators import evaluate_sampled
from repro.core.protocol import EvaluationProtocol
from repro.core.ranking import evaluate_full
from repro.engine import EvaluationEngine, resolve_workers
from repro.models import build_model
from repro.store import ExperimentStore


@pytest.fixture(scope="module")
def graph_and_model():
    from repro.datasets.zoo import load

    dataset = load("codex-s-lite")
    graph = dataset.graph
    model = build_model(
        "complex", graph.num_entities, graph.num_relations, dim=16, seed=0
    )
    return dataset, graph, model


class TestResolveWorkers:
    def test_none_and_zero_mean_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1

    def test_negative_means_all_cores(self):
        assert resolve_workers(-1) >= 1

    def test_positive_passes_through(self):
        assert resolve_workers(3) == 3

    def test_engine_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            EvaluationEngine(chunk_size=0)


class TestFullEvaluationParallel:
    def test_ranks_bitwise_equal_across_worker_counts(self, graph_and_model):
        _, graph, model = graph_and_model
        serial = evaluate_full(model, graph, workers=1)
        parallel = evaluate_full(model, graph, workers=3)
        assert parallel.ranks == serial.ranks
        assert parallel.metrics == serial.metrics
        assert parallel.num_scored == serial.num_scored

    def test_chunk_size_does_not_change_ranks(self, graph_and_model):
        _, graph, model = graph_and_model
        default = evaluate_full(model, graph)
        rechunked = evaluate_full(model, graph, chunk_size=7, workers=2)
        assert rechunked.ranks == default.ranks

    def test_more_workers_than_chunks_is_fine(self, tiny_graph):
        model = build_model(
            "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4
        )
        serial = evaluate_full(model, tiny_graph, workers=1)
        flooded = evaluate_full(model, tiny_graph, workers=64)
        assert flooded.ranks == serial.ranks


class TestSampledEvaluationParallel:
    def test_sampled_ranks_bitwise_equal(self, graph_and_model):
        dataset, graph, model = graph_and_model
        protocol = EvaluationProtocol(
            graph, strategy="static", types=dataset.types, seed=0
        )
        protocol.prepare()
        assert protocol.pools is not None
        serial = evaluate_sampled(model, graph, protocol.pools, workers=1)
        parallel = evaluate_sampled(model, graph, protocol.pools, workers=2)
        assert parallel.ranks == serial.ranks
        assert parallel.metrics == serial.metrics
        assert parallel.strategy == "static"

    def test_degenerate_empty_pools_rank_everything_first(self, tiny_graph):
        from repro.core.sampling import NegativePools

        model = build_model(
            "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4
        )
        empty = NegativePools(
            strategy="static",
            pools={"head": {}, "tail": {}},
            num_entities=tiny_graph.num_entities,
            sample_size=0,
        )
        for workers in (1, 2):
            result = evaluate_sampled(model, tiny_graph, empty, workers=workers)
            assert set(result.ranks.values()) == {1.0}
            assert result.metrics.mrr == 1.0


class TestProtocolWorkers:
    def test_protocol_level_workers_apply_to_both_paths(self, graph_and_model):
        dataset, graph, model = graph_and_model
        serial = EvaluationProtocol(graph, types=dataset.types, seed=0)
        fanned = EvaluationProtocol(graph, types=dataset.types, seed=0, workers=2)
        assert fanned.evaluate(model).ranks == serial.evaluate(model).ranks
        assert fanned.evaluate_full(model).ranks == serial.evaluate_full(model).ranks

    def test_per_call_override_beats_protocol_setting(self, graph_and_model):
        dataset, graph, model = graph_and_model
        protocol = EvaluationProtocol(graph, types=dataset.types, seed=0, workers=2)
        protocol.prepare()
        # A workers=1 override must run serially and still agree.
        assert (
            protocol.evaluate(model, workers=1).ranks
            == protocol.evaluate(model).ranks
        )

    def test_store_miss_path_accepts_workers(self, graph_and_model, tmp_path):
        _, graph, model = graph_and_model
        store = ExperimentStore(tmp_path / "store")
        protocol = EvaluationProtocol(graph, seed=0, store=store, workers=2)
        first = protocol.evaluate_full(model)  # miss: computed with 2 workers
        second = protocol.evaluate_full(model)  # hit: artifact load
        assert second.ranks == first.ranks
        plain = evaluate_full(model, graph)
        assert first.ranks == plain.ranks


class TestStreamingMode:
    def test_keep_ranks_false_keeps_memory_flat_and_metrics_close(
        self, graph_and_model
    ):
        _, graph, model = graph_and_model
        engine = EvaluationEngine(workers=2, chunk_size=32)
        streamed = engine.run(model, graph, keep_ranks=False)
        retained = engine.run(model, graph, keep_ranks=True)
        assert streamed.ranks is None
        assert retained.ranks is not None
        assert streamed.num_queries == retained.num_queries
        assert streamed.metrics.mrr == pytest.approx(retained.metrics.mrr, abs=1e-12)
        assert streamed.metrics.hits == retained.metrics.hits
        assert streamed.metrics.mean_rank == pytest.approx(
            retained.metrics.mean_rank, abs=1e-9
        )

    def test_duplicate_triples_collapse_only_in_the_rank_dict(self):
        from repro.kg import KnowledgeGraph, TripleSet, Vocabulary

        graph = KnowledgeGraph(
            entities=Vocabulary(["a", "b", "c"]),
            relations=Vocabulary(["r"]),
            train=TripleSet([(0, 0, 1), (1, 0, 2)]),
            test=TripleSet([(0, 0, 1), (0, 0, 1)]),  # a duplicate triple
            name="dup",
        )
        model = build_model("distmult", 3, 1, dim=4, seed=0)
        retained = EvaluationEngine().run(model, graph, keep_ranks=True)
        streamed = EvaluationEngine().run(model, graph, keep_ranks=False)
        # Legacy semantics: one entry per distinct (h, r, t, side) query.
        assert retained.num_queries == len(retained.ranks) == 2
        assert retained.metrics.num_queries == 2
        # Streaming counts every scored query, duplicates included.
        assert streamed.num_queries == streamed.metrics.num_queries == 4

    def test_single_query_graph(self, tiny_graph):
        model = build_model(
            "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4
        )
        # The tiny graph's valid split holds exactly one triple; restrict
        # to one side so the whole run is a single one-query chunk.
        run = EvaluationEngine(workers=2).run(
            model, tiny_graph, split="valid", sides=("tail",), keep_ranks=False
        )
        assert run.num_queries == 1
        assert np.isfinite(run.metrics.mrr)


class TestCLIWorkers:
    def test_evaluate_accepts_workers_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "evaluate",
                "--dataset",
                "codex-s-lite",
                "--model",
                "distmult",
                "--epochs",
                "1",
                "--dim",
                "8",
                "--workers",
                "2",
                "--chunk-size",
                "64",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "full filtered ranking" in out
