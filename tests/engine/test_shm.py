"""Unit tests for the shared-memory plane: arena, publish/attach, fingerprint."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import build_state, plan_chunks, score_chunk
from repro.engine.shm import (
    ShmArena,
    attach_array,
    attach_state,
    publish_state,
    state_fingerprint,
)
from repro.models import build_model


@pytest.fixture
def tiny_state(tiny_graph):
    model = build_model(
        "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4, seed=0
    )
    return build_state(model, tiny_graph, "test")


class TestShmArena:
    def test_put_and_view_round_trip(self):
        arena = ShmArena(tag="repro_t")
        try:
            data = np.arange(12, dtype=np.float64).reshape(3, 4)
            view = arena.put("x", data)
            np.testing.assert_array_equal(view, data)
            assert arena.view("x") is view
            assert arena.nbytes == data.nbytes
        finally:
            arena.close()

    def test_attach_sees_parent_writes(self):
        arena = ShmArena(tag="repro_t")
        try:
            view = arena.put("x", np.zeros(8))
            attached, segment = attach_array(arena.specs["x"])
            view[3] = 42.0
            assert attached[3] == 42.0  # same bytes, not a copy
            attached = None  # release the buffer before closing
            segment.close()
        finally:
            arena.close()

    def test_zero_size_arrays_are_representable(self):
        arena = ShmArena(tag="repro_t")
        try:
            view = arena.put("empty", np.empty(0, dtype=np.int64))
            assert view.size == 0
            array, segment = attach_array(arena.specs["empty"])
            assert array.size == 0 and array.dtype == np.int64
            array = None
            segment.close()
        finally:
            arena.close()

    def test_close_is_idempotent_and_unlinks(self):
        arena = ShmArena(tag="repro_t")
        spec = arena.put("x", np.ones(4)) is not None and arena.specs["x"]
        arena.close()
        arena.close()  # second close is a no-op
        with pytest.raises(FileNotFoundError):
            attach_array(spec)

    def test_duplicate_names_rejected(self):
        arena = ShmArena(tag="repro_t")
        try:
            arena.put("x", np.ones(2))
            with pytest.raises(ValueError, match="duplicate"):
                arena.put("x", np.ones(2))
        finally:
            arena.close()


class TestPublishAttach:
    def test_attached_state_scores_identically(self, tiny_state):
        published = publish_state(tiny_state)
        attached = None
        try:
            attached = attach_state(published.manifest)
            tasks = plan_chunks(
                [((g.relation, g.side), g.queries) for g in tiny_state.groups], 128
            )
            for task in tasks:
                direct, n1 = score_chunk(tiny_state, task)
                via_shm, n2 = score_chunk(attached.state, task)
                np.testing.assert_array_equal(direct, via_shm)
                assert n1 == n2
        finally:
            if attached is not None:
                attached.close()
            published.close()

    def test_manifest_counts_queries_and_groups(self, tiny_state):
        published = publish_state(tiny_state)
        try:
            manifest = published.manifest
            assert manifest.num_queries == sum(
                len(g.queries) for g in tiny_state.groups
            )
            assert [(g.relation, g.side) for g in tiny_state.groups] == [
                (relation, side) for relation, side, _ in manifest.groups
            ]
            assert published.result_view.shape == (manifest.num_queries,)
        finally:
            published.close()

    def test_registry_models_travel_as_arrays_not_pickle(self, tiny_state):
        published = publish_state(tiny_state)
        try:
            assert published.manifest.model_pickle is None
            assert published.manifest.model_spec is not None
            param_specs = [
                name for name in published.manifest.arrays if name.startswith("param_")
            ]
            assert param_specs  # every embedding table went to shared memory
        finally:
            published.close()


class TestStateFingerprint:
    def test_in_place_parameter_mutation_changes_fingerprint(self, tiny_state):
        before = state_fingerprint(tiny_state)
        entity_table = next(iter(tiny_state.model.parameter_arrays().values()))
        entity_table += 0.25  # what a training step does between evals
        after = state_fingerprint(tiny_state)
        assert before != after

    def test_same_content_same_fingerprint(self, tiny_state):
        assert state_fingerprint(tiny_state) == state_fingerprint(tiny_state)

    def test_different_split_different_fingerprint(self, tiny_graph):
        model = build_model(
            "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4
        )
        test_state = build_state(model, tiny_graph, "test")
        valid_state = build_state(model, tiny_graph, "valid")
        assert state_fingerprint(test_state) != state_fingerprint(valid_state)
