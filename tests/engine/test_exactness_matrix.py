"""The exactness matrix: ranks are bitwise-identical across every axis.

{1, 2, 4} workers x {fork, spawn} x {float32, float64}, on both
evaluation paths (full filtered and sampled).  The shared-memory
transport republishes nothing per run and workers write ranks straight
into the shared buffer — none of which may change a single bit relative
to the serial in-process path.  Start methods the platform lacks (fork
on Windows / macOS-spawn-default setups) skip cleanly.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.core.estimators import evaluate_sampled
from repro.core.ranking import evaluate_full
from repro.core.sampling import build_pools
from repro.models import build_model

WORKER_COUNTS = (1, 2, 4)
START_METHODS = ("fork", "spawn")
DTYPES = ("float32", "float64")


def _require_method(method: str) -> None:
    if method not in multiprocessing.get_all_start_methods():
        pytest.skip(f"start method {method!r} unavailable on this platform")


@pytest.fixture(scope="module")
def dataset():
    from repro.datasets.zoo import load

    return load("codex-s-lite")


@pytest.fixture(scope="module")
def models(dataset):
    graph = dataset.graph
    return {
        dtype: build_model(
            "complex",
            graph.num_entities,
            graph.num_relations,
            dim=8,
            seed=0,
            dtype=dtype,
        )
        for dtype in DTYPES
    }


@pytest.fixture(scope="module")
def pools(dataset):
    return build_pools(
        dataset.graph,
        "random",
        np.random.default_rng(0),
        num_samples=32,
    )


@pytest.fixture(scope="module")
def full_baselines(dataset, models):
    return {
        dtype: evaluate_full(models[dtype], dataset.graph, workers=1)
        for dtype in DTYPES
    }


@pytest.fixture(scope="module")
def sampled_baselines(dataset, models, pools):
    return {
        dtype: evaluate_sampled(models[dtype], dataset.graph, pools, workers=1)
        for dtype in DTYPES
    }


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("start_method", START_METHODS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestExactnessMatrix:
    def test_full_ranks_bitwise_equal(
        self, dataset, models, full_baselines, workers, start_method, dtype
    ):
        _require_method(start_method)
        result = evaluate_full(
            models[dtype],
            dataset.graph,
            workers=workers,
            start_method=start_method,
            transport="shm",
        )
        baseline = full_baselines[dtype]
        assert result.ranks == baseline.ranks
        assert result.metrics == baseline.metrics
        assert result.num_scored == baseline.num_scored

    def test_sampled_ranks_bitwise_equal(
        self, dataset, models, pools, sampled_baselines, workers, start_method, dtype
    ):
        _require_method(start_method)
        result = evaluate_sampled(
            models[dtype],
            dataset.graph,
            pools,
            workers=workers,
            start_method=start_method,
            transport="shm",
        )
        baseline = sampled_baselines[dtype]
        assert result.ranks == baseline.ranks
        assert result.metrics == baseline.metrics


class TestTransportParity:
    """The legacy pickle transport must agree with shm, not just serial."""

    @pytest.mark.parametrize("transport", ("shm", "pickle"))
    def test_transports_agree(self, dataset, models, full_baselines, transport):
        result = evaluate_full(
            models["float64"], dataset.graph, workers=2, transport=transport
        )
        assert result.ranks == full_baselines["float64"].ranks

    def test_env_knob_selects_transport(self, dataset, models, monkeypatch):
        from repro.engine import EvaluationEngine

        monkeypatch.setenv("REPRO_ENGINE_TRANSPORT", "pickle")
        assert EvaluationEngine(workers=2).transport == "pickle"
        monkeypatch.setenv("REPRO_ENGINE_TRANSPORT", "shm")
        assert EvaluationEngine(workers=2).transport == "shm"
        monkeypatch.setenv("REPRO_ENGINE_TRANSPORT", "bogus")
        with pytest.raises(ValueError, match="transport"):
            EvaluationEngine(workers=2)

    def test_env_knob_selects_start_method(self, monkeypatch):
        from repro.engine import resolve_start_method

        monkeypatch.delenv("REPRO_ENGINE_START_METHOD", raising=False)
        default = multiprocessing.get_start_method()
        assert resolve_start_method(None) == default
        monkeypatch.setenv("REPRO_ENGINE_START_METHOD", "spawn")
        assert resolve_start_method(None) == "spawn"
        # An explicit argument always beats the environment.
        assert resolve_start_method("spawn") == "spawn"
        with pytest.raises(ValueError, match="start method"):
            resolve_start_method("bogus")
