"""Fault injection: dead workers, scoring exceptions, interrupts.

The persistent pool's contract is *clear error, never a hang, never a
leaked segment*: a worker killed mid-chunk surfaces as
:class:`EngineWorkerError` through liveness polling; a worker-side
exception carries the original traceback; a Ctrl-C-style interrupt of
the parent tears the pool down and unlinks every shared segment.  Every
test is deadline-guarded by the engine's own ``timeout`` (no external
timeout plugin needed), and every test proves the shared memory is gone
afterwards by re-attaching the published segments and expecting
``FileNotFoundError``.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.engine import (
    EngineWorkerError,
    EvaluationEngine,
    PersistentWorkerPool,
    build_state,
    plan_chunks,
)
from repro.engine.shm import attach_array
from repro.models import build_model

#: Hard ceiling on any single pool run in this module — a hang fails fast.
RUN_TIMEOUT = 60.0


class KillerModel:
    """A picklable scorer whose workers die mid-chunk with ``os._exit``.

    No ``parameter_arrays`` surface, so it rides the manifest's pickle
    fallback; scoring in the *parent* (serial path) works fine, scoring
    in a *worker* hard-exits the process — exactly an OOM-kill/segfault
    shape the pool must survive.
    """

    name = "killer"

    def __init__(self, num_entities: int, exit_code: int = 17):
        self.num_entities = num_entities
        self.exit_code = exit_code

    def score_candidates_batch(self, anchors, relation, side, candidates=None):
        os._exit(self.exit_code)

    def score_candidates(self, anchor, relation, side, candidates):
        os._exit(self.exit_code)


class FailingModel:
    """A picklable scorer that raises — the recoverable-error shape."""

    name = "failing"

    def __init__(self, num_entities: int):
        self.num_entities = num_entities

    def score_candidates_batch(self, anchors, relation, side, candidates=None):
        raise ValueError("injected scoring failure")

    def score_candidates(self, anchor, relation, side, candidates):
        raise ValueError("injected scoring failure")


class SlowModel:
    """A picklable scorer slow enough for an interrupt to land mid-run."""

    name = "slow"

    def __init__(self, num_entities: int, delay: float = 0.05):
        self.num_entities = num_entities
        self.delay = delay

    def score_candidates_batch(self, anchors, relation, side, candidates=None):
        time.sleep(self.delay)
        k = self.num_entities if candidates is None else len(candidates)
        return np.zeros((len(anchors), k), dtype=np.float64)

    def score_candidates(self, anchor, relation, side, candidates):
        time.sleep(self.delay)
        return np.zeros(len(candidates), dtype=np.float64)


def _published_specs(pool: PersistentWorkerPool) -> list:
    published = pool._published
    assert published is not None, "expected a live published state"
    return list(published.manifest.arrays.values())


def _assert_unlinked(specs: list) -> None:
    for spec in specs:
        with pytest.raises(FileNotFoundError):
            attach_array(spec)


@pytest.fixture
def pool():
    pool = PersistentWorkerPool(2)
    yield pool
    pool.shutdown(force=True)


class TestWorkerDeath:
    def test_killed_worker_raises_instead_of_hanging(self, tiny_graph, pool):
        state = build_state(KillerModel(tiny_graph.num_entities), tiny_graph, "test")
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 1
        )
        started = time.perf_counter()
        with pytest.raises(EngineWorkerError, match="died|exit"):
            pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT)
        assert time.perf_counter() - started < RUN_TIMEOUT
        assert pool.broken and pool.closed

    def test_shm_unlinked_after_worker_death(self, tiny_graph):
        pool = PersistentWorkerPool(2)
        state = build_state(SlowModel(tiny_graph.num_entities), tiny_graph, "test")
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 128
        )
        pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT)  # publish + one clean run
        specs = _published_specs(pool)
        killer_state = build_state(
            KillerModel(tiny_graph.num_entities), tiny_graph, "test"
        )
        with pytest.raises(EngineWorkerError):
            pool.run_tasks(killer_state, tasks, timeout=RUN_TIMEOUT)
        _assert_unlinked(specs)

    def test_registry_replaces_broken_pool(self, tiny_graph):
        from repro.engine import get_engine_pool

        first = get_engine_pool(2)
        state = build_state(KillerModel(tiny_graph.num_entities), tiny_graph, "test")
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 1
        )
        with pytest.raises(EngineWorkerError):
            first.run_tasks(state, tasks, timeout=RUN_TIMEOUT)
        replacement = get_engine_pool(2)
        assert replacement is not first
        assert replacement.alive()
        replacement.shutdown(force=True)


class TestWorkerException:
    def test_error_carries_worker_traceback(self, tiny_graph):
        model = FailingModel(tiny_graph.num_entities)
        engine = EvaluationEngine(workers=2, transport="shm", timeout=RUN_TIMEOUT)
        with pytest.raises(EngineWorkerError, match="injected scoring failure"):
            engine.run(model, tiny_graph, split="test")

    def test_shm_unlinked_after_exception(self, tiny_graph, pool):
        state = build_state(FailingModel(tiny_graph.num_entities), tiny_graph, "test")
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 128
        )
        with pytest.raises(EngineWorkerError):
            pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT)
        # The failed run marked the pool broken and closed its arena:
        # the manifest's segments must be unattachable.
        assert pool.broken
        assert pool._published is None or pool._published.arena.closed


class TestTimeout:
    def test_run_deadline_raises_not_hangs(self, tiny_graph, pool):
        state = build_state(
            SlowModel(tiny_graph.num_entities, delay=1.0), tiny_graph, "test"
        )
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 1
        )
        started = time.perf_counter()
        with pytest.raises(EngineWorkerError, match="timed out"):
            pool.run_tasks(state, tasks, timeout=0.5)
        assert time.perf_counter() - started < 10.0


class TestInterrupt:
    def test_ctrl_c_tears_pool_down_and_unlinks(self, tiny_graph):
        pool = PersistentWorkerPool(2)
        state = build_state(
            SlowModel(tiny_graph.num_entities, delay=1.0), tiny_graph, "test"
        )
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 1
        )
        pool.ensure_state(state)
        specs = _published_specs(pool)
        timer = threading.Timer(0.3, signal.raise_signal, args=(signal.SIGINT,))
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT)
        finally:
            timer.cancel()
        assert pool.closed
        _assert_unlinked(specs)


class TestNormalShutdown:
    def test_clean_shutdown_unlinks_everything(self, tiny_graph):
        pool = PersistentWorkerPool(2)
        model = build_model(
            "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4
        )
        state = build_state(model, tiny_graph, "test")
        tasks = plan_chunks(
            [((g.relation, g.side), g.queries) for g in state.groups], 128
        )
        pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT)
        specs = _published_specs(pool)
        pids = pool.worker_pids()
        pool.shutdown()
        _assert_unlinked(specs)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if not any(_pid_alive(pid) for pid in pids):
                break
            time.sleep(0.05)
        assert not any(_pid_alive(pid) for pid in pids)

    def test_shutdown_is_idempotent(self):
        pool = PersistentWorkerPool(1)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(EngineWorkerError, match="no longer usable"):
            pool.run_tasks(None, [], timeout=1.0)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True
