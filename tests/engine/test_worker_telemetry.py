"""Worker-side telemetry: shipped deltas, merged families, exact ranks.

Each persistent-pool worker runs a private registry + tracer and ships
counter deltas (and, with timelines on, timestamped span events) back on
its chunk replies; the parent merges them into per-worker-labelled
``repro_engine_worker_*`` families and folds stage seconds into the
active trace.  These tests pin the contract: both workers get series,
telemetry never changes the ranks, ``REPRO_ENGINE_TELEMETRY=0`` turns
the shipping off, and cross-process events share the caller's trace id.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro.engine import PersistentWorkerPool, build_state, plan_chunks
from repro.engine.pool import WORKER_COUNTER_HELP, resolve_telemetry
from repro.models import build_model
from repro.obs import get_registry, set_tracing
from repro.obs.context import TraceContext, use_context
from repro.obs.log import configure_logging

RUN_TIMEOUT = 60.0


@pytest.fixture(autouse=True)
def _tracing_off_after():
    yield
    set_tracing(False)


@pytest.fixture
def pool():
    pool = PersistentWorkerPool(2)
    yield pool
    pool.shutdown(force=True)


@pytest.fixture
def state(tiny_graph):
    model = build_model(
        "distmult", tiny_graph.num_entities, tiny_graph.num_relations, dim=4, seed=0
    )
    return build_state(model, tiny_graph, "test")


def chunk_tasks(state, chunk_size: int = 1):
    return plan_chunks(
        [((g.relation, g.side), g.queries) for g in state.groups], chunk_size
    )


def _chunks_counter():
    return get_registry().counter(
        "repro_engine_worker_chunks_total", labels=("pool", "worker")
    )


class TestMergedFamilies:
    def test_every_worker_gets_a_labelled_series(self, pool, state):
        tasks = chunk_tasks(state)
        assert len(tasks) >= 2  # round-robin must reach both workers
        counter = _chunks_counter()
        before = {
            worker: counter.value(pool=pool.label, worker=worker)
            for worker in ("0", "1")
        }
        pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=True)
        gained = {
            worker: counter.value(pool=pool.label, worker=worker) - before[worker]
            for worker in ("0", "1")
        }
        assert gained["0"] > 0 and gained["1"] > 0
        assert gained["0"] + gained["1"] == len(tasks)

    def test_stage_families_appear_on_the_exposition(self, pool, state):
        pool.run_tasks(state, chunk_tasks(state), timeout=RUN_TIMEOUT, telemetry=True)
        text = get_registry().render()
        for family in (
            "repro_engine_worker_chunks_total",
            "repro_engine_worker_queries_total",
            "repro_engine_worker_entities_total",
            "repro_engine_worker_score_seconds_total",
            "repro_engine_worker_busy_seconds_total",
        ):
            assert family in WORKER_COUNTER_HELP  # documented family
            assert f'{family}{{pool="{pool.label}",worker="0"}}' in text

    def test_attach_seconds_ship_on_the_ready_ack(self, pool, state):
        attach = get_registry().counter(
            "repro_engine_worker_attach_seconds_total", labels=("pool", "worker")
        )
        before = sum(
            attach.value(pool=pool.label, worker=worker) for worker in ("0", "1")
        )
        pool.ensure_state(state)
        after = sum(
            attach.value(pool=pool.label, worker=worker) for worker in ("0", "1")
        )
        assert after > before

    def test_off_ships_nothing(self, pool, state):
        tasks = chunk_tasks(state)
        counter = _chunks_counter()
        before = counter.value(pool=pool.label, worker="0") + counter.value(
            pool=pool.label, worker="1"
        )
        pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=False)
        after = counter.value(pool=pool.label, worker="0") + counter.value(
            pool=pool.label, worker="1"
        )
        assert after == before


class TestExactness:
    def test_ranks_bitwise_equal_telemetry_on_off(self, pool, state):
        tasks = chunk_tasks(state)
        with_telemetry = pool.run_tasks(
            state, tasks, timeout=RUN_TIMEOUT, telemetry=True
        )
        without = pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=False)
        for (ranks_on, scored_on), (ranks_off, scored_off) in zip(
            with_telemetry, without
        ):
            assert scored_on == scored_off
            np.testing.assert_array_equal(ranks_on, ranks_off)

    def test_timeline_run_matches_untimed_run(self, pool, state):
        tasks = chunk_tasks(state)
        baseline = pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=False)
        set_tracing(True)  # timelines on: workers ship events too
        traced = pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=True)
        for (ranks_a, _), (ranks_b, _) in zip(baseline, traced):
            np.testing.assert_array_equal(ranks_a, ranks_b)


class TestResolveTelemetry:
    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY", "0")
        assert resolve_telemetry(True) is True
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY", "1")
        assert resolve_telemetry(False) is False

    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_env_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY", value)
        assert resolve_telemetry() is False

    def test_default_and_truthy_env_enable(self, monkeypatch):
        monkeypatch.delenv("REPRO_ENGINE_TELEMETRY", raising=False)
        assert resolve_telemetry() is True
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY", "1")
        assert resolve_telemetry() is True

    def test_env_kill_switch_reaches_the_pool(self, pool, state, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE_TELEMETRY", "0")
        tasks = chunk_tasks(state)
        counter = _chunks_counter()
        before = counter.value(pool=pool.label, worker="0")
        pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT)  # telemetry=None: env rules
        assert counter.value(pool=pool.label, worker="0") == before


class TestTimeline:
    def test_worker_events_cross_process_on_one_trace(self, pool, state):
        tracer = set_tracing(True)
        tasks = chunk_tasks(state)
        with use_context(TraceContext(trace_id="tel-e2e")):
            pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=True)
        worker_events = [
            event
            for event in tracer.events()
            if event["name"].startswith("engine.worker.")
        ]
        assert worker_events
        names = {event["name"] for event in worker_events}
        assert {
            "engine.worker.queue_wait",
            "engine.worker.score",
            "engine.worker.write",
        } <= names
        pids = {event["pid"] for event in worker_events}
        assert os.getpid() not in pids  # genuinely recorded in the workers
        assert pids == set(pool.worker_pids())
        assert {event["trace_id"] for event in worker_events} == {"tel-e2e"}

    def test_stage_spans_fold_without_duplicate_events(self, pool, state):
        tracer = set_tracing(True, timeline=False)
        tasks = chunk_tasks(state)
        pool.run_tasks(state, tasks, timeout=RUN_TIMEOUT, telemetry=True)
        assert tracer.events() == []  # aggregate fold only, no synthesized events
        spans = {node["name"]: node for node in tracer.summary()["spans"]}
        assert spans["engine.worker.score"]["count"] == len(tasks)
        assert spans["engine.worker.score"]["seconds"] > 0.0


class TestLifecycleLogging:
    def test_pool_lifecycle_emits_correlated_json_lines(self, state):
        stream = io.StringIO()
        try:
            configure_logging(stream)
            pool = PersistentWorkerPool(2)
            pool.run_tasks(
                state, chunk_tasks(state), timeout=RUN_TIMEOUT, telemetry=True
            )
            pool.shutdown()
        finally:
            configure_logging(None)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        events = {line["event"]: line for line in lines}
        assert events["engine.pool.start"]["workers"] == 2
        assert events["engine.state.publish"]["shm_bytes"] > 0
        assert events["engine.pool.shutdown"]["runs"] == 1
