"""Chunk planning and the deterministic task schedule."""

from __future__ import annotations

import pytest

from repro.engine.chunking import (
    ChunkTask,
    grouped_queries,
    ordered_groups,
    plan_chunks,
    query_chunks,
)


class TestPlanChunks:
    def test_covers_every_query_exactly_once(self, tiny_graph):
        groups = ordered_groups(tiny_graph, "train")
        tasks = plan_chunks(groups, chunk_size=2)
        total_queries = sum(len(queries) for _, queries in groups)
        assert sum(t.num_queries for t in tasks) == total_queries
        # Chunks of one group tile [0, len) without gaps or overlaps.
        for index, (_, queries) in enumerate(groups):
            spans = sorted(
                (t.start, t.stop) for t in tasks if t.group == index
            )
            assert spans[0][0] == 0
            assert spans[-1][1] == len(queries)
            for (_, stop), (start, _) in zip(spans, spans[1:]):
                assert stop == start

    def test_tasks_carry_their_group_identity(self, tiny_graph):
        groups = ordered_groups(tiny_graph, "test")
        tasks = plan_chunks(groups, chunk_size=128)
        for task in tasks:
            (relation, side), _ = groups[task.group]
            assert task.relation == relation
            assert task.side == side

    def test_chunk_size_bounds_every_task(self, tiny_graph):
        tasks = plan_chunks(ordered_groups(tiny_graph, "train"), chunk_size=1)
        assert all(t.num_queries == 1 for t in tasks)

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(ValueError, match="chunk_size"):
            plan_chunks([], chunk_size=0)

    def test_empty_split_plans_no_tasks(self, gates_graph):
        # gates_graph has no test triples at all.
        assert plan_chunks(ordered_groups(gates_graph, "test")) == []

    def test_schedule_is_deterministic(self, tiny_graph):
        a = plan_chunks(ordered_groups(tiny_graph, "train"), chunk_size=2)
        b = plan_chunks(ordered_groups(tiny_graph, "train"), chunk_size=2)
        assert a == b
        assert all(isinstance(t, ChunkTask) for t in a)


class TestQueryChunks:
    def test_slices_tile_the_range(self):
        slices = list(query_chunks(10, 3))
        assert [(s.start, s.stop) for s in slices] == [
            (0, 3), (3, 6), (6, 9), (9, 10),
        ]

    def test_zero_queries_yield_nothing(self):
        assert list(query_chunks(0)) == []


class TestOrderedGroups:
    def test_matches_grouped_queries_order(self, tiny_graph):
        groups = ordered_groups(tiny_graph, "valid")
        mapping = grouped_queries(tiny_graph, "valid")
        assert [key for key, _ in groups] == list(mapping.keys())
        assert [queries for _, queries in groups] == list(mapping.values())
