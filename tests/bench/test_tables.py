"""Table rendering."""

from repro.bench import render_series, render_table


class TestRenderTable:
    def test_empty(self):
        assert "(no rows)" in render_table([])

    def test_alignment_and_header(self):
        out = render_table([{"A": 1, "Blong": "x"}, {"A": 22, "Blong": "yy"}])
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert "Blong" in lines[0]
        assert set(lines[1]) <= {"-", " "}
        assert len({len(line) for line in lines if line.strip()}) <= 2

    def test_float_formatting(self):
        out = render_table([{"v": 0.123456}], float_digits=2)
        assert "0.12" in out

    def test_missing_cells_render_empty(self):
        out = render_table([{"a": 1, "b": 2}, {"a": 3}], columns=["a", "b"])
        assert out.splitlines()[-1].split()[0] == "3"

    def test_title(self):
        assert render_table([{"a": 1}], title="Table 4").startswith("Table 4")

    def test_explicit_column_order(self):
        out = render_table([{"a": 1, "b": 2}], columns=["b", "a"])
        header = out.splitlines()[0].split()
        assert header == ["b", "a"]


class TestRenderSeries:
    def test_one_column_per_series(self):
        out = render_series([0.1, 0.2], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, x_label="f")
        header = out.splitlines()[0].split()
        assert header == ["f", "s1", "s2"]

    def test_short_series_pads(self):
        out = render_series([1, 2, 3], {"s": [9.0]})
        assert len(out.splitlines()) == 5
