"""Figure drivers not covered by the basic experiments tests."""

import numpy as np
import pytest

from repro.bench import (
    evaluate_epoch,
    fig3c_training_curve,
    run_training_study,
)
from repro.bench.runner import _prepare_pools
from repro.datasets import load
from repro.models import OracleModel


@pytest.fixture(scope="module")
def tiny_study():
    return run_training_study(
        "codex-s-lite", "transe", epochs=2, dim=8, with_kp=False
    )


class TestFig3c:
    def test_series_shape(self, tiny_study):
        series = fig3c_training_curve(tiny_study)
        assert set(series) == {"True", "Random", "Probabilistic", "Static"}
        assert all(len(v) == 2 for v in series.values())

    def test_hits_metric_variant(self, tiny_study):
        series = fig3c_training_curve(tiny_study, metric="hits@10")
        assert all(0.0 <= x <= 1.0 for x in series["True"])


class TestEvaluateEpoch:
    def test_without_kp_yields_nan_values(self):
        dataset = load("codex-s-lite")
        graph = dataset.graph
        pools = _prepare_pools(graph, dataset.types, "l-wd", 0.1, seed=0)
        record = evaluate_epoch(
            OracleModel(graph, seed=0), graph, pools, epoch=0, with_kp=False
        )
        assert all(np.isnan(v) for v in record.kp_values.values())
        assert record.true_metrics.mrr > 0

    def test_with_kp(self):
        dataset = load("codex-s-lite")
        graph = dataset.graph
        pools = _prepare_pools(graph, dataset.types, "l-wd", 0.1, seed=0)
        record = evaluate_epoch(
            OracleModel(graph, seed=0), graph, pools, epoch=0, kp_triples=40
        )
        assert all(np.isfinite(v) for v in record.kp_values.values())
        assert record.speedup("static") > 0
        assert record.kp_speedup("random") > 0
