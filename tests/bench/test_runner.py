"""Training-study runner (small epochs; the heavy path is the benchmarks')."""

import numpy as np
import pytest

from repro.bench import run_training_study, table6_mae, table7_correlation, table9_speedup
from repro.bench.runner import DEFAULT_LOSSES


@pytest.fixture(scope="module")
def study():
    return run_training_study(
        "codex-s-lite", "distmult", epochs=3, dim=12, with_kp=True, kp_triples=60
    )


class TestStudy:
    def test_one_record_per_epoch(self, study):
        assert len(study.records) == 3
        assert [r.epoch for r in study.records] == [0, 1, 2]

    def test_series_extraction(self, study):
        truth = study.series("true", "mrr")
        estimate = study.series("static", "mrr")
        kp = study.series("kp:random")
        assert len(truth) == len(estimate) == len(kp) == 3
        assert all(np.isfinite(truth))

    def test_estimates_cover_all_strategies(self, study):
        record = study.records[0]
        assert set(record.estimated) == {"random", "probabilistic", "static"}
        assert set(record.kp_values) == {"random", "probabilistic", "static"}

    def test_hits_metrics_available(self, study):
        series = study.series("probabilistic", "hits@10")
        assert all(0.0 <= v <= 1.0 for v in series)

    def test_speedup_accessors(self, study):
        mean, std = study.mean_speedup("static")
        assert mean > 0
        full_mean, _ = study.mean_full_seconds()
        assert full_mean > 0

    def test_default_losses_cover_all_models(self):
        from repro.models import available_models

        assert set(DEFAULT_LOSSES) == set(available_models())


class TestTableDrivers:
    def test_table6_rows(self, study):
        rows = table6_mae([study])
        assert len(rows) == 1
        row = rows[0]
        assert {"Dataset", "Model", "R", "P", "S"} <= set(row)
        assert row["R"] >= 0

    def test_table7_rows(self, study):
        row = table7_correlation([study])[0]
        for column in ("KP R", "KP P", "KP S", "Rank R", "Rank P", "Rank S"):
            assert -1.0 <= row[column] <= 1.0

    def test_table9_rows(self, study):
        row = table9_speedup([study])[0]
        assert "Full eval (s)" in row
        assert "±" in row["Rank S (x)"]

    def test_kendall_needs_multiple_models(self, study):
        from repro.bench import table8_kendall

        with pytest.raises(ValueError):
            table8_kendall([study])

    def test_kendall_rejects_mixed_datasets(self, study):
        from copy import deepcopy

        from repro.bench import table8_kendall

        other = deepcopy(study)
        other.dataset_name = "other"
        with pytest.raises(ValueError, match="datasets"):
            table8_kendall([study, other])
