"""EarlyStopping: the estimate-driven stopping loop."""

import pytest

from repro.bench import EarlyStopping
from repro.core import EvaluationProtocol
from repro.models import Trainer, TrainingConfig, build_model


class _FakeProtocol:
    """Yields a scripted metric sequence (rises, then plateaus)."""

    def __init__(self, values):
        self.values = list(values)
        self.calls = 0

    def evaluate(self, model, split="valid"):
        value = self.values[min(self.calls, len(self.values) - 1)]
        self.calls += 1

        class _Result:
            class metrics:  # noqa: N801 — mimic RankingMetrics.metric()
                @staticmethod
                def metric(name):
                    return value

        return _Result()


class TestEarlyStopping:
    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(_FakeProtocol([1.0]), patience=0)

    def test_flags_plateau_after_patience(self):
        stopper = EarlyStopping(_FakeProtocol([0.1, 0.2, 0.2, 0.2, 0.2]), patience=2)

        class _History:
            def attach(self, key, value):
                pass

        for epoch in range(5):
            stopper(epoch, model=None, history=_History())
        assert stopper.should_stop
        assert stopper.best_epoch == 1
        assert stopper.best_value == pytest.approx(0.2)

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(
            _FakeProtocol([0.1, 0.1, 0.3, 0.3, 0.3]), patience=3
        )

        class _History:
            def attach(self, key, value):
                pass

        for epoch in range(5):
            stopper(epoch, model=None, history=_History())
        assert not stopper.should_stop
        assert stopper.best_epoch == 2

    def test_integrates_with_trainer(self, codex_s):
        graph = codex_s.graph
        protocol = EvaluationProtocol(graph, strategy="static", sample_fraction=0.1, seed=0)
        protocol.prepare()
        stopper = EarlyStopping(protocol, patience=2)
        model = build_model("distmult", graph.num_entities, graph.num_relations, dim=8)
        history = Trainer(TrainingConfig(epochs=3, loss="softplus")).fit(
            model, graph, callbacks=[stopper]
        )
        assert len(stopper.history) == 3
        assert history.extras["estimated_mrr"] == stopper.history
        assert stopper.best_epoch >= 0
