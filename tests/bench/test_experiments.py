"""Experiment drivers: row shapes and headline invariants (small configs)."""

import pytest

from repro.bench import (
    fig3a_time_vs_samples,
    fig3b_metric_vs_samples,
    fig4_mape_sweep,
    table2_easy_negatives,
    table3_sampling_complexity,
    table4_dataset_statistics,
    table5_recommenders,
    table10_false_negative_audit,
)


class TestTable2:
    @pytest.fixture(scope="class")
    def outcome(self):
        return table2_easy_negatives(("codex-s-lite",))

    def test_row_shape(self, outcome):
        rows, reports = outcome
        assert len(rows) == 1
        assert rows[0]["Dataset"] == "codex-s-lite"
        assert rows[0]["Easy negatives"] > 1000

    def test_false_negatives_tiny(self, outcome):
        rows, _ = outcome
        assert rows[0]["False easy negatives"] < rows[0]["Easy negatives"] / 100

    def test_audit_rows_labelled(self, outcome):
        _, reports = outcome
        audit = table10_false_negative_audit(reports)
        for row in audit:
            assert set(row) == {"Dataset", "Head", "Relation", "Tail", "Split", "Zero side"}


class TestTable3:
    def test_reduction_always_positive(self):
        rows = table3_sampling_complexity(("codex-s-lite",))
        assert rows[0]["Sampling reduction"] > 1.0


class TestTable4:
    def test_all_zoo_rows(self):
        rows = table4_dataset_statistics(("codex-s-lite", "codex-m-lite"))
        assert [row["Dataset"] for row in rows] == ["codex-s-lite", "codex-m-lite"]
        assert all(row["|T S|".replace(" ", "")] > 0 for row in rows)


class TestTable5:
    @pytest.fixture(scope="class")
    def rows(self):
        return table5_recommenders(("codex-s-lite",), ("pt", "l-wd", "ontosim"))

    def test_pt_unseen_recall_zero(self, rows):
        pt = next(row for row in rows if row["Model"] == "pt")
        assert pt["CR Unseen"] == 0.0

    def test_lwd_sees_unseen(self, rows):
        lwd = next(row for row in rows if row["Model"] == "l-wd")
        assert lwd["CR Unseen"] > 0.0

    def test_ontosim_high_recall_low_rr(self, rows):
        onto = next(row for row in rows if row["Model"] == "ontosim")
        pt = next(row for row in rows if row["Model"] == "pt")
        assert onto["CR Test"] >= pt["CR Test"]
        assert onto["RR"] <= pt["RR"]


class TestFigures:
    def test_fig3a_series_lengths(self):
        result = fig3a_time_vs_samples("codex-s-lite", fractions=(0.05, 0.2), dim=8)
        assert len(result.fractions) == 2
        for series in result.seconds_by_strategy.values():
            assert len(series) == 2
        assert result.full_seconds > 0

    def test_fig3b_random_most_optimistic(self):
        result = fig3b_metric_vs_samples(
            "codex-s-lite", fractions=(0.05, 0.3), skill=1.5
        )
        for i in range(2):
            assert (
                result.estimates_by_strategy["random"][i]
                >= result.estimates_by_strategy["static"][i]
            )
        assert result.estimates_by_strategy["static"][-1] >= result.true_value - 0.05

    def test_fig4_mape_decreases_with_samples(self):
        result = fig4_mape_sweep(
            "codex-s-lite",
            recommender_names=("l-wd",),
            fractions=(0.02, 0.4),
            repeats=2,
        )
        curve = result.mape_by_recommender["l-wd"]
        assert curve[0].mean > curve[-1].mean
        assert all(ci.num_samples == 4 for ci in curve)  # 2 repeats x 2 strategies
