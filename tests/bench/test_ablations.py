"""Ablation drivers (tiny configs; the full runs live in benchmarks/)."""

import pytest

from repro.bench.ablations import (
    ablation_include_observed,
    ablation_training_negatives,
    ablation_type_quality,
)


class TestTypeQuality:
    @pytest.fixture(scope="class")
    def rows(self):
        return ablation_type_quality(
            "codex-s-lite",
            recommender_names=("dbh-t", "l-wd"),
            drop_fractions=(0.0, 0.9),
        )

    def test_grid_complete(self, rows):
        assert len(rows) == 4

    def test_lwd_immune_to_type_damage(self, rows):
        lwd = [row for row in rows if row["Model"] == "l-wd"]
        assert lwd[0]["CR Test"] == lwd[1]["CR Test"]

    def test_typed_recommender_degrades(self, rows):
        dbh = {row["Types dropped"]: row for row in rows if row["Model"] == "dbh-t"}
        assert dbh["90%"]["CR Unseen"] < dbh["0%"]["CR Unseen"]


class TestIncludeObserved:
    def test_pt_union_never_hurts_recall(self):
        rows = ablation_include_observed("codex-s-lite")
        with_union = next(row for row in rows if row["PT union"] == "yes")
        without = next(row for row in rows if row["PT union"] == "no")
        assert with_union["CR Test"] >= without["CR Test"]


class TestTrainingNegatives:
    def test_rows_and_labels(self):
        result = ablation_training_negatives(
            "codex-s-lite", model_name="distmult", epochs=2, dim=8
        )
        labels = [row["Negatives"] for row in result.rows]
        assert labels == [
            "uniform",
            "support, mix 0.5",
            "support, mix 0.2",
            "proportional, mix 0.2",
        ]
        assert all(0.0 <= mrr <= 1.0 for mrr in result.mrr_by_label.values())
