"""Ranking metrics: ranks, aggregation, AUC scores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    RankingMetrics,
    aggregate_ranks,
    average_precision,
    merge_metrics,
    rank_of,
    ranks_from_score_matrix,
    roc_auc,
)


class TestRankOf:
    def test_best(self):
        assert rank_of(1.0, np.array([0.1, 0.2])) == 1.0

    def test_worst(self):
        assert rank_of(0.0, np.array([0.1, 0.2])) == 3.0

    def test_tie_counts_half(self):
        # One tied competitor: mean of ranks 1 and 2.
        assert rank_of(0.5, np.array([0.5, 0.1])) == 1.5
        # Two tied competitors: mean of ranks 1, 2 and 3.
        assert rank_of(0.5, np.array([0.5, 0.5])) == 2.0

    def test_empty_candidates(self):
        assert rank_of(0.5, np.empty(0)) == 1.0


class TestRanksFromMatrix:
    def test_matches_rank_of(self, rng):
        scores = rng.standard_normal((6, 10))
        truths = rng.integers(10, size=6)
        ranks = ranks_from_score_matrix(scores, truths)
        for i in range(6):
            others = np.delete(scores[i], truths[i])
            assert ranks[i] == pytest.approx(rank_of(scores[i, truths[i]], others))

    def test_filter_mask_excludes(self, rng):
        scores = np.array([[0.9, 0.5, 0.8]])
        mask = np.array([[True, False, False]])  # filter the best candidate
        ranks = ranks_from_score_matrix(scores, np.array([1]), mask)
        assert ranks[0] == 2.0

    def test_truth_survives_own_filter(self):
        scores = np.array([[0.9, 0.5]])
        mask = np.array([[False, True]])  # truth marked known
        ranks = ranks_from_score_matrix(scores, np.array([1]), mask)
        assert ranks[0] == 2.0


class TestAggregate:
    def test_hand_computed(self):
        metrics = aggregate_ranks([1.0, 2.0, 4.0])
        assert metrics.mrr == pytest.approx((1 + 0.5 + 0.25) / 3)
        assert metrics.hits_at(1) == pytest.approx(1 / 3)
        assert metrics.hits_at(3) == pytest.approx(2 / 3)
        assert metrics.mean_rank == pytest.approx(7 / 3)
        assert metrics.num_queries == 3

    def test_empty(self):
        metrics = aggregate_ranks([])
        assert metrics.mrr == 0.0
        assert metrics.num_queries == 0

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            aggregate_ranks([0.5])

    def test_metric_lookup(self):
        metrics = aggregate_ranks([1.0, 2.0])
        assert metrics.metric("mrr") == metrics.mrr
        assert metrics.metric("hits@10") == metrics.hits_at(10)
        assert metrics.metric("mean_rank") == metrics.mean_rank
        with pytest.raises(KeyError):
            metrics.metric("ndcg")

    def test_as_dict(self):
        d = aggregate_ranks([1.0]).as_dict()
        assert set(d) == {"mrr", "mean_rank", "hits@1", "hits@3", "hits@10"}

    @settings(max_examples=50)
    @given(st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=50))
    def test_property_mrr_bounds(self, ranks):
        metrics = aggregate_ranks(ranks)
        assert 0.0 < metrics.mrr <= 1.0
        assert metrics.hits_at(1) <= metrics.hits_at(3) <= metrics.hits_at(10)


class TestMerge:
    def test_weighted_by_query_count(self):
        a = aggregate_ranks([1.0])  # mrr 1.0, 1 query
        b = aggregate_ranks([2.0, 2.0, 2.0])  # mrr 0.5, 3 queries
        merged = merge_metrics([a, b])
        assert merged.mrr == pytest.approx((1.0 + 3 * 0.5) / 4)
        assert merged.num_queries == 4

    def test_merge_equals_joint_aggregation(self, rng):
        ranks = rng.integers(1, 50, size=20).astype(float)
        joint = aggregate_ranks(ranks)
        merged = merge_metrics([aggregate_ranks(ranks[:7]), aggregate_ranks(ranks[7:])])
        assert merged.mrr == pytest.approx(joint.mrr)
        assert merged.hits_at(10) == pytest.approx(joint.hits_at(10))

    def test_empty_parts_skipped(self):
        merged = merge_metrics([aggregate_ranks([]), aggregate_ranks([1.0])])
        assert merged.num_queries == 1

    def test_all_empty(self):
        assert merge_metrics([]).num_queries == 0


class TestAUC:
    def test_perfect_separation(self):
        assert roc_auc(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_chance_level(self):
        assert roc_auc(np.array([1.0]), np.array([1.0])) == 0.5

    def test_inverted(self):
        assert roc_auc(np.array([0.0]), np.array([1.0])) == 0.0

    def test_needs_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.empty(0), np.array([1.0]))

    def test_average_precision_perfect(self):
        assert average_precision(np.array([2.0, 3.0]), np.array([0.0])) == 1.0

    def test_average_precision_hand_computed(self):
        # Order: pos(3), neg(2), pos(1) -> AP = (1/1 + 2/3) / 2.
        ap = average_precision(np.array([3.0, 1.0]), np.array([2.0]))
        assert ap == pytest.approx((1.0 + 2.0 / 3.0) / 2.0)

    @settings(max_examples=40)
    @given(
        pos=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=20),
        neg=st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=20),
    )
    def test_property_auc_bounds(self, pos, neg):
        value = roc_auc(np.asarray(pos), np.asarray(neg))
        assert 0.0 <= value <= 1.0
