"""CR / RR trade-off primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import TradeoffPoint, candidate_recall, reduction_rate


class TestTradeoffPoint:
    def test_distance_to_ideal(self):
        point = TradeoffPoint(candidate_recall=1.0, reduction_rate=0.0)
        assert point.distance_to_ideal() == pytest.approx(1.0)

    def test_ideal_point_has_zero_distance(self):
        assert TradeoffPoint(1.0, 1.0).distance_to_ideal() == 0.0

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            TradeoffPoint(1.5, 0.5)
        with pytest.raises(ValueError):
            TradeoffPoint(0.5, -0.1)

    @given(
        cr=st.floats(0, 1, allow_nan=False),
        rr=st.floats(0, 1, allow_nan=False),
    )
    def test_property_distance_formula(self, cr, rr):
        point = TradeoffPoint(cr, rr)
        assert point.distance_to_ideal() == pytest.approx(
            math.hypot(1 - cr, 1 - rr)
        )


class TestCandidateRecall:
    def test_full_recall(self):
        assert candidate_recall(5, 5) == 1.0

    def test_zero_truths_is_perfect(self):
        assert candidate_recall(0, 0) == 1.0

    def test_partial(self):
        assert candidate_recall(3, 4) == 0.75

    def test_hits_beyond_truths_rejected(self):
        with pytest.raises(ValueError):
            candidate_recall(5, 4)


class TestReductionRate:
    def test_keeping_everything(self):
        assert reduction_rate(10, 10) == 0.0

    def test_keeping_nothing(self):
        assert reduction_rate(0, 10) == 1.0

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            reduction_rate(11, 10)
        with pytest.raises(ValueError):
            reduction_rate(1, 0)
