"""Agreement metrics: Pearson, Kendall, MAE/MAPE, confidence intervals."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    IntervalEstimate,
    kendall_tau,
    mae,
    mape,
    mean_confidence_interval,
    pearson,
)

series = st.lists(st.floats(-100, 100, allow_nan=False), min_size=3, max_size=30)


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_is_zero(self):
        assert pearson([1, 1, 1], [1, 2, 3]) == 0.0

    def test_single_point_is_zero(self):
        assert pearson([1], [2]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_matches_numpy(self, rng):
        x = rng.standard_normal(50)
        y = 0.3 * x + rng.standard_normal(50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    @settings(max_examples=40)
    @given(a=series)
    def test_property_bounds_and_self_correlation(self, a):
        x = np.asarray(a)
        value = pearson(x, x)
        assert value == pytest.approx(1.0) or value == 0.0  # 0 for constants
        assert -1.0 - 1e-9 <= pearson(x, x[::-1]) <= 1.0 + 1e-9


class TestKendall:
    def test_identical_order(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_reversed_order(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_hand_computed_with_tie(self):
        # x: 1,2,3 ; y: 1,1,2 -> C=2, D=0, ties_y=1, n0=3.
        expected = 2 / math.sqrt(3 * 2)
        assert kendall_tau([1, 2, 3], [1, 1, 2]) == pytest.approx(expected)

    def test_constant_series(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3]) == 0.0

    def test_matches_scipy(self, rng):
        from scipy.stats import kendalltau

        x = rng.standard_normal(30)
        y = rng.standard_normal(30)
        assert kendall_tau(x, y) == pytest.approx(kendalltau(x, y).statistic)

    @settings(max_examples=40)
    @given(a=series, data=st.data())
    def test_property_bounded(self, a, data):
        b = data.draw(st.permutations(a))
        assert -1.0 - 1e-9 <= kendall_tau(a, b) <= 1.0 + 1e-9


class TestErrors:
    def test_mae(self):
        assert mae([1.0, 2.0], [1.5, 1.5]) == pytest.approx(0.5)

    def test_mae_empty(self):
        assert mae([], []) == 0.0

    def test_mape_percent(self):
        assert mape([1.1], [1.0]) == pytest.approx(10.0)

    def test_mape_skips_zero_truths(self):
        assert mape([5.0, 1.1], [0.0, 1.0]) == pytest.approx(10.0)

    def test_mape_all_zero_truths(self):
        assert mape([5.0], [0.0]) == 0.0

    @settings(max_examples=40)
    @given(a=series)
    def test_property_zero_error_on_self(self, a):
        assert mae(a, a) == 0.0
        assert mape(a, a) == pytest.approx(0.0, abs=1e-9)


class TestConfidenceInterval:
    def test_empty(self):
        interval = mean_confidence_interval([])
        assert interval.num_samples == 0

    def test_single_sample_has_zero_width(self):
        interval = mean_confidence_interval([3.0])
        assert interval.mean == 3.0
        assert interval.half_width == 0.0

    def test_hand_computed(self):
        interval = mean_confidence_interval([1.0, 2.0, 3.0], z=2.0)
        assert interval.mean == pytest.approx(2.0)
        assert interval.half_width == pytest.approx(2.0 * 1.0 / math.sqrt(3))
        assert interval.low == pytest.approx(interval.mean - interval.half_width)
        assert interval.high == pytest.approx(interval.mean + interval.half_width)

    def test_width_shrinks_with_samples(self, rng):
        small = mean_confidence_interval(rng.standard_normal(10))
        large = mean_confidence_interval(rng.standard_normal(1000))
        assert large.half_width < small.half_width

    def test_repr(self):
        assert "±" in repr(IntervalEstimate(mean=1.0, half_width=0.1, num_samples=5))


class TestEmptyAndDegenerateSeries:
    """Edge cases: empty rank series, single points, all-tie series."""

    def test_pearson_empty_series_is_zero(self):
        assert pearson([], []) == 0.0

    def test_kendall_empty_series_is_zero(self):
        assert kendall_tau([], []) == 0.0

    def test_kendall_single_point_is_zero(self):
        assert kendall_tau([1.0], [2.0]) == 0.0

    def test_kendall_one_constant_series_is_zero(self):
        assert kendall_tau([1.0, 1.0, 1.0], [1.0, 2.0, 3.0]) == 0.0

    def test_kendall_two_points_tied_in_both(self):
        assert kendall_tau([2.0, 2.0], [5.0, 5.0]) == 0.0

    def test_mape_empty_series_is_zero(self):
        assert mape([], []) == 0.0

    def test_mae_against_single_element(self):
        assert mae([2.5], [2.0]) == pytest.approx(0.5)

    def test_pearson_two_identical_points_is_zero(self):
        # Two equal x values make the denominator vanish.
        assert pearson([3.0, 3.0], [1.0, 2.0]) == 0.0

    def test_interval_of_identical_values_has_zero_width(self):
        interval = mean_confidence_interval([4.0, 4.0, 4.0, 4.0])
        assert interval.mean == 4.0
        assert interval.half_width == 0.0
        assert interval.num_samples == 4

    def test_mismatched_lengths_rejected_everywhere(self):
        for fn in (pearson, kendall_tau, mae, mape):
            with pytest.raises(ValueError, match="equal-length"):
                fn([1.0, 2.0], [1.0])

    def test_two_dimensional_input_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            pearson([[1.0, 2.0]], [[1.0, 2.0]])
