"""Model selection with fast estimates (the paper's Table 8 use case).

A practitioner tuning a KGC model wants to know, *during training*, which
configuration is currently best — without paying for a full evaluation at
every epoch.  This example sweeps ComplEx over three embedding capacities
(a genuinely separable quality axis), tracks each run's estimated
validation MRR with static sampling, and shows the estimate picks the same
winner the full evaluation picks.

Run:  python examples/model_selection.py
"""

from repro.core import EvaluationProtocol
from repro.datasets import load
from repro.metrics import kendall_tau
from repro.models import Trainer, TrainingConfig, build_model

DIMS = (2, 8, 32)
EPOCHS = 6


def main() -> None:
    dataset = load("codex-s-lite")
    graph = dataset.graph
    print(f"Dataset: {graph}")
    print(f"Candidates: ComplEx with dim in {DIMS}\n")

    protocol = EvaluationProtocol(
        graph, recommender="l-wd", strategy="static", sample_fraction=0.1, seed=0
    )
    protocol.prepare()

    estimated: dict[int, list[float]] = {}
    true: dict[int, list[float]] = {}
    for dim in DIMS:
        model = build_model(
            "complex", graph.num_entities, graph.num_relations, dim=dim, seed=0
        )
        estimated[dim] = []
        true[dim] = []

        def track(epoch, current, history, dim=dim):
            estimated[dim].append(protocol.evaluate(current, split="valid").metrics.mrr)
            true[dim].append(protocol.evaluate_full(current, split="valid").metrics.mrr)

        config = TrainingConfig(epochs=EPOCHS, lr=0.05, loss="softplus", seed=0)
        Trainer(config).fit(model, graph, callbacks=[track])
        print(
            f"dim={dim:3d}  estimated MRR per epoch: "
            + " ".join(f"{v:.3f}" for v in estimated[dim])
        )

    print("\nPer-epoch winner (estimated vs true):")
    agreements = 0
    for epoch in range(EPOCHS):
        est_winner = max(DIMS, key=lambda d: estimated[d][epoch])
        true_winner = max(DIMS, key=lambda d: true[d][epoch])
        mark = "==" if est_winner == true_winner else "!="
        agreements += est_winner == true_winner
        print(f"  epoch {epoch}: dim={est_winner:<3d} {mark} dim={true_winner}")
    print(f"\nWinner agreement: {agreements}/{EPOCHS} epochs")

    final_tau = kendall_tau(
        [estimated[d][-1] for d in DIMS], [true[d][-1] for d in DIMS]
    )
    print(f"Final-epoch Kendall-tau of the configuration ordering: {final_tau:.2f}")


if __name__ == "__main__":
    main()
