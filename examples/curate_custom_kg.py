"""Curating a custom knowledge graph with easy-negative mining.

The knowledge-engineer workflow behind the paper's Tables 2 and 10: load
your own triples, fit the L-WD relation recommender, mine the entities
that can safely be ruled out of every domain/range, and audit the rare
*false* easy negatives — in real KGs these are almost always curation
errors worth fixing (the paper found ``(MonthOfAugust, gender, male)``
in FB15k-237's test set this way).

Run:  python examples/curate_custom_kg.py
"""

import tempfile
from pathlib import Path

from repro.core import EasyNegativeClassifier, mine_easy_negatives
from repro.kg.io import load_graph_dir, write_triples
from repro.recommenders import build_recommender

# A miniature movie KG with one deliberately broken statement at the end.
TRIPLES = [
    ("RidleyScott", "directed", "Alien"),
    ("RidleyScott", "directed", "BladeRunner"),
    ("JamesCameron", "directed", "Titanic"),
    ("JamesCameron", "directed", "Avatar"),
    ("SigourneyWeaver", "actedIn", "Alien"),
    ("SigourneyWeaver", "actedIn", "Avatar"),
    ("KateWinslet", "actedIn", "Titanic"),
    ("HarrisonFord", "actedIn", "BladeRunner"),
    ("Alien", "releasedIn", "Y1979"),
    ("BladeRunner", "releasedIn", "Y1982"),
    ("Titanic", "releasedIn", "Y1997"),
    ("Avatar", "releasedIn", "Y2009"),
    ("RidleyScott", "bornIn", "England"),
    ("JamesCameron", "bornIn", "Canada"),
    ("KateWinslet", "bornIn", "England"),
]
TEST_TRIPLES = [
    ("HarrisonFord", "actedIn", "Alien"),  # plausible missing link
    ("Y1979", "directed", "KateWinslet"),  # broken statement (year directs?)
]


def main() -> None:
    # 1. Persist and reload through the TSV interface (your pipeline here).
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp) / "movies"
        directory.mkdir()
        write_triples(directory / "train.tsv", TRIPLES)
        write_triples(directory / "test.tsv", TEST_TRIPLES)
        graph = load_graph_dir(directory, name="movies")
    print(f"Loaded {graph}")

    # 2. Fit the parameter-free recommender on the training structure.
    fitted = build_recommender("l-wd").fit(graph)
    print(f"Fitted {fitted}")

    # 3. Mine easy negatives and audit the dataset against them.
    report = mine_easy_negatives(fitted, graph)
    print(
        f"\nEasy negatives: {report.easy_negatives:,} of {report.total_slots:,} "
        f"(entity, relation-side) slots ({100 * report.easy_fraction:.1f}%) can be "
        "ruled out before any model scores them."
    )
    print(f"False easy negatives found: {report.num_false}")
    for false_negative in report.false_easy_negatives:
        head, relation, tail = false_negative.labelled(graph)
        print(
            f"  ({head}, {relation}, {tail}) in {false_negative.split} — "
            f"zero score on the {false_negative.zero_side} side. "
            "Inspect: likely a curation error."
        )

    # 4. Use the zero-score rule as a closed-world triple classifier (§7).
    classifier = EasyNegativeClassifier(fitted)
    candidates = [
        ("KateWinslet", "actedIn", "Avatar"),
        ("Avatar", "releasedIn", "KateWinslet"),
    ]
    print("\nTriple classification by the easy-negative rule:")
    for head, relation, tail in candidates:
        verdict = classifier.classify(
            graph.entities.id_of(head),
            graph.relations.id_of(relation),
            graph.entities.id_of(tail),
        )
        print(f"  ({head}, {relation}, {tail}): {'plausible' if verdict else 'rejected'}")


if __name__ == "__main__":
    main()
