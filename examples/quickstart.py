"""Quickstart: estimate a KGC model's ranking metrics fast and accurately.

Loads a small benchmark analogue, trains a ComplEx embedding model,
then compares three ways to measure it:

1. the full filtered ranking protocol (the slow ground truth);
2. OGB-style uniform random sampling (fast but optimistic);
3. this library's recommender-guided static sampling (fast *and* close).

Run:  python examples/quickstart.py
"""

from repro.core import EvaluationProtocol
from repro.datasets import load
from repro.models import Trainer, TrainingConfig, build_model


def main() -> None:
    # 1. Data: a scaled-down analogue of CoDEx-M (generated offline).
    dataset = load("codex-m-lite")
    graph = dataset.graph
    print(f"Dataset: {graph}")

    # 2. Train a ComplEx model for a few epochs.
    model = build_model(
        "complex", graph.num_entities, graph.num_relations, dim=32, seed=0
    )
    config = TrainingConfig(epochs=8, lr=0.05, loss="softplus", seed=0)
    history = Trainer(config).fit(model, graph)
    print(f"Trained {model.name}: loss {history.losses[0]:.3f} -> {history.losses[-1]:.3f}")

    # 3. The expensive ground truth: rank every entity for every test query.
    protocol = EvaluationProtocol(
        graph,
        recommender="l-wd",
        strategy="static",
        sample_fraction=0.1,
        types=dataset.types,
        seed=0,
    )
    protocol.prepare()
    truth = protocol.evaluate_full(model)
    print(
        f"\nFull filtered ranking   : MRR={truth.metrics.mrr:.3f} "
        f"H@10={truth.metrics.hits_at(10):.3f}  ({truth.seconds:.2f}s, "
        f"{truth.num_scored:,} scores)"
    )

    # 4. The OGB-style baseline: uniform random candidates.
    random_protocol = EvaluationProtocol(
        graph, strategy="random", sample_fraction=0.1, seed=0
    )
    random_estimate = random_protocol.evaluate(model)
    print(
        f"Random sampling (10%)   : MRR={random_estimate.metrics.mrr:.3f} "
        f"H@10={random_estimate.metrics.hits_at(10):.3f}  "
        f"({random_estimate.seconds:.2f}s)  <- optimistic!"
    )

    # 5. The framework: L-WD-guided static candidate sets.
    guided_estimate = protocol.evaluate(model)
    print(
        f"L-WD static sampling    : MRR={guided_estimate.metrics.mrr:.3f} "
        f"H@10={guided_estimate.metrics.hits_at(10):.3f}  "
        f"({guided_estimate.seconds:.2f}s)  <- close to the truth"
    )

    random_error = abs(random_estimate.metrics.mrr - truth.metrics.mrr)
    guided_error = abs(guided_estimate.metrics.mrr - truth.metrics.mrr)
    print(
        f"\nAbsolute MRR error: random={random_error:.3f}, guided={guided_error:.3f} "
        f"({random_error / max(guided_error, 1e-9):.1f}x more accurate)"
    )


if __name__ == "__main__":
    main()
