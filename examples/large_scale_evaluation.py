"""Large-scale evaluation: the paper's headline 'seconds instead of minutes'.

On the biggest zoo dataset, compare the wall-clock cost and the accuracy
of the full evaluation against probabilistic sampling at 2% of |E| —
the operating point the paper highlights on ogbl-wikikg2 ("accurate
estimations of the full, filtered ranking in 20 seconds instead of 30
minutes").

On a multi-core machine, set ``workers`` below (or pass ``--workers`` to
``repro evaluate``) to fan the ranking chunks across processes — the
ranks are bitwise-identical at any worker count.

Run:  python examples/large_scale_evaluation.py
"""

import time

from repro.core import EvaluationProtocol
from repro.datasets import load
from repro.models import OracleModel

#: Scoring processes per ranking pass; 1 = serial, -1 = all cores.
WORKERS = 1


def main() -> None:
    dataset = load("wikikg2-xl")
    graph = dataset.graph
    print(f"Dataset: {graph}")

    # A pre-trained model stand-in whose true MRR sits in the usual range.
    model = OracleModel(graph, skill=1.0, seed=0)

    protocol = EvaluationProtocol(
        graph,
        recommender="l-wd",
        strategy="probabilistic",
        sample_fraction=0.02,  # 2% of all entities, as in the paper
        seed=0,
        workers=WORKERS,
    )
    preparation = protocol.prepare()
    print(
        f"Preparation (once per dataset): recommender fit {preparation.fit_seconds:.2f}s, "
        f"pool draws {preparation.pools_seconds:.2f}s"
    )

    start = time.perf_counter()
    estimate = protocol.evaluate(model)
    estimate_seconds = time.perf_counter() - start

    start = time.perf_counter()
    truth = protocol.evaluate_full(model)
    full_seconds = time.perf_counter() - start

    print(
        f"\nFull filtered ranking : MRR={truth.metrics.mrr:.3f}  "
        f"{full_seconds:6.2f}s  ({truth.num_scored:,} scores)"
    )
    print(
        f"Probabilistic @ 2%    : MRR={estimate.metrics.mrr:.3f}  "
        f"{estimate_seconds:6.2f}s  ({estimate.num_scored:,} scores)"
    )
    print(
        f"\nSpeed-up: {full_seconds / estimate_seconds:.0f}x, "
        f"absolute MRR error: {abs(estimate.metrics.mrr - truth.metrics.mrr):.3f}"
    )
    print(
        "The speed-up grows with |E|: on the paper's 2.5M-entity "
        "ogbl-wikikg2 the same protocol reaches two orders of magnitude."
    )


if __name__ == "__main__":
    main()
