"""The theory behind the bias — Equation 1 and Theorem 1, empirically.

Prints the paper's two analytical results next to Monte-Carlo simulations:

* Equation 1: sampling ``n_s`` uniform candidates, the expected number
  that outrank the truth is ``n_s * |E_(h,r)| / |E|`` — so the smaller the
  sample, the fewer competitors are seen and the rosier the metric;
* Theorem 1: restricting the sample to the relation's range set never
  moves the estimate *away* from the true rank (``E[Y] >= 0``), and the
  gain is largest exactly when the range set is small — the regime real
  KGs live in.

Run:  python examples/theory_playground.py
"""

import numpy as np

from repro.bench import render_series
from repro.core import expected_gain, expected_outranking

NUM_ENTITIES = 10_000
NUM_BETTER = 40  # entities truly outranking the query's answer
RANGE_SIZE = 500  # the relation's range set (contains all competitors)
TRIALS = 4_000


def simulate_uniform(num_samples: int, rng: np.random.Generator) -> float:
    draws = rng.choice(NUM_ENTITIES, size=(TRIALS, num_samples))
    return float((draws < NUM_BETTER).sum(axis=1).mean())


def simulate_in_range(num_samples: int, rng: np.random.Generator) -> float:
    take = min(num_samples, RANGE_SIZE)
    outranking = np.empty(TRIALS)
    for trial in range(TRIALS):
        draw = rng.choice(RANGE_SIZE, size=take, replace=False)
        outranking[trial] = (draw < NUM_BETTER).sum()
    return float(outranking.mean())


def main() -> None:
    rng = np.random.default_rng(0)
    sample_sizes = [50, 200, 500, 2_000, 10_000]

    print(
        f"Setup: |E| = {NUM_ENTITIES:,}, |E_(h,r)| = {NUM_BETTER} true competitors, "
        f"range set |RS_r| = {RANGE_SIZE}\n"
    )

    eq1_analytic = [expected_outranking(NUM_BETTER, NUM_ENTITIES, n) for n in sample_sizes]
    eq1_simulated = [simulate_uniform(n, rng) for n in sample_sizes]
    print(
        render_series(
            sample_sizes,
            {
                "E[X_u] (Eq. 1)": eq1_analytic,
                "simulated": eq1_simulated,
            },
            x_label="n_s",
            title="Equation 1: expected competitors seen under uniform sampling",
        )
    )
    print(
        "\n-> At n_s = 50 a uniform sample sees 0.2 of the 40 competitors on "
        "average: the estimated rank is ~1 and the MRR estimate is wildly "
        "optimistic.  Only at n_s = |E| does it see all 40.\n"
    )

    gain_analytic = [
        expected_gain(NUM_BETTER, NUM_ENTITIES, RANGE_SIZE, n) for n in sample_sizes
    ]
    gain_simulated = [
        simulate_in_range(n, rng) - simulate_uniform(n, rng) for n in sample_sizes
    ]
    print(
        render_series(
            sample_sizes,
            {
                "E[Y] (Theorem 1)": gain_analytic,
                "simulated": gain_simulated,
            },
            x_label="n_s",
            title="Theorem 1: rank accuracy gained by sampling inside the range set",
        )
    )
    print(
        "\n-> The gain is non-negative everywhere (Theorem 1) and peaks while "
        "n_s < |RS_r|: in-range sampling sees almost every competitor long "
        "before uniform sampling does.  That is the entire framework in one "
        "number."
    )


if __name__ == "__main__":
    main()
