"""Serving quickstart: train offline, serve online, query over HTTP.

The full loop of `repro.serve`:

1. train a small model and register its checkpoint under a store root;
2. start the micro-batching service and its stdlib HTTP server;
3. query top-k completions (candidate-filtered) and triple ranks
   (bitwise-identical to the offline engine's) through `ServeClient`;
4. read the health counters that show micro-batching at work.

Run:  python examples/serve_quickstart.py
"""

import tempfile
import threading

from repro.core.ranking import evaluate_full
from repro.datasets import load
from repro.models import Trainer, TrainingConfig, build_model
from repro.serve import (
    LinkPredictionService,
    ModelRegistry,
    ServeClient,
    ServeHTTPServer,
)
from repro.store import ExperimentStore


def main() -> None:
    # 1. Offline: train a checkpoint and register it by name.
    dataset = load("codex-s-lite")
    graph = dataset.graph
    model = build_model("distmult", graph.num_entities, graph.num_relations, dim=16, seed=0)
    Trainer(TrainingConfig(epochs=4, seed=0)).fit(model, graph)

    store = ExperimentStore(tempfile.mkdtemp(prefix="repro-serve-"))
    registry = ModelRegistry(store, graph, types=dataset.types, recommender="l-wd")
    registry.register("prod", model)
    print(f"Registered 'prod' -> {registry.checkpoint_dir / 'prod.npz'}")

    # 2. Online: the service plus an HTTP server on an ephemeral port.
    service = LinkPredictionService(registry, max_batch_size=64, max_wait=0.002)
    server = ServeHTTPServer(service, port=0)
    server.start_background()
    client = ServeClient(base_url=server.url)
    print(f"Serving {graph.name} on {server.url}\n")

    # 3a. Top-k completion, scored inside the static candidate sets.
    response = client.rank("prod", anchor="e17", relation="r3", k=5)
    print(f"Top-5 tails for (e17, r3, ?) over {response['num_candidates']} candidates:")
    for row in response["results"]:
        print(f"  #{row['rank']}  {row['entity']:<6} score={row['score']:+.4f}")

    # 3b. Triple ranks: the offline protocol's numbers, served online.
    triples = graph.test.as_tuples()[:3]
    served = client.score("prod", triples)
    offline = evaluate_full(model, graph)
    print("\nServed rank == offline evaluate_full rank:")
    for row in served:
        query = (row["head_id"], row["relation_id"], row["tail_id"], row["side"])
        print(
            f"  ({row['head']}, {row['relation']}, {row['tail']}) {row['side']:<5}"
            f" rank={row['rank']:<8} offline={offline.ranks[query]:<8}"
            f" match={offline.ranks[query] == row['rank']}"
        )

    # 4. Concurrent clients coalesce into micro-batches.
    def burst(anchor_start: int) -> None:
        for i in range(10):
            client.rank("prod", (anchor_start + i) % graph.num_entities, "r1", k=3)

    threads = [threading.Thread(target=burst, args=(c * 10,)) for c in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    health = client.health()
    scheduler = health["scheduler"]
    print(
        f"\nHealth: {health['status']} | {scheduler['requests']} requests in "
        f"{scheduler['batches']} scoring calls "
        f"(mean batch {scheduler['mean_batch_size']}, "
        f"cache hits {health['cache']['hits']})"
    )

    server.shutdown()
    server.server_close()
    service.close()


if __name__ == "__main__":
    main()
