"""Thread-safe runtime metrics with Prometheus text-format exposition.

Three metric kinds, the Prometheus core set:

* :class:`Counter` — a monotonically increasing total (requests served,
  chunks scored);
* :class:`Gauge` — a value that goes both ways (queue depth, worker
  count);
* :class:`Histogram` — fixed-bucket observations with ``sum``/``count``
  and interpolated quantiles (request latency, batch occupancy).

Every metric lives in a :class:`MetricsRegistry` and may carry a fixed
set of label names; one ``(name, label values)`` pair is one time
series.  :meth:`MetricsRegistry.render` emits the standard Prometheus
text format (``# HELP`` / ``# TYPE`` / samples, cumulative ``_bucket``
lines with ``le=`` labels), and :func:`parse_prometheus` reads it back —
the round trip is asserted in tests so any scraper sees exactly the
values the process recorded.

The implementation is deliberately dependency-free and lock-per-family:
updating a counter is a dict lookup and a float add under one small
lock, cheap enough to leave permanently enabled on the serving path.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Iterable

#: Default histogram buckets (seconds): Prometheus' canonical latency grid.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One sample line: ``name{labels} value`` (labels optional).
_SAMPLE_PATTERN = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
_LABEL_PAIR_PATTERN = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def _format_value(value: float) -> str:
    """Shortest exact representation (ints stay ints, floats round-trip)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery: label validation and the per-family lock."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "", labels: Iterable[str] = ()):
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(labels)
        for label in self.label_names:
            if not _LABEL_PATTERN.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def _key(self, labels: dict[str, object]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def _label_suffix(self, key: tuple[str, ...], extra: str = "") -> str:
        pairs = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.label_names, key)
        ]
        if extra:
            pairs.append(extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def _header(self) -> list[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines


class Counter(_Metric):
    """A total that only goes up.

    Examples
    --------
    >>> counter = Counter("requests_total", labels=("endpoint",))
    >>> counter.inc(endpoint="rank")
    >>> counter.inc(3, endpoint="rank")
    >>> counter.value(endpoint="rank")
    4.0
    """

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{self._label_suffix(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class Gauge(_Metric):
    """A value that can rise and fall (queue depth, occupancy, config).

    Examples
    --------
    >>> gauge = Gauge("queue_depth")
    >>> gauge.set(4)
    >>> gauge.inc(2)
    >>> gauge.dec()
    >>> gauge.value()
    5.0
    """

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def _render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                lines.append(
                    f"{self.name}{self._label_suffix(key)} "
                    f"{_format_value(self._series[key])}"
                )
        return lines


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int):
        self.counts = [0] * num_buckets  # per-bucket, cumulated at render
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket observations with interpolated quantiles.

    ``buckets`` are the ascending upper bounds of the finite buckets; an
    implicit ``+Inf`` bucket catches everything beyond the last bound.
    :meth:`quantile` interpolates linearly inside the bucket containing
    the requested rank — the standard Prometheus ``histogram_quantile``
    estimate — and clamps observations in the overflow bucket to the
    largest finite bound.

    Examples
    --------
    >>> histogram = Histogram("latency_seconds", buckets=(0.1, 1.0))
    >>> for value in (0.05, 0.05, 0.5, 2.0):
    ...     histogram.observe(value)
    >>> histogram.count()
    4
    >>> histogram.quantile(0.25)
    0.05
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help=help, labels=labels)
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histograms need at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must be strictly ascending: {bounds}")
        self.buckets = bounds

    def _series_for_locked(self, labels: dict[str, object]) -> _HistogramSeries:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series.setdefault(key, _HistogramSeries(len(self.buckets) + 1))
        return series  # type: ignore[return-value]

    def observe(self, value: float, **labels: object) -> None:
        index = bisect.bisect_left(self.buckets, float(value))
        with self._lock:
            series = self._series_for_locked(labels)
            series.counts[index] += 1
            series.sum += float(value)
            series.count += 1

    def count(self, **labels: object) -> int:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.count if series is not None else 0  # type: ignore[union-attr]

    def sum(self, **labels: object) -> float:
        with self._lock:
            series = self._series.get(self._key(labels))
            return series.sum if series is not None else 0.0  # type: ignore[union-attr]

    def quantile(self, q: float, **labels: object) -> float:
        """The interpolated ``q``-quantile (``0 <= q <= 1``); NaN if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            series = self._series.get(self._key(labels))
            counts = list(series.counts) if series is not None else None
            total = series.count if series is not None else 0  # type: ignore[union-attr]
        if not total or counts is None:
            return math.nan
        target = q * total
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target and bucket_count:
                if index >= len(self.buckets):
                    # Overflow bucket: no finite upper bound to interpolate
                    # toward; report the largest finite bound (Prometheus
                    # semantics).
                    return self.buckets[-1]
                lower = 0.0 if index == 0 else self.buckets[index - 1]
                upper = self.buckets[index]
                fraction = (target - previous) / bucket_count
                return lower + fraction * (upper - lower)
        return self.buckets[-1]

    def _render(self) -> list[str]:
        lines = self._header()
        with self._lock:
            for key in sorted(self._series):
                series: _HistogramSeries = self._series[key]  # type: ignore[assignment]
                cumulative = 0
                for bound, bucket_count in zip(self.buckets, series.counts):
                    cumulative += bucket_count
                    suffix = self._label_suffix(
                        key, f'le="{_format_value(bound)}"'
                    )
                    lines.append(f"{self.name}_bucket{suffix} {cumulative}")
                suffix = self._label_suffix(key, 'le="+Inf"')
                lines.append(f"{self.name}_bucket{suffix} {series.count}")
                plain = self._label_suffix(key)
                lines.append(f"{self.name}_sum{plain} {_format_value(series.sum)}")
                lines.append(f"{self.name}_count{plain} {series.count}")
        return lines


class MetricsRegistry:
    """Get-or-create home for a process' (or a service's) metrics.

    Re-requesting a name returns the existing instance — instrumented
    code can call ``registry.counter("x_total")`` at use sites without
    coordinating creation — but re-requesting with a *different* kind or
    label set is a programming error and raises.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("chunks_total").inc(5)
    >>> registry.counter("chunks_total").value()
    5.0
    >>> print(registry.render(), end="")
    # TYPE chunks_total counter
    chunks_total 5
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, labels, **kwargs) -> _Metric:
        labels = tuple(labels)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )  # type: ignore[return-value]

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def counter_values(self) -> dict[str, float]:
        """Every counter's total, summed across its label series.

        This is the worker-side half of cross-process merging: a pool
        worker snapshots its private registry with this, ships the
        difference since its last snapshot (:func:`counter_deltas`)
        back on the result queue, and the parent folds the delta into
        its own registry with :meth:`merge_counters`.

        Examples
        --------
        >>> registry = MetricsRegistry()
        >>> registry.counter("chunks_total").inc(3)
        >>> registry.counter_values()
        {'chunks_total': 3.0}
        """
        with self._lock:
            counters = [
                metric
                for metric in self._metrics.values()
                if isinstance(metric, Counter)
            ]
        values: dict[str, float] = {}
        for counter in counters:
            with counter._lock:
                values[counter.name] = float(sum(counter._series.values()))
        return values

    def merge_counters(
        self,
        deltas: dict[str, float],
        labels: dict[str, object] | None = None,
        help_texts: dict[str, str] | None = None,
    ) -> None:
        """Fold counter deltas from another registry into this one.

        Each ``name -> amount`` pair increments the same-named counter
        here, created on demand with ``labels``' names as its label set
        — the parent process calls this with ``labels={"worker": "0"}``
        so one worker's unlabelled counters surface as one labelled
        series per worker.  Non-positive deltas are skipped (counters
        only increase).

        Examples
        --------
        >>> registry = MetricsRegistry()
        >>> registry.merge_counters({"chunks_total": 2.0}, labels={"worker": "1"})
        >>> registry.counter("chunks_total", labels=("worker",)).value(worker="1")
        2.0
        """
        labels = dict(labels or {})
        label_names = tuple(labels)
        for name, amount in deltas.items():
            if not amount > 0.0:
                continue
            help_text = (help_texts or {}).get(name, "")
            self.counter(name, help_text, labels=label_names).inc(
                float(amount), **labels
            )

    def reset(self) -> None:
        """Forget every metric (tests; never called on a live service)."""
        with self._lock:
            self._metrics.clear()

    def render(self) -> str:
        """The Prometheus text-format exposition of every metric."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric._render())
        return "\n".join(lines) + "\n" if lines else ""

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"


def counter_deltas(
    current: dict[str, float], previous: dict[str, float]
) -> dict[str, float]:
    """The positive differences between two counter snapshots.

    The worker-side half of delta shipping: snapshot
    :meth:`MetricsRegistry.counter_values` before and after, diff, ship
    only what moved.  Counters that did not change are omitted.

    Examples
    --------
    >>> counter_deltas({"a": 5.0, "b": 2.0}, {"a": 3.0, "b": 2.0})
    {'a': 2.0}
    """
    deltas: dict[str, float] = {}
    for name, value in current.items():
        moved = value - previous.get(name, 0.0)
        if moved > 0.0:
            deltas[name] = moved
    return deltas


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus text format back into ``{(name, labels): value}``.

    Labels are a sorted tuple of ``(name, value)`` pairs so results are
    hashable and order-independent.  Comment and blank lines are
    skipped; malformed sample lines raise ``ValueError`` (the round-trip
    test exists to prove :meth:`MetricsRegistry.render` never emits one).

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("hits_total", labels=("kind",)).inc(2, kind="lru")
    >>> parse_prometheus(registry.render())
    {('hits_total', (('kind', 'lru'),)): 2.0}
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_PATTERN.match(line)
        if match is None:
            raise ValueError(f"unparseable sample line: {line!r}")
        name, raw_labels, raw_value = match.groups()
        labels: list[tuple[str, str]] = []
        if raw_labels:
            labels = [
                (label, _unescape_label(value))
                for label, value in _LABEL_PAIR_PATTERN.findall(raw_labels)
            ]
        value = math.inf if raw_value == "+Inf" else float(raw_value)
        samples[(name, tuple(sorted(labels)))] = value
    return samples
