"""Trace context: one id that follows a request across threads and processes.

A :class:`TraceContext` names one logical operation — usually a serve
request — with a ``trace_id`` (and, when the operation came in over
HTTP, the ``request_id`` the client saw).  The context rides a
``contextvars.ContextVar``, so it flows automatically through ordinary
calls and ``concurrent`` threads that copy the context; the two places
it must be carried *explicitly* are the serving scheduler (a request's
query is scored on the dispatcher thread) and the engine worker pool (a
chunk is scored in another process) — both stash the submitter's
context alongside the work and restore it with :func:`use_context`.

Everything that observes the system reads the same context:

* timeline span events (:meth:`repro.obs.trace.Tracer` with timelines
  enabled) stamp the current ``trace_id``, so a Chrome export shows one
  request as one flamegraph across processes;
* structured log lines (:mod:`repro.obs.log`) stamp ``trace_id`` and
  ``request_id``, so a log line, a journal entry and a trace join on
  one id.
"""

from __future__ import annotations

import contextvars
import uuid
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceContext:
    """The identity of one logical operation.

    Examples
    --------
    >>> context = TraceContext(trace_id="abc123", request_id="req-1")
    >>> context.trace_id
    'abc123'
    """

    trace_id: str
    request_id: str | None = None


_CONTEXT: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_context", default=None
)


def new_trace_id() -> str:
    """A fresh 16-hex trace id.

    Examples
    --------
    >>> len(new_trace_id())
    16
    """
    return uuid.uuid4().hex[:16]


def new_context(request_id: str | None = None) -> TraceContext:
    """A fresh context (new trace id), optionally tied to a request id.

    Examples
    --------
    >>> new_context(request_id="req-9").request_id
    'req-9'
    """
    return TraceContext(trace_id=new_trace_id(), request_id=request_id)


def current_context() -> TraceContext | None:
    """The active :class:`TraceContext`, or ``None`` outside any.

    Examples
    --------
    >>> with use_context(TraceContext(trace_id="t1")) as context:
    ...     current_context() is context
    True
    """
    return _CONTEXT.get()


def current_trace_id() -> str | None:
    """Shorthand for the active context's trace id (``None`` outside).

    Examples
    --------
    >>> with use_context(TraceContext(trace_id="t1")):
    ...     current_trace_id()
    't1'
    """
    context = _CONTEXT.get()
    return context.trace_id if context is not None else None


class use_context:
    """Context manager installing ``context`` for the duration of a block.

    Accepts ``None`` (a no-op) so call sites can write
    ``with use_context(maybe_context):`` without branching.

    Examples
    --------
    >>> with use_context(TraceContext(trace_id="t1")):
    ...     current_trace_id()
    't1'
    >>> current_trace_id() is None
    True
    """

    __slots__ = ("_context", "_token")

    def __init__(self, context: TraceContext | None):
        self._context = context
        self._token = None

    def __enter__(self) -> TraceContext | None:
        if self._context is not None:
            self._token = _CONTEXT.set(self._context)
        return self._context

    def __exit__(self, *exc: object) -> None:
        if self._token is not None:
            _CONTEXT.reset(self._token)
            self._token = None
