"""Span tracing: nested wall-clock timing aggregated by span name.

A span is one named region of work::

    tracer = get_tracer()
    with tracer.span("train.epoch"):
        ...
        tracer.add("triples", len(batch))

Spans nest: a span opened while another is active becomes its child, so
``train.fit`` naturally contains ``train.epoch`` contains
``engine.run``.  Repeated spans of the same name under the same parent
*aggregate* — one ``train.epoch`` node accumulates the count, total
seconds and counters of every epoch — which keeps the recorded tree
bounded by the code's span vocabulary rather than the run length, small
enough to persist into the store's JSONL journal (``repro trace show``
renders it back).

The tracer is **disabled by default** and built to cost nearly nothing
that way: ``span()`` returns one shared no-op context manager and
``add()``/``record()`` return immediately after a single attribute
check, so instrumentation can stay in the hot paths permanently
(``benchmarks/bench_training.py`` asserts the end-to-end overhead).
Span naming convention: dotted ``area.stage`` lowercase names —
``train.fit``, ``train.epoch``, ``engine.run``, ``engine.chunk``,
``evaluate.full`` (see ``docs/observability.md`` for the catalog).

Beyond the aggregate tree, the tracer can optionally record a
**timeline**: one timestamped event per span close (wall-clock start,
duration, pid, thread id, and the active
:class:`~repro.obs.context.TraceContext`'s trace id).  Timelines are
what make cross-process traces renderable: worker processes ship their
events back to the parent (:meth:`Tracer.add_event`), and
:func:`chrome_trace` exports the merged list as Chrome ``trace_event``
JSON — open it in ``chrome://tracing`` / Perfetto and one serve request
reads as a single flamegraph spanning the HTTP thread, the scheduler,
the engine, and every pool worker.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Iterable

from repro.obs.context import current_trace_id

#: Timeline events retained per tracer; beyond this, events are counted
#: as dropped rather than stored (bounds a long traced run's memory).
MAX_TIMELINE_EVENTS = 20_000


class SpanStats:
    """One aggregated node of the span tree.

    Examples
    --------
    >>> node = SpanStats("train.epoch")
    >>> node.count += 1
    >>> node.to_dict()
    {'name': 'train.epoch', 'count': 1, 'seconds': 0.0}
    """

    __slots__ = ("name", "count", "seconds", "counters", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.seconds = 0.0
        self.counters: dict[str, float] = {}
        self.children: dict[str, "SpanStats"] = {}

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the journal's ``obs.spans`` entries)."""
        payload: dict[str, Any] = {
            "name": self.name,
            "count": self.count,
            "seconds": self.seconds,
        }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [
                child.to_dict() for child in self.children.values()
            ]
        return payload

    def __repr__(self) -> str:
        return (
            f"SpanStats({self.name!r}, count={self.count}, "
            f"seconds={self.seconds:.4f})"
        )


class _NullSpan:
    """The shared do-nothing context manager the disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """A live span: pushes its node on enter, accumulates on exit.

    Exit runs unconditionally — a span body that raises still pops the
    thread-local stack and records its elapsed time (the ``with``
    statement guarantees ``__exit__``), so an exception mid-span never
    corrupts the tracer for later spans.
    """

    __slots__ = ("_tracer", "_name", "_node", "_start", "_wall")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> "_ActiveSpan":
        self._node = self._tracer._push(self._name)
        self._wall = time.time() if self._tracer.timeline else 0.0
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        elapsed = time.perf_counter() - self._start
        self._tracer._pop(self._node, elapsed)
        if self._tracer.timeline:
            self._tracer.add_event(self._name, self._wall, elapsed)


class Tracer:
    """Aggregating span tracer; one per process (see ``repro.obs.get_tracer``).

    Enabled state is a plain attribute: flip ``tracer.enabled`` (or use
    :func:`repro.obs.set_tracing`).  Span entry/exit from multiple
    threads is safe — each thread keeps its own active-span stack, the
    aggregated tree is shared under one lock.

    Examples
    --------
    >>> tracer = Tracer(enabled=True)
    >>> for _ in range(3):
    ...     with tracer.span("train.epoch"):
    ...         tracer.add("triples", 100)
    >>> summary = tracer.summary()
    >>> [(s["name"], s["count"], s["counters"]) for s in summary["spans"]]
    [('train.epoch', 3, {'triples': 300.0})]
    """

    def __init__(self, enabled: bool = False, timeline: bool = False):
        self.enabled = enabled
        #: Record timestamped span events alongside the aggregate tree.
        self.timeline = timeline
        self._lock = threading.Lock()
        self._root = SpanStats("")
        self._local = threading.local()
        self._events: list[dict[str, Any]] = []
        self.events_dropped = 0

    # ------------------------------------------------------------------
    # Recording surface
    # ------------------------------------------------------------------
    def span(self, name: str):
        """Context manager timing one region; no-op while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name)

    def add(self, key: str, value: float = 1.0) -> None:
        """Add ``value`` to a counter on the innermost active span."""
        if not self.enabled:
            return
        node = self._current()
        with self._lock:
            node.counters[key] = node.counters.get(key, 0.0) + value

    def record(
        self, name: str, seconds: float, count: int = 1, event: bool = True
    ) -> None:
        """Fold an externally measured duration in as a child span.

        The engine uses this for per-chunk timings: a ``perf_counter``
        pair around the scoring call is cheaper than a context manager
        in a loop that may run thousands of times.  ``event=False``
        folds only the aggregate — the pool uses it when merging worker
        stage totals whose real timestamped events arrive separately
        via :meth:`add_event` (a synthesized event would double-count).
        """
        if not self.enabled:
            return
        parent = self._current()
        with self._lock:
            node = parent.children.get(name)
            if node is None:
                node = parent.children.setdefault(name, SpanStats(name))
            node.count += count
            node.seconds += seconds
        if event and self.timeline:
            # The interval just ended: synthesize its timestamped event.
            self.add_event(name, time.time() - seconds, seconds)

    def add_event(
        self,
        name: str,
        start: float,
        seconds: float,
        pid: int | None = None,
        tid: int | None = None,
        trace_id: str | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Append one timeline event (``start`` is wall-clock epoch seconds).

        Local spans call this on exit; the engine pool calls it with
        explicit ``pid``/``tid``/``trace_id`` to fold in events a worker
        process shipped back.  Beyond :data:`MAX_TIMELINE_EVENTS` the
        event is counted in :attr:`events_dropped` instead of stored.
        """
        event: dict[str, Any] = {
            "name": name,
            "ts": start,
            "dur": seconds,
            "pid": pid if pid is not None else os.getpid(),
            "tid": tid if tid is not None else threading.get_ident(),
        }
        resolved = trace_id if trace_id is not None else current_trace_id()
        if resolved is not None:
            event["trace_id"] = resolved
        if args:
            event["args"] = dict(args)
        with self._lock:
            if len(self._events) >= MAX_TIMELINE_EVENTS:
                self.events_dropped += 1
            else:
                self._events.append(event)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def events(self) -> list[dict[str, Any]]:
        """A copy of the recorded timeline (empty unless timelines are on)."""
        with self._lock:
            return [dict(event) for event in self._events]

    def summary(self) -> dict[str, Any] | None:
        """The aggregated span tree, JSON-ready; ``None`` if nothing ran.

        With timelines enabled the payload also carries the ``events``
        list (and ``events_dropped`` when the cap was hit), so a
        journaled trace can be exported with ``repro trace export``.
        """
        with self._lock:
            if (
                not self._root.children
                and not self._root.counters
                and not self._events
            ):
                return None
            payload: dict[str, Any] = {
                "spans": [
                    child.to_dict() for child in self._root.children.values()
                ]
            }
            if self._root.counters:
                payload["counters"] = dict(self._root.counters)
            if self._events:
                payload["events"] = [dict(event) for event in self._events]
            if self.events_dropped:
                payload["events_dropped"] = self.events_dropped
            return payload

    def reset(self) -> None:
        """Drop every recorded span (active stacks in other threads too)."""
        with self._lock:
            self._root = SpanStats("")
            self._events = []
            self.events_dropped = 0
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Stack plumbing
    # ------------------------------------------------------------------
    def _stack(self) -> list[SpanStats]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _current(self) -> SpanStats:
        stack = self._stack()
        return stack[-1] if stack else self._root

    def _push(self, name: str) -> SpanStats:
        parent = self._current()
        with self._lock:
            node = parent.children.get(name)
            if node is None:
                node = parent.children.setdefault(name, SpanStats(name))
        self._stack().append(node)
        return node

    def _pop(self, node: SpanStats, elapsed: float) -> None:
        stack = self._stack()
        if stack and stack[-1] is node:
            stack.pop()
        with self._lock:
            node.count += 1
            node.seconds += elapsed

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        with self._lock:
            top = len(self._root.children)
        return f"Tracer({state}, {top} top-level spans)"


def _flatten(
    node: dict[str, Any], depth: int, rows: list[dict[str, Any]], parent_seconds: float
) -> None:
    seconds = float(node.get("seconds", 0.0))
    count = int(node.get("count", 0))
    share = seconds / parent_seconds if parent_seconds > 0 else 1.0
    counters = node.get("counters", {})
    rows.append(
        {
            "Span": "  " * depth + node["name"],
            "Count": count,
            "Total s": round(seconds, 4),
            "Mean ms": round(1000.0 * seconds / count, 3) if count else 0.0,
            "% parent": f"{share:.1%}",
            "Counters": ", ".join(
                f"{key}={value:g}" for key, value in sorted(counters.items())
            ),
        }
    )
    for child in node.get("children", ()):
        _flatten(child, depth + 1, rows, seconds)


def render_trace(summary: dict[str, Any], title: str | None = None) -> str:
    """Render a :meth:`Tracer.summary` dict as the span-tree table.

    Examples
    --------
    >>> tracer = Tracer(enabled=True)
    >>> with tracer.span("work"):
    ...     pass
    >>> "work" in render_trace(tracer.summary())
    True
    """
    # Imported lazily: repro.bench pulls in the experiment-driver stack.
    from repro.bench.tables import render_table

    rows: list[dict[str, Any]] = []
    total = sum(float(span.get("seconds", 0.0)) for span in summary.get("spans", ()))
    for span in summary.get("spans", ()):
        _flatten(span, 0, rows, total)
    if not rows:
        return "(empty trace)"
    return render_table(rows, title=title or "Span trace")


def chrome_trace(
    events: Iterable[dict[str, Any]], metadata: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Timeline events as a Chrome ``trace_event`` JSON object.

    Each event becomes one complete (``"ph": "X"``) slice: microsecond
    ``ts``/``dur``, the recording process as ``pid`` and thread as
    ``tid``, with ``trace_id`` and any extra args preserved under
    ``args`` — load the dump in ``chrome://tracing`` or Perfetto and
    spans from different processes line up on the shared wall clock.

    Examples
    --------
    >>> trace = chrome_trace([{"name": "work", "ts": 10.0, "dur": 0.5}])
    >>> event = trace["traceEvents"][0]
    >>> event["ph"], event["dur"]
    ('X', 500000)
    """
    trace_events: list[dict[str, Any]] = []
    for event in events:
        args = dict(event.get("args", ()))
        if "trace_id" in event:
            args["trace_id"] = event["trace_id"]
        slice_: dict[str, Any] = {
            "name": event["name"],
            "ph": "X",
            "ts": int(float(event["ts"]) * 1e6),
            "dur": int(float(event["dur"]) * 1e6),
            "pid": int(event.get("pid", 0)),
            "tid": int(event.get("tid", 0)),
            "cat": str(event["name"]).split(".", 1)[0],
        }
        if args:
            slice_["args"] = args
        trace_events.append(slice_)
    payload: dict[str, Any] = {
        "traceEvents": sorted(trace_events, key=lambda e: e["ts"]),
        "displayTimeUnit": "ms",
    }
    if metadata:
        payload["otherData"] = dict(metadata)
    return payload
