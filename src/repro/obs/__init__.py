"""Observability: metrics, tracing, and perf-regression reporting.

``repro.obs`` is the instrumentation layer the rest of the framework
threads through its hot paths:

* :mod:`repro.obs.metrics` — a thread-safe Counter / Gauge / Histogram
  registry with Prometheus text-format exposition (the serving layer's
  ``/metrics`` endpoint renders one of these);
* :mod:`repro.obs.trace` — a span tracer (``with tracer.span("train.
  epoch"): ...``) that aggregates nested timings by name and costs
  nearly nothing while disabled, which it is by default;
* :mod:`repro.obs.bench` — the committed ``BENCH_*.json`` record layer:
  schema stamping, the ``repro bench trend`` view, and the
  ``repro bench gate`` regression gate CI runs on every PR;
* :mod:`repro.obs.context` — the :class:`TraceContext` correlating one
  serve request across threads and worker processes;
* :mod:`repro.obs.log` — structured JSON-lines logging stamped with the
  active context's ``trace_id``/``request_id`` (``$REPRO_LOG`` enables).

Two process-global instances tie it together: :func:`get_tracer` is the
tracer the trainer / engine / experiment runner write spans to (enable
it with ``repro ... --trace`` or :func:`set_tracing`), and
:func:`get_registry` is the default metrics registry non-serving code
(the engine's gauges and counters) publishes into.  The serving layer
builds its own registry per service so ``/metrics`` reflects exactly
that service.
"""

from repro.obs.context import (
    TraceContext,
    current_context,
    current_trace_id,
    new_context,
    new_trace_id,
    use_context,
)
from repro.obs.log import (
    StructuredLogger,
    configure_logging,
    get_logger,
    log_event,
    sanitize_request_id,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.trace import Tracer, chrome_trace, render_trace

#: The process-global tracer instrumented code writes spans to.
_TRACER = Tracer()

#: The process-global metrics registry (engine/trainer gauges + counters).
_REGISTRY = MetricsRegistry()


def get_tracer() -> Tracer:
    """The process-global :class:`Tracer` (disabled until opted in)."""
    return _TRACER


def get_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _REGISTRY


def set_tracing(enabled: bool, timeline: bool | None = None) -> Tracer:
    """Enable/disable the global tracer; returns it (reset when enabling).

    ``timeline`` controls timestamped event recording alongside the
    aggregate tree; it defaults to following ``enabled``, so a plain
    ``--trace`` run records events exportable with ``repro trace
    export`` — pass ``timeline=False`` to keep only the aggregate tree.

    Examples
    --------
    >>> tracer = set_tracing(True)
    >>> with tracer.span("work"):
    ...     pass
    >>> tracer.summary()["spans"][0]["name"]
    'work'
    >>> _ = set_tracing(False)
    """
    if enabled:
        _TRACER.reset()
    _TRACER.enabled = enabled
    _TRACER.timeline = enabled if timeline is None else timeline
    return _TRACER


def span(name: str):
    """``get_tracer().span(name)`` — the convenience most callers want."""
    return _TRACER.span(name)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StructuredLogger",
    "TraceContext",
    "Tracer",
    "chrome_trace",
    "configure_logging",
    "current_context",
    "current_trace_id",
    "get_logger",
    "get_registry",
    "get_tracer",
    "log_event",
    "new_context",
    "new_trace_id",
    "parse_prometheus",
    "render_trace",
    "sanitize_request_id",
    "set_tracing",
    "span",
    "use_context",
]
