"""The ``BENCH_*.json`` record layer: schema, trend view, regression gate.

Every speed benchmark persists a machine-readable record under
``benchmarks/results/BENCH_<name>.json`` (the ``emit_json`` fixture),
stamped — via :func:`repro.bench.runner.stamp_bench_record` — with
``schema_version``, a wall-clock ``timestamp`` and a ``config_fingerprint``
hash of the benchmark's configuration.  This module is everything that
*consumes* those records:

* :func:`trend_rows` — the ``repro bench trend`` view: one row per
  comparable metric across every committed record (table/csv/json);
* :func:`compare_records` / :func:`gate_records` — the ``repro bench
  gate`` regression gate: fail when a candidate record regresses more
  than ``max_regression`` versus the committed baseline.

Metric comparability is inferred from key names
(:func:`metric_direction`): ``*speedup*`` / ``mrr*`` / ``hits*`` /
``*throughput*`` are higher-better, ``*seconds*`` / ``*latency*`` are
lower-better, everything else (configuration, stamp fields) is ignored.
Two refinements keep the gate honest on shared CI runners: *absolute*
timings (the lower-better group) are machine-dependent and only gated
when explicitly requested (``--absolute``), and ``cpu_bound_*`` ratios —
known to swing with host load — are shown in the trend but never gated.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

#: Version of the stamped BENCH_*.json schema (bump on breaking change).
BENCH_SCHEMA_VERSION = 1

#: Fields the stamp adds; never compared as metrics.
STAMP_FIELDS = ("schema_version", "timestamp", "config_fingerprint")

#: Keys reported in the trend view but never gated (host-load noise).
NOISY_MARKERS = ("cpu_bound",)

_IGNORED_KEYS = frozenset({"bench", "min_speedup_asserted", *STAMP_FIELDS})

_HIGHER_MARKERS = ("speedup", "throughput", "per_second", "hit_rate", "headroom")
_LOWER_MARKERS = ("seconds", "latency", "peak_rss")


def config_fingerprint(config: dict[str, Any]) -> str:
    """A short stable hash of a benchmark's configuration dict.

    Key order does not matter; values are serialised with ``default=str``
    so numpy scalars and paths fingerprint by their string form.

    Examples
    --------
    >>> config_fingerprint({"dim": 64, "model": "complex"})
    'ba164d2599ce'
    >>> config_fingerprint({"model": "complex", "dim": 64})
    'ba164d2599ce'
    """
    canonical = json.dumps(config, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def metric_direction(key: str) -> str | None:
    """``"higher"`` / ``"lower"`` / ``None`` (not a gated metric).

    Examples
    --------
    >>> metric_direction("latency_bound_speedup")
    'higher'
    >>> metric_direction("rss_headroom")
    'higher'
    >>> metric_direction("peak_rss_mb")
    'lower'
    >>> metric_direction("fused_seconds_per_epoch")
    'lower'
    >>> metric_direction("cpu_bound_speedup") is None  # noisy: never gated
    True
    >>> metric_direction("workers") is None
    True
    """
    if key in _IGNORED_KEYS:
        return None
    if any(marker in key for marker in NOISY_MARKERS):
        return None
    if any(marker in key for marker in _HIGHER_MARKERS):
        return "higher"
    if key.startswith("mrr") or key.startswith("hits"):
        return "higher"
    if any(marker in key for marker in _LOWER_MARKERS):
        return "lower"
    return None


def comparable_metrics(record: dict[str, Any], absolute: bool = False) -> dict[str, str]:
    """``{key: direction}`` for every gated metric of one record.

    Examples
    --------
    >>> record = {"speedup": 3.0, "seconds": 1.2, "bench": "demo"}
    >>> comparable_metrics(record)
    {'speedup': 'higher'}
    >>> comparable_metrics(record, absolute=True)
    {'speedup': 'higher', 'seconds': 'lower'}
    """
    out: dict[str, str] = {}
    for key, value in record.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        direction = metric_direction(key)
        if direction is None:
            continue
        if direction == "lower" and not absolute:
            continue  # machine-dependent wall clock: opt-in only
        out[key] = direction
    return out


def load_bench_records(directory: str | Path) -> dict[str, dict[str, Any]]:
    """Every ``BENCH_<name>.json`` under ``directory``, keyed by name.

    Examples
    --------
    >>> import tempfile
    >>> root = Path(tempfile.mkdtemp())
    >>> _ = (root / "BENCH_demo.json").write_text('{"speedup": 2.0}')
    >>> load_bench_records(root)
    {'demo': {'speedup': 2.0}}
    """
    root = Path(directory)
    records: dict[str, dict[str, Any]] = {}
    for path in sorted(root.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        records[name] = json.loads(path.read_text(encoding="utf-8"))
    return records


def trend_rows(records: dict[str, dict[str, Any]]) -> list[dict[str, Any]]:
    """The ``repro bench trend`` body: one row per trackable metric.

    ``cpu_bound_*`` ratios appear (direction ``"info"``) so the trend
    view shows the full trajectory even though the gate skips them.

    Examples
    --------
    >>> rows = trend_rows({"demo": {"speedup": 2.0, "schema_version": 1}})
    >>> rows[0]["Bench"], rows[0]["Metric"], rows[0]["Direction"]
    ('demo', 'speedup', 'higher')
    """
    rows: list[dict[str, Any]] = []
    for name in sorted(records):
        record = records[name]
        stamp = {
            "Schema": record.get("schema_version", "-"),
            "When": record.get("timestamp", "-"),
            "Config": record.get("config_fingerprint", "-"),
        }
        for key in sorted(record):
            value = record[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            direction = metric_direction(key)
            if direction is None:
                if not any(marker in key for marker in NOISY_MARKERS):
                    continue
                direction = "info"
            rows.append(
                {
                    "Bench": name,
                    "Metric": key,
                    "Value": round(float(value), 6),
                    "Direction": direction,
                    **stamp,
                }
            )
    return rows


def compare_records(
    baseline: dict[str, dict[str, Any]],
    candidate: dict[str, dict[str, Any]],
    max_regression: float = 0.2,
    absolute: bool = False,
) -> tuple[list[dict[str, Any]], list[str]]:
    """Baseline-vs-candidate comparison rows plus the regressed metrics.

    A metric regresses when it moves against its direction by more than
    ``max_regression`` (relative).  Returns ``(rows, regressions)``
    where each regression is ``"bench.metric"``.

    Examples
    --------
    >>> _, regressions = compare_records(
    ...     {"demo": {"speedup": 4.0}}, {"demo": {"speedup": 2.9}}
    ... )
    >>> regressions
    ['demo.speedup']
    >>> _, ok = compare_records({"demo": {"speedup": 4.0}}, {"demo": {"speedup": 3.9}})
    >>> ok
    []
    """
    if not 0.0 <= max_regression:
        raise ValueError(f"max_regression must be >= 0, got {max_regression}")
    rows: list[dict[str, Any]] = []
    regressions: list[str] = []
    for name in sorted(set(baseline) & set(candidate)):
        base_record, cand_record = baseline[name], candidate[name]
        metrics = comparable_metrics(base_record, absolute=absolute)
        for key, direction in sorted(metrics.items()):
            if key not in cand_record:
                continue
            base = float(base_record[key])
            cand = float(cand_record[key])
            if base == 0.0:
                continue  # no relative change is defined
            change = (cand - base) / abs(base)
            regressed = (
                change < -max_regression
                if direction == "higher"
                else change > max_regression
            )
            if regressed:
                regressions.append(f"{name}.{key}")
            rows.append(
                {
                    "Bench": name,
                    "Metric": key,
                    "Baseline": round(base, 6),
                    "Candidate": round(cand, 6),
                    "Change": f"{change:+.1%}",
                    "Status": "REGRESSED" if regressed else "ok",
                }
            )
    return rows, regressions


def gate_records(
    baseline_dir: str | Path,
    candidate_dir: str | Path,
    max_regression: float = 0.2,
    absolute: bool = False,
) -> tuple[list[dict[str, Any]], list[str]]:
    """Directory-level :func:`compare_records` (the CLI/CI entry point).

    Examples
    --------
    >>> import tempfile
    >>> base, cand = Path(tempfile.mkdtemp()), Path(tempfile.mkdtemp())
    >>> _ = (base / "BENCH_demo.json").write_text('{"speedup": 4.0}')
    >>> _ = (cand / "BENCH_demo.json").write_text('{"speedup": 4.1}')
    >>> rows, regressions = gate_records(base, cand)
    >>> regressions
    []
    """
    baseline = load_bench_records(baseline_dir)
    if not baseline:
        raise FileNotFoundError(f"no BENCH_*.json records under {baseline_dir}")
    candidate = load_bench_records(candidate_dir)
    if not candidate:
        raise FileNotFoundError(f"no BENCH_*.json records under {candidate_dir}")
    return compare_records(
        baseline, candidate, max_regression=max_regression, absolute=absolute
    )
