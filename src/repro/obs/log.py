"""Structured JSON logging correlated with traces and request ids.

One :class:`StructuredLogger` per process (:func:`get_logger`), writing
**one JSON object per line** — machine-parseable, append-only, and
joinable against the rest of the observability surface: every line is
stamped with the current :class:`~repro.obs.context.TraceContext`'s
``trace_id`` / ``request_id`` (when one is active), so

* a serve access-log line,
* the run journal's record,
* and a Chrome trace export

can all be matched on the same id.  The logger is **disabled by
default** and costs one attribute check per call that way; enable it
with :func:`configure_logging` (a path or a stream) or the
``$REPRO_LOG`` environment variable (``stderr``, ``stdout`` or a file
path), which the CLI and serve honour at import time.

Line shape::

    {"ts": 1754500000.123, "event": "serve.request", "trace_id": "…",
     "request_id": "…", "path": "/v1/rank", "status": 200, ...}

Event names follow the span convention: dotted ``area.stage`` lowercase
(``serve.request``, ``engine.run``, ``engine.pool.start``, …).
"""

from __future__ import annotations

import json
import os
import re
import sys
import threading
import time
from typing import IO, Any

from repro.obs.context import current_context

#: Longest accepted client-supplied request id (see sanitize_request_id).
MAX_REQUEST_ID_LENGTH = 128

_CONTROL_CHARS = re.compile(r"[\x00-\x1f\x7f]")


def sanitize_request_id(raw: str) -> str:
    """Clamp and clean a client-supplied request id.

    Control characters (including CR/LF — the header-injection and
    log-corruption vector) are stripped and the result is clamped to
    ``MAX_REQUEST_ID_LENGTH`` characters, so a hostile ``X-Request-Id``
    can neither break a JSON log line nor smuggle extra headers into
    the response.

    Examples
    --------
    >>> sanitize_request_id("req-42")
    'req-42'
    >>> sanitize_request_id("bad\\r\\nX-Evil: 1")
    'badX-Evil: 1'
    >>> len(sanitize_request_id("x" * 500))
    128
    """
    return _CONTROL_CHARS.sub("", raw)[:MAX_REQUEST_ID_LENGTH].strip()


class StructuredLogger:
    """A thread-safe one-JSON-object-per-line event logger.

    Examples
    --------
    >>> import io
    >>> stream = io.StringIO()
    >>> logger = StructuredLogger(stream=stream)
    >>> logger.event("engine.run", workers=2, seconds=0.5)
    >>> line = json.loads(stream.getvalue())
    >>> line["event"], line["workers"]
    ('engine.run', 2)
    """

    def __init__(self, stream: IO[str] | None = None, path: str | None = None):
        if stream is not None and path is not None:
            raise ValueError("pass a stream or a path, not both")
        self._lock = threading.Lock()
        self._stream = stream
        self._path = path
        self._file: IO[str] | None = None
        self.lines_written = 0

    @property
    def enabled(self) -> bool:
        return self._stream is not None or self._path is not None

    # ------------------------------------------------------------------
    def event(self, event: str, **fields: Any) -> None:
        """Write one event line (no-op while the logger has no sink).

        ``ts`` (epoch seconds), ``event``, and the active trace
        context's ``trace_id`` / ``request_id`` are stamped
        automatically; explicit keyword fields win over the stamps.
        """
        if self._stream is None and self._path is None:
            return
        payload: dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        context = current_context()
        if context is not None:
            payload["trace_id"] = context.trace_id
            if context.request_id is not None:
                payload["request_id"] = context.request_id
        payload.update(fields)
        line = json.dumps(payload, default=str, separators=(",", ":"))
        with self._lock:
            sink = self._sink_locked()
            sink.write(line + "\n")
            sink.flush()
            self.lines_written += 1

    def _sink_locked(self) -> IO[str]:
        if self._stream is not None:
            return self._stream
        if self._file is None:
            self._file = open(self._path, "a", encoding="utf-8")  # type: ignore[arg-type]
        return self._file

    # ------------------------------------------------------------------
    def configure(
        self, target: str | IO[str] | None
    ) -> "StructuredLogger":
        """Point the logger at ``target``: a stream, a path, ``"stderr"`` /
        ``"stdout"``, or ``None`` to disable."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None
            self._stream = None
            self._path = None
            if target is None or target == "":
                return self
            if target == "stderr":
                self._stream = sys.stderr
            elif target == "stdout":
                self._stream = sys.stdout
            elif isinstance(target, str):
                self._path = target
            else:
                self._stream = target
        return self

    def __repr__(self) -> str:
        sink = self._path or ("stream" if self._stream is not None else "disabled")
        return f"StructuredLogger({sink}, {self.lines_written} lines)"


#: The process-global logger every subsystem writes through.
_LOGGER = StructuredLogger()

#: Env knob: "stderr" / "stdout" / a file path enables logging at import.
_ENV_TARGET = os.environ.get("REPRO_LOG")
if _ENV_TARGET:
    _LOGGER.configure(_ENV_TARGET)


def get_logger() -> StructuredLogger:
    """The process-global :class:`StructuredLogger` (disabled by default).

    Examples
    --------
    >>> get_logger() is get_logger()
    True
    """
    return _LOGGER


def configure_logging(target: str | IO[str] | None) -> StructuredLogger:
    """Point the global logger at a path / stream / ``"stderr"``; returns it.

    Examples
    --------
    >>> import io
    >>> logger = configure_logging(io.StringIO())
    >>> logger.enabled
    True
    >>> _ = configure_logging(None)   # back to disabled
    """
    return _LOGGER.configure(target)


def log_event(event: str, **fields: Any) -> None:
    """``get_logger().event(...)`` — the convenience most call sites want.

    Examples
    --------
    >>> import io
    >>> stream = io.StringIO()
    >>> _ = configure_logging(stream)
    >>> log_event("engine.run", workers=2)
    >>> json.loads(stream.getvalue())["workers"]
    2
    >>> _ = configure_logging(None)
    """
    _LOGGER.event(event, **fields)
