"""``repro top``: a stdlib-only terminal dashboard over ``/metrics``.

The dashboard scrapes a Prometheus text exposition — a running serve
instance's ``/metrics`` URL, or an in-process
:class:`~repro.obs.metrics.MetricsRegistry` — and renders the handful of
numbers that describe the system under load: request rate, latency
quantiles, batch occupancy, cache hit rate, engine-pool worker
utilisation, and shared-memory footprint.  Everything is computed from
the same samples a real Prometheus would collect, so the dashboard and
the monitoring stack can never disagree.

Two modes:

* live (default): redraws every ``interval`` seconds, computing rates
  from consecutive-scrape deltas — quit with Ctrl-C;
* ``--once``: a single scrape rendered once (rates fall back to
  per-uptime averages), for scripting and CI smoke tests.
"""

from __future__ import annotations

import math
import sys
import time
import urllib.request
from typing import IO

from repro.obs.metrics import MetricsRegistry, parse_prometheus

#: ``{(family name, sorted (label, value) pairs): sample value}`` — the
#: shape :func:`repro.obs.metrics.parse_prometheus` produces.
Samples = dict[tuple[str, tuple[tuple[str, str], ...]], float]

#: Default scrape target (the serve CLI's default bind).
DEFAULT_METRICS_URL = "http://127.0.0.1:8080/metrics"


def scrape(source: "str | MetricsRegistry", timeout: float = 5.0) -> Samples:
    """One snapshot of ``source`` — a ``/metrics`` URL or a registry.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_serve_requests_total").inc(3)
    >>> scrape(registry)[("repro_serve_requests_total", ())]
    3.0
    """
    if isinstance(source, MetricsRegistry):
        text = source.render()
    else:
        with urllib.request.urlopen(source, timeout=timeout) as response:
            text = response.read().decode("utf-8")
    return parse_prometheus(text)


def sum_family(samples: Samples, name: str, **match: str) -> float:
    """Sum every sample of family ``name`` whose labels include ``match``.

    Examples
    --------
    >>> samples = {("hits_total", (("worker", "0"),)): 2.0,
    ...            ("hits_total", (("worker", "1"),)): 3.0}
    >>> sum_family(samples, "hits_total")
    5.0
    >>> sum_family(samples, "hits_total", worker="1")
    3.0
    """
    total = 0.0
    for (family, labels), value in samples.items():
        if family != name:
            continue
        if match and not all((key, want) in labels for key, want in match.items()):
            continue
        total += value
    return total


def label_values(samples: Samples, name: str, label: str) -> list[str]:
    """Sorted distinct values of ``label`` across family ``name``.

    Examples
    --------
    >>> samples = {("busy_total", (("worker", "1"),)): 1.0,
    ...            ("busy_total", (("worker", "0"),)): 1.0}
    >>> label_values(samples, "busy_total", "worker")
    ['0', '1']
    """
    values = {
        value
        for (family, labels), _ in samples.items()
        for key, value in labels
        if family == name and key == label
    }
    return sorted(values)


def histogram_quantile(samples: Samples, name: str, q: float) -> float:
    """The interpolated ``q``-quantile of histogram ``name``.

    Bucket series are merged across label sets (e.g. the per-endpoint
    request-latency series combine into one distribution) by summing the
    cumulative ``_bucket`` samples at each ``le`` bound — valid because
    one histogram family shares one bucket layout.  Returns NaN when the
    histogram is absent or empty.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> histogram = registry.histogram("lat_seconds", buckets=(1.0, 2.0))
    >>> for _ in range(4):
    ...     histogram.observe(1.5)
    >>> 1.0 < histogram_quantile(scrape(registry), "lat_seconds", 0.5) <= 2.0
    True
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    cumulative: dict[float, float] = {}
    for (family, labels), value in samples.items():
        if family != f"{name}_bucket":
            continue
        bound = dict(labels).get("le")
        if bound is None:
            continue
        le = math.inf if bound == "+Inf" else float(bound)
        cumulative[le] = cumulative.get(le, 0.0) + value
    if not cumulative:
        return math.nan
    bounds = sorted(cumulative)
    total = cumulative[bounds[-1]]
    if total <= 0:
        return math.nan
    target = q * total
    previous_bound, previous_count = 0.0, 0.0
    for bound in bounds:
        count = cumulative[bound]
        if count >= target:
            if math.isinf(bound):
                # Overflow bucket: clamp to the largest finite bound.
                return previous_bound
            in_bucket = count - previous_count
            if in_bucket <= 0:
                return bound
            fraction = (target - previous_count) / in_bucket
            return previous_bound + fraction * (bound - previous_bound)
        previous_bound, previous_count = bound, count
    return previous_bound


def _rate(
    samples: Samples,
    previous: Samples | None,
    interval: float | None,
    name: str,
    uptime: float,
) -> float:
    """Delta rate between scrapes, falling back to the uptime average."""
    current = sum_family(samples, name)
    if previous is not None and interval and interval > 0:
        return max(0.0, current - sum_family(previous, name)) / interval
    if uptime > 0:
        return current / uptime
    return 0.0


def _format_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    return f"{value:.1f} GiB"  # pragma: no cover — loop always returns


def _format_ms(seconds: float) -> str:
    return "—" if math.isnan(seconds) else f"{1000.0 * seconds:.1f} ms"


def top_rows(
    samples: Samples,
    previous: Samples | None = None,
    interval: float | None = None,
) -> list[tuple[str, str]]:
    """The dashboard's ``(label, value)`` rows from one (or two) scrapes.

    With a ``previous`` scrape and the ``interval`` between them, rates
    are scrape-to-scrape deltas; otherwise they are averages over the
    service / pool uptime gauges (the ``--once`` behaviour).

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_serve_requests_total").inc(5)
    >>> dict(top_rows(scrape(registry)))["requests"]
    '5 (0.00/s)'
    """
    uptime = sum_family(samples, "repro_serve_uptime_seconds")
    requests = sum_family(samples, "repro_serve_requests_total")
    qps = _rate(samples, previous, interval, "repro_serve_requests_total", uptime)
    rows: list[tuple[str, str]] = [
        ("uptime", f"{uptime:.1f} s"),
        ("requests", f"{requests:.0f} ({qps:.2f}/s)"),
        (
            "latency p50 / p99",
            f"{_format_ms(histogram_quantile(samples, 'repro_serve_request_seconds', 0.5))}"
            f" / {_format_ms(histogram_quantile(samples, 'repro_serve_request_seconds', 0.99))}",
        ),
        (
            "batch size / queue depth",
            f"{sum_family(samples, 'repro_serve_mean_batch_size'):.2f} mean / "
            f"{sum_family(samples, 'repro_serve_queue_depth'):.0f} queued",
        ),
        (
            "cache hit rate",
            f"{sum_family(samples, 'repro_serve_cache_hit_rate'):.1%} "
            f"({sum_family(samples, 'repro_serve_cache_entries'):.0f} entries)",
        ),
    ]
    pool_workers = sum_family(samples, "repro_engine_pool_workers")
    pool_uptime = sum_family(samples, "repro_engine_pool_uptime_seconds")
    rows.append(("pool workers", f"{pool_workers:.0f}"))
    workers = label_values(samples, "repro_engine_worker_busy_seconds_total", "worker")
    for worker in workers:
        busy = sum_family(
            samples, "repro_engine_worker_busy_seconds_total", worker=worker
        )
        if previous is not None and interval and interval > 0:
            window = interval
            moved = busy - sum_family(
                previous, "repro_engine_worker_busy_seconds_total", worker=worker
            )
        else:
            window = pool_uptime
            moved = busy
        utilisation = max(0.0, moved) / window if window > 0 else 0.0
        chunks = sum_family(
            samples, "repro_engine_worker_chunks_total", worker=worker
        )
        rows.append(
            (
                f"  worker {worker}",
                f"{min(utilisation, 1.0):.1%} busy, "
                f"{chunks:.0f} chunks, {busy:.2f} s total",
            )
        )
    rows.append(
        (
            "shm",
            f"{_format_bytes(sum_family(samples, 'repro_engine_shm_bytes'))} in "
            f"{sum_family(samples, 'repro_engine_shm_segments'):.0f} segments",
        )
    )
    return rows


def render_top(
    samples: Samples,
    previous: Samples | None = None,
    interval: float | None = None,
    source: str = "",
) -> str:
    """The full dashboard frame as a string (one trailing newline).

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_serve_requests_total").inc(5)
    >>> frame = render_top(scrape(registry))
    >>> "requests" in frame and "repro top" in frame
    True
    """
    rows = top_rows(samples, previous=previous, interval=interval)
    width = max(len(label) for label, _ in rows)
    clock = time.strftime("%H:%M:%S")
    header = f"repro top — {source or 'metrics'} — {clock}"
    lines = [header, "─" * max(len(header), width + 24)]
    lines.extend(f"{label.ljust(width)}  {value}" for label, value in rows)
    return "\n".join(lines) + "\n"


def run_top(
    source: "str | MetricsRegistry" = DEFAULT_METRICS_URL,
    interval: float = 2.0,
    once: bool = False,
    iterations: int | None = None,
    stream: IO[str] | None = None,
) -> int:
    """The ``repro top`` loop; returns a process exit code.

    ``iterations`` bounds the number of frames (tests use it); ``once``
    is shorthand for a single frame with no screen clearing.

    Examples
    --------
    >>> import io
    >>> registry = MetricsRegistry()
    >>> registry.counter("repro_serve_requests_total").inc(1)
    >>> stream = io.StringIO()
    >>> run_top(registry, once=True, stream=stream)
    0
    >>> "repro top" in stream.getvalue()
    True
    """
    out = stream if stream is not None else sys.stdout
    label = source if isinstance(source, str) else "in-process registry"
    previous: Samples | None = None
    frames = 0
    try:
        while True:
            try:
                samples = scrape(source)
            except OSError as error:
                print(f"cannot scrape {label}: {error}", file=sys.stderr)
                return 1
            if not once and frames > 0:
                out.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            out.write(
                render_top(
                    samples,
                    previous=previous,
                    interval=interval if previous is not None else None,
                    source=label,
                )
            )
            out.flush()
            frames += 1
            if once or (iterations is not None and frames >= iterations):
                return 0
            previous = samples
            time.sleep(interval)
    except KeyboardInterrupt:  # pragma: no cover — interactive exit
        return 0
