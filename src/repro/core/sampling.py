"""Negative-candidate pools: Random / Probabilistic / Static (Section 4.1).

The framework's sampling-cost win comes from drawing candidates **once per
(relation, side)** — ``2|R|`` draws in total — instead of once per query.
:func:`build_pools` performs exactly those draws for the three strategies
the paper compares:

* ``random`` — uniform over the full entity set (the OGB-style baseline);
* ``static`` — uniform *inside* the thresholded candidate set, capped at
  the set size (``n_s,r = min(n_s, |set|)`` as in Theorem 1);
* ``probabilistic`` — weighted by the recommender's score column, so
  harder (more credible) negatives are over-represented.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.kg.graph import SIDES, KnowledgeGraph, Side
from repro.core.candidates import CandidateSets
from repro.recommenders.base import FittedRecommender

Strategy = Literal["random", "probabilistic", "static"]

STRATEGIES: tuple[Strategy, ...] = ("random", "probabilistic", "static")


def resolve_sample_size(
    num_entities: int,
    num_samples: int | None = None,
    sample_fraction: float | None = None,
) -> int:
    """Turn a count or fraction into a concrete per-pool sample size."""
    if (num_samples is None) == (sample_fraction is None):
        raise ValueError("specify exactly one of num_samples / sample_fraction")
    if num_samples is not None:
        if num_samples <= 0:
            raise ValueError(f"num_samples must be positive, got {num_samples}")
        return min(num_samples, num_entities)
    assert sample_fraction is not None
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
    return max(1, int(round(sample_fraction * num_entities)))


@dataclass
class NegativePools:
    """The ``2|R|`` sampled candidate pools of one evaluation run."""

    strategy: Strategy
    pools: dict[Side, dict[int, np.ndarray]]
    num_entities: int
    sample_size: int
    build_seconds: float = 0.0

    def pool(self, relation: int, side: Side) -> np.ndarray:
        """The sampled entities for one (relation, side)."""
        return self.pools[side].get(relation, np.empty(0, dtype=np.int64))

    def total_sampled(self) -> int:
        """Total entities drawn — the Table 3 sampling-cost quantity."""
        return sum(
            pool.size for side in SIDES for pool in self.pools[side].values()
        )

    def export_arrays(self) -> tuple[dict, dict[str, np.ndarray]]:
        """Flatten the pools into shared-memory-ready flat arrays.

        Returns ``(meta, arrays)``: ``meta`` is a small picklable dict
        (strategy, sizes, which relations each side holds) and ``arrays``
        holds, per side, the sorted relation ids, CSR-style offsets and
        the concatenated pool values — three contiguous int64 buffers
        that :func:`pools_from_arrays` turns back into an equivalent
        :class:`NegativePools` without copying a single pool entry.
        """
        meta = {
            "strategy": self.strategy,
            "num_entities": self.num_entities,
            "sample_size": self.sample_size,
        }
        arrays: dict[str, np.ndarray] = {}
        for side in SIDES:
            relations = sorted(self.pools[side])
            lengths = [self.pools[side][r].size for r in relations]
            arrays[f"pools_{side}_relations"] = np.asarray(relations, dtype=np.int64)
            arrays[f"pools_{side}_offsets"] = np.concatenate(
                [np.zeros(1, dtype=np.int64), np.cumsum(np.asarray(lengths, dtype=np.int64))]
            )
            arrays[f"pools_{side}_values"] = (
                np.concatenate([self.pools[side][r] for r in relations])
                if relations
                else np.empty(0, dtype=np.int64)
            )
        return meta, arrays

    def __repr__(self) -> str:
        return (
            f"NegativePools({self.strategy!r}, n_s={self.sample_size}, "
            f"total={self.total_sampled()})"
        )


def pools_from_arrays(
    meta: dict, arrays: dict[str, np.ndarray]
) -> NegativePools:
    """Rebuild a :class:`NegativePools` view over exported flat arrays.

    Each per-relation pool is a slice of the shared ``values`` buffer —
    zero-copy, so a worker process attaching the arrays through
    ``multiprocessing.shared_memory`` sees exactly the parent's pools.
    """
    pools: dict[Side, dict[int, np.ndarray]] = {}
    for side in SIDES:
        relations = arrays[f"pools_{side}_relations"]
        offsets = arrays[f"pools_{side}_offsets"]
        values = arrays[f"pools_{side}_values"]
        pools[side] = {
            int(relation): values[offsets[i] : offsets[i + 1]]
            for i, relation in enumerate(relations)
        }
    return NegativePools(
        strategy=meta["strategy"],
        pools=pools,
        num_entities=meta["num_entities"],
        sample_size=meta["sample_size"],
    )


def _draw_random(
    num_entities: int, sample_size: int, rng: np.random.Generator
) -> np.ndarray:
    return np.sort(rng.choice(num_entities, size=sample_size, replace=False))


def _draw_static(
    candidates: np.ndarray, sample_size: int, rng: np.random.Generator
) -> np.ndarray:
    if candidates.size == 0:
        return candidates
    take = min(sample_size, candidates.size)
    return np.sort(rng.choice(candidates, size=take, replace=False))


def _draw_probabilistic(
    probabilities: np.ndarray, sample_size: int, rng: np.random.Generator
) -> np.ndarray:
    support = int(np.count_nonzero(probabilities))
    take = min(sample_size, support)
    if take == 0:
        return np.empty(0, dtype=np.int64)
    drawn = rng.choice(
        probabilities.shape[0], size=take, replace=False, p=probabilities
    )
    return np.sort(drawn.astype(np.int64))


def build_pools(
    graph: KnowledgeGraph,
    strategy: Strategy,
    rng: np.random.Generator,
    num_samples: int | None = None,
    sample_fraction: float | None = None,
    fitted: FittedRecommender | None = None,
    candidates: CandidateSets | None = None,
) -> NegativePools:
    """Draw the per-(relation, side) pools for one strategy.

    ``probabilistic`` needs ``fitted`` (the recommender's score matrix);
    ``static`` needs ``candidates`` (the thresholded sets).  ``random``
    needs neither.
    """
    if strategy not in STRATEGIES:
        raise KeyError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
    if strategy == "probabilistic" and fitted is None:
        raise ValueError("probabilistic sampling requires a fitted recommender")
    if strategy == "static" and candidates is None:
        raise ValueError("static sampling requires candidate sets")
    sample_size = resolve_sample_size(
        graph.num_entities, num_samples=num_samples, sample_fraction=sample_fraction
    )
    start = time.perf_counter()
    pools: dict[Side, dict[int, np.ndarray]] = {side: {} for side in SIDES}
    for side in SIDES:
        for relation in range(graph.num_relations):
            if strategy == "random":
                pool = _draw_random(graph.num_entities, sample_size, rng)
            elif strategy == "static":
                assert candidates is not None
                pool = _draw_static(
                    candidates.candidates(relation, side), sample_size, rng
                )
            else:
                assert fitted is not None
                pool = _draw_probabilistic(
                    fitted.column_probabilities(relation, side), sample_size, rng
                )
            pools[side][relation] = pool
    return NegativePools(
        strategy=strategy,
        pools=pools,
        num_entities=graph.num_entities,
        sample_size=sample_size,
        build_seconds=time.perf_counter() - start,
    )
