"""Sampling-complexity accounting (paper Section 4, Table 3).

An entity-aware candidate generator must draw one candidate pool per
distinct ``(h, r)`` / ``(r, t)`` query pair, so its sampling cost grows as
``O(f_s * |E| * |KG_test|)``.  A relation recommender is agnostic to the
anchoring entity and draws once per (relation, side): ``2 * |R|`` pools of
``f_s * |E|`` candidates.  These functions compute both counts and the
resulting reduction factor for any graph, reproducing Table 3's rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.graph import HEAD, TAIL, KnowledgeGraph, TripleSet


def distinct_test_pairs(split: TripleSet) -> int:
    """Distinct (h,r)- plus (r,t)-pairs — one pool each for entity-aware."""
    return split.unique_pairs(TAIL) + split.unique_pairs(HEAD)


def distinct_test_relations(split: TripleSet) -> int:
    """Distinct relations occurring in the split (the (·,r,·)-instances row)."""
    if len(split) == 0:
        return 0
    return int(len(set(split.relations.tolist())))


@dataclass(frozen=True)
class SamplingComplexity:
    """One Table 3 column: sampling costs of both generator families."""

    dataset_name: str
    sample_fraction: float
    num_entities: int
    num_relations: int
    test_pairs: int
    test_relations: int

    @property
    def samples_per_pool(self) -> int:
        return int(round(self.sample_fraction * self.num_entities))

    @property
    def entity_aware_samples(self) -> int:
        """Pools per distinct query pair (the upper block of Table 3)."""
        return self.test_pairs * self.samples_per_pool

    @property
    def relational_samples(self) -> int:
        """Pools per (relation, side): ``2 |R|`` draws (the lower block).

        Only relations actually present in the test split need pools, so
        the count uses ``2 * test_relations`` exactly as the paper counts
        (·,r,·)-instances rather than the full vocabulary.
        """
        return 2 * self.test_relations * self.samples_per_pool

    @property
    def reduction_factor(self) -> float:
        """How many times fewer samples the relational scheme draws."""
        if self.relational_samples == 0:
            return float("inf")
        return self.entity_aware_samples / self.relational_samples

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "Dataset": self.dataset_name,
            "# (h,r)- & (r,t)-pairs": self.test_pairs,
            "# Samples (entity-aware)": self.entity_aware_samples,
            "(.,r,.)-instances": self.test_relations,
            "# Samples (relational)": self.relational_samples,
            "Sampling reduction": round(self.reduction_factor, 2),
        }


def sampling_complexity(
    graph: KnowledgeGraph,
    sample_fraction: float = 0.025,
    split: str = "test",
) -> SamplingComplexity:
    """Compute Table 3's sampling-cost comparison for one dataset."""
    if not 0.0 < sample_fraction <= 1.0:
        raise ValueError(f"sample_fraction must be in (0, 1], got {sample_fraction}")
    triples: TripleSet = getattr(graph, split)
    return SamplingComplexity(
        dataset_name=graph.name,
        sample_fraction=sample_fraction,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        test_pairs=distinct_test_pairs(triples),
        test_relations=distinct_test_relations(triples),
    )
