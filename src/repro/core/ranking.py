"""Full filtered ranking evaluation — the expensive ground truth.

This is the standard KGC protocol the paper sets out to approximate: for
every test triple and both prediction directions, score *every* entity,
remove known true answers (filtered setting) and record the rank of the
truth.  Cost is ``O(|E|)`` scores per query, ``O(|E| * |test|)`` overall —
the quadratic blow-up (relative to sampled evaluation) that motivates the
whole framework.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import SIDES, KnowledgeGraph, Side, TripleSet
from repro.metrics.ranking import HITS_AT, RankingMetrics, aggregate_ranks
from repro.models.base import KGEModel

Query = tuple[int, int, int, Side]
"""A ranking query: ``(head, relation, tail, side)`` where ``side`` names
the slot being predicted."""


def split_triples(graph: KnowledgeGraph, split: str) -> TripleSet:
    """Resolve a split name to its :class:`TripleSet`."""
    if split not in ("train", "valid", "test"):
        raise KeyError(f"unknown split {split!r}; expected train, valid or test")
    return getattr(graph, split)


def grouped_queries(
    graph: KnowledgeGraph,
    split: str,
    sides: tuple[Side, ...] = SIDES,
) -> dict[tuple[int, Side], list[tuple[int, int, int, int]]]:
    """Group a split's ranking queries by ``(relation, side)``.

    Each group entry is ``(anchor, truth, head, tail)``.  Grouping is what
    lets both evaluators score whole query batches against one candidate
    set / pool with a single matrix product — the same-relation queries
    share their candidates by construction of the framework.
    """
    groups: dict[tuple[int, Side], list[tuple[int, int, int, int]]] = {}
    for h, r, t in split_triples(graph, split):
        for side in sides:
            anchor, truth = (t, h) if side == "head" else (h, t)
            groups.setdefault((r, side), []).append((anchor, truth, h, t))
    return groups


def query_chunks(num_queries: int, chunk_size: int = 128):
    """Yield index slices bounding the ``b x k`` score intermediates."""
    for start in range(0, num_queries, chunk_size):
        yield slice(start, min(start + chunk_size, num_queries))


def collect_known_answers(
    graph: KnowledgeGraph,
    queries: list[tuple[int, int, int, int]],
    relation: int,
    side: Side,
) -> list[np.ndarray]:
    """Per-query filtered-answer arrays, each guaranteed to contain its truth.

    For queries drawn from a graph split the truth is always in the filter
    index; the guard covers caller-supplied triples the index never saw.
    """
    knowns: list[np.ndarray] = []
    for anchor, truth, _, _ in queries:
        known = graph.true_answers(anchor, relation, side)
        if known.size == 0 or known[
            min(int(np.searchsorted(known, truth)), known.size - 1)
        ] != truth:
            known = np.append(known, truth)
        knowns.append(known)
    return knowns


def chunk_filtered_ranks(
    scores: np.ndarray,
    true_scores: np.ndarray,
    knowns: list[np.ndarray],
    pool: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised filtered ranks for one chunk of same-(relation, side) queries.

    ``scores`` is ``(b, k)``: row ``i`` scores the candidates of query
    ``i``.  ``knowns[i]`` are the entity ids to exclude (known answers,
    truth included).  With ``pool`` None the candidate axis *is* the entity
    axis (full evaluation); otherwise ``pool`` maps columns to sorted
    entity ids and exclusions outside the pool are ignored.

    The rank is ``1 + better + ties/2`` over non-excluded candidates; the
    exclusion is applied as a vectorised correction (one fancy-indexed
    gather and two bincounts per chunk) rather than per-row masking, which
    is what keeps sampled evaluation sampling-bound instead of
    Python-bound.
    """
    b = scores.shape[0]
    better = (scores > true_scores[:, None]).sum(axis=1)
    ties = (scores == true_scores[:, None]).sum(axis=1)
    lengths = [known.size for known in knowns]
    if sum(lengths):
        flat = np.concatenate(knowns)
        row_idx = np.repeat(np.arange(b), lengths)
        if pool is None:
            cols = flat
        else:
            cols = np.searchsorted(pool, flat)
            np.minimum(cols, pool.size - 1, out=cols)
            valid = pool[cols] == flat
            row_idx = row_idx[valid]
            cols = cols[valid]
        if row_idx.size:
            values = scores[row_idx, cols]
            reference = true_scores[row_idx]
            better -= np.bincount(row_idx[values > reference], minlength=b)
            ties -= np.bincount(row_idx[values == reference], minlength=b)
    return 1.0 + better + ties / 2.0


def filtered_rank(
    scores: np.ndarray,
    truth: int,
    known_answers: np.ndarray,
) -> float:
    """Filtered 1-based rank of ``truth`` inside a full score vector.

    ``known_answers`` are removed from the competition (their scores are
    ignored); the truth itself always competes.  Ties count half (mean tie
    policy), matching :mod:`repro.metrics.ranking`.
    """
    true_score = scores[truth]
    competitors = scores.copy()
    if known_answers.size:
        competitors[known_answers] = -np.inf
    competitors[truth] = -np.inf  # the truth never competes with itself
    better = int(np.count_nonzero(competitors > true_score))
    ties = int(np.count_nonzero(competitors == true_score))
    return 1.0 + better + ties / 2.0


@dataclass
class FullEvaluationResult:
    """Ranks and aggregate metrics of a full filtered evaluation."""

    metrics: RankingMetrics
    ranks: dict[Query, float] = field(repr=False, default_factory=dict)
    seconds: float = 0.0
    num_scored: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.ranks)


def evaluate_full(
    model: KGEModel,
    graph: KnowledgeGraph,
    split: str = "test",
    hits_at: tuple[int, ...] = HITS_AT,
    sides: tuple[Side, ...] = SIDES,
) -> FullEvaluationResult:
    """Run the full filtered ranking protocol on one split.

    Every triple contributes one query per side in ``sides``; the returned
    per-query ranks are keyed by ``(h, r, t, side)`` so estimators can be
    compared against the ground truth query-by-query.
    """
    start = time.perf_counter()
    ranks: dict[Query, float] = {}
    num_scored = 0
    for (r, side), queries in grouped_queries(graph, split, sides).items():
        anchors = np.asarray([q[0] for q in queries], dtype=np.int64)
        truths = np.asarray([q[1] for q in queries], dtype=np.int64)
        for chunk in query_chunks(len(queries)):
            chunk_queries = queries[chunk]
            scores = model.score_candidates_batch(anchors[chunk], r, side)
            num_scored += scores.size
            true_scores = scores[np.arange(len(chunk_queries)), truths[chunk]]
            knowns = collect_known_answers(graph, chunk_queries, r, side)
            chunk_ranks = chunk_filtered_ranks(scores, true_scores, knowns)
            for (anchor, truth, h, t), rank in zip(chunk_queries, chunk_ranks):
                ranks[(h, r, t, side)] = float(rank)
    seconds = time.perf_counter() - start
    return FullEvaluationResult(
        metrics=aggregate_ranks(ranks.values(), hits_at=hits_at),
        ranks=ranks,
        seconds=seconds,
        num_scored=num_scored,
    )
