"""Full filtered ranking evaluation — the expensive ground truth.

This is the standard KGC protocol the paper sets out to approximate: for
every test triple and both prediction directions, score *every* entity,
remove known true answers (filtered setting) and record the rank of the
truth.  Cost is ``O(|E|)`` scores per query, ``O(|E| * |test|)`` overall —
the quadratic blow-up (relative to sampled evaluation) that motivates the
whole framework.

The chunking / grouping / filtering machinery lives in
:mod:`repro.engine.chunking` (re-exported here for backwards
compatibility) and execution is delegated to
:class:`repro.engine.EvaluationEngine`, so the full protocol can fan its
chunks across worker processes: ``evaluate_full(model, graph, workers=4)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

# Re-exported: the shared chunking substrate moved to repro.engine.
from repro.engine.chunking import (  # noqa: F401
    DEFAULT_CHUNK_SIZE,
    Query,
    chunk_filtered_ranks,
    collect_known_answers,
    grouped_queries,
    query_chunks,
    split_triples,
)
from repro.engine.engine import EvaluationEngine
from repro.kg.graph import SIDES, KnowledgeGraph, Side
from repro.metrics.ranking import HITS_AT, RankingMetrics
from repro.models.base import KGEModel


def filtered_rank(
    scores: np.ndarray,
    truth: int,
    known_answers: np.ndarray,
) -> float:
    """Filtered 1-based rank of ``truth`` inside a full score vector.

    ``known_answers`` are removed from the competition (their scores are
    ignored); the truth itself always competes.  Ties count half (mean tie
    policy), matching :mod:`repro.metrics.ranking`.
    """
    true_score = scores[truth]
    competitors = scores.copy()
    if known_answers.size:
        competitors[known_answers] = -np.inf
    competitors[truth] = -np.inf  # the truth never competes with itself
    better = int(np.count_nonzero(competitors > true_score))
    ties = int(np.count_nonzero(competitors == true_score))
    return 1.0 + better + ties / 2.0


@dataclass
class FullEvaluationResult:
    """Ranks and aggregate metrics of a full filtered evaluation."""

    metrics: RankingMetrics
    ranks: dict[Query, float] = field(repr=False, default_factory=dict)
    seconds: float = 0.0
    num_scored: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.ranks)


def evaluate_full(
    model: KGEModel,
    graph: KnowledgeGraph,
    split: str = "test",
    hits_at: tuple[int, ...] = HITS_AT,
    sides: tuple[Side, ...] = SIDES,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    start_method: str | None = None,
    transport: str | None = None,
) -> FullEvaluationResult:
    """Run the full filtered ranking protocol on one split.

    Every triple contributes one query per side in ``sides``; the returned
    per-query ranks are keyed by ``(h, r, t, side)`` so estimators can be
    compared against the ground truth query-by-query.

    ``workers`` fans the chunk schedule across that many scoring
    processes (1 = in-process serial; negative = all cores); the ranks
    are bitwise-identical either way.  ``chunk_size`` bounds the
    ``chunk_size x |E|`` score intermediate per chunk.  ``start_method``
    and ``transport`` select how parallel runs move data (shared-memory
    persistent pool by default); see :class:`repro.engine.EvaluationEngine`.
    """
    engine = EvaluationEngine(
        workers=workers,
        chunk_size=chunk_size,
        start_method=start_method,
        transport=transport,
    )
    run = engine.run(model, graph, split=split, hits_at=hits_at, sides=sides)
    assert run.ranks is not None
    return FullEvaluationResult(
        metrics=run.metrics,
        ranks=run.ranks,
        seconds=run.seconds,
        num_scored=run.num_scored,
    )
