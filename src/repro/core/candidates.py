"""Static candidate sets: thresholded domains & ranges (paper Section 4.1).

The Static estimator narrows each relation's head/tail candidate pool by
thresholding the recommender's score column.  Per column, the threshold is
chosen to optimize the Candidate Recall / Reduction Rate trade-off — the
smallest Euclidean distance to the ideal point ``(CR, RR) = (1, 1)`` —
using only *training* evidence, so test truths never leak into the sets.

The final evaluation-time candidate set is the thresholded set **union
the observed (PT) entities**, mirroring the paper's remark that in
practice one always folds the already-seen candidates in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.kg.graph import HEAD, SIDES, TAIL, KnowledgeGraph, Side, TripleSet
from repro.metrics.tradeoff import TradeoffPoint
from repro.recommenders.base import FittedRecommender


@dataclass
class CandidateSets:
    """Per-(relation, side) entity candidate sets with their thresholds."""

    sets: dict[Side, dict[int, np.ndarray]]
    thresholds: dict[Side, dict[int, float]]
    num_entities: int
    recommender_name: str = "?"
    build_seconds: float = 0.0

    def candidates(self, relation: int, side: Side) -> np.ndarray:
        """Sorted entity ids admissible for ``(relation, side)``."""
        return self.sets[side].get(relation, np.empty(0, dtype=np.int64))

    def contains(self, entity: int, relation: int, side: Side) -> bool:
        pool = self.candidates(relation, side)
        index = int(np.searchsorted(pool, entity))
        return index < pool.size and int(pool[index]) == entity

    def set_size(self, relation: int, side: Side) -> int:
        return int(self.candidates(relation, side).size)

    def mean_reduction_rate(self) -> float:
        """Unweighted mean RR over all (relation, side) columns."""
        sizes = [
            self.set_size(relation, side)
            for side in SIDES
            for relation in self.sets[side]
        ]
        if not sizes:
            return 0.0
        return float(np.mean([1.0 - size / self.num_entities for size in sizes]))

    def __repr__(self) -> str:
        total = sum(len(self.sets[side]) for side in SIDES)
        return (
            f"CandidateSets({self.recommender_name!r}, {total} columns, "
            f"mean RR={self.mean_reduction_rate():.3f})"
        )


def _training_truths(graph: KnowledgeGraph, relation: int, side: Side) -> np.ndarray:
    """Entities observed on ``side`` of ``relation`` in train + valid."""
    seen = set(graph.observed(relation, side).tolist())
    for h, r, t in graph.valid:
        if r == relation:
            seen.add(h if side == HEAD else t)
    return np.asarray(sorted(seen), dtype=np.int64)


def choose_threshold(
    scores: np.ndarray,
    truths: np.ndarray,
    num_thresholds: int = 32,
) -> tuple[float, TradeoffPoint]:
    """Pick the score threshold minimizing distance to ``(CR, RR) = (1, 1)``.

    ``scores`` is one dense column; ``truths`` are the training-time true
    entities of the column.  Candidate thresholds are quantiles of the
    positive scores.  An empty/zero column returns threshold ``inf`` (an
    empty set) with CR defined as 1 when there are no truths.
    """
    positive = scores[scores > 0]
    if positive.size == 0:
        return np.inf, TradeoffPoint(candidate_recall=1.0 if truths.size == 0 else 0.0, reduction_rate=1.0)
    quantiles = np.unique(
        np.quantile(positive, np.linspace(0.0, 1.0, num_thresholds))
    )
    num_entities = scores.shape[0]
    truth_scores = scores[truths] if truths.size else np.empty(0)
    best_threshold = float(quantiles[0])
    best_point = None
    best_distance = np.inf
    for threshold in quantiles:
        kept = int(np.count_nonzero(scores >= threshold))
        recall = (
            float(np.count_nonzero(truth_scores >= threshold)) / truths.size
            if truths.size
            else 1.0
        )
        point = TradeoffPoint(
            candidate_recall=recall,
            reduction_rate=1.0 - kept / num_entities,
        )
        distance = point.distance_to_ideal()
        if distance < best_distance:
            best_distance = distance
            best_threshold = float(threshold)
            best_point = point
    assert best_point is not None
    return best_threshold, best_point


def build_static_candidates(
    fitted: FittedRecommender,
    graph: KnowledgeGraph,
    include_observed: bool = True,
    num_thresholds: int = 32,
) -> CandidateSets:
    """Threshold every score column into a static candidate set.

    ``include_observed`` unions in the PT (seen-in-training) entities after
    thresholding — the paper's practical default.
    """
    start = time.perf_counter()
    sets: dict[Side, dict[int, np.ndarray]] = {side: {} for side in SIDES}
    thresholds: dict[Side, dict[int, float]] = {side: {} for side in SIDES}
    for side in SIDES:
        for relation in range(graph.num_relations):
            column = fitted.column(relation, side)
            truths = _training_truths(graph, relation, side)
            threshold, _ = choose_threshold(column, truths, num_thresholds)
            selected = np.flatnonzero(column >= threshold).astype(np.int64)
            if include_observed:
                observed = graph.observed(relation, side)
                if observed.size:
                    selected = np.union1d(selected, observed)
            sets[side][relation] = np.sort(selected)
            thresholds[side][relation] = threshold
    return CandidateSets(
        sets=sets,
        thresholds=thresholds,
        num_entities=graph.num_entities,
        recommender_name=fitted.name,
        build_seconds=time.perf_counter() - start,
    )


@dataclass
class TradeoffReport:
    """Table 5 row: CR (Test / Unseen) and RR of one candidate generator."""

    recommender_name: str
    candidate_recall_test: float
    candidate_recall_unseen: float
    reduction_rate: float
    num_test_pairs: int
    num_unseen_pairs: int
    fit_seconds: float = 0.0

    def as_row(self) -> dict[str, float | str | int]:
        return {
            "Model": self.recommender_name,
            "CR Test": round(self.candidate_recall_test, 3),
            "CR Unseen": round(self.candidate_recall_unseen, 3),
            "RR": round(self.reduction_rate, 3),
            "Runtime (s)": round(self.fit_seconds, 3),
        }


def _test_pairs(
    graph: KnowledgeGraph, split: str
) -> dict[Side, set[tuple[int, int]]]:
    """Distinct (entity, relation) combinations per side in a split."""
    triples: TripleSet = getattr(graph, split)
    pairs: dict[Side, set[tuple[int, int]]] = {side: set() for side in SIDES}
    for h, r, t in triples:
        pairs[HEAD].add((h, r))
        pairs[TAIL].add((t, r))
    return pairs


def evaluate_tradeoff(
    sets: CandidateSets,
    graph: KnowledgeGraph,
    split: str = "test",
    fit_seconds: float = 0.0,
) -> TradeoffReport:
    """Measure CR Test / CR Unseen / RR of candidate sets on a split.

    CR Test covers every distinct (entity, relation-side) combination the
    split contains; CR Unseen restricts to combinations absent from train
    and valid.  RR is weighted by test queries: the average fraction of
    entities a query's candidate set filters out, which is exactly the
    scoring-work reduction the evaluation realises.
    """
    pairs = _test_pairs(graph, split)
    seen: dict[Side, set[tuple[int, int]]] = {side: set() for side in SIDES}
    for source in ("train", "valid"):
        for side, combos in _test_pairs(graph, source).items():
            seen[side] |= combos

    hits_test = 0
    total_test = 0
    hits_unseen = 0
    total_unseen = 0
    rr_terms: list[float] = []
    for side in SIDES:
        for entity, relation in sorted(pairs[side]):
            covered = sets.contains(entity, relation, side)
            total_test += 1
            hits_test += int(covered)
            if (entity, relation) not in seen[side]:
                total_unseen += 1
                hits_unseen += int(covered)
            rr_terms.append(1.0 - sets.set_size(relation, side) / sets.num_entities)
    return TradeoffReport(
        recommender_name=sets.recommender_name,
        candidate_recall_test=hits_test / total_test if total_test else 1.0,
        candidate_recall_unseen=hits_unseen / total_unseen if total_unseen else 1.0,
        reduction_rate=float(np.mean(rr_terms)) if rr_terms else 0.0,
        num_test_pairs=total_test,
        num_unseen_pairs=total_unseen,
        fit_seconds=fit_seconds,
    )
