"""Easy-negative mining and the false-negative audit (Tables 2 and 10).

An (entity, relation-side) slot whose recommender score is exactly zero is
an *easy negative*: the recommender has never seen any evidence connecting
the entity to that domain/range, so it can be ruled out of ranking with
near certainty.  The paper's Table 2 counts that mass (millions of slots);
Table 10 audits the rare *false* easy negatives — actual dataset triples
whose participant scores zero, which on inspection are almost always
curation errors like ``(MonthOfAugust, gender, male)``.

The :class:`EasyNegativeClassifier` implements the Section 7 extension: a
closed-world triple classifier that rejects a candidate triple as soon as
either slot scores zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kg.graph import HEAD, TAIL, KnowledgeGraph
from repro.recommenders.base import FittedRecommender


@dataclass(frozen=True)
class FalseEasyNegative:
    """One dataset triple wrongly marked easy (a Table 10 row)."""

    head: int
    relation: int
    tail: int
    split: str
    zero_side: str  # "head", "tail" or "both"

    def labelled(self, graph: KnowledgeGraph) -> tuple[str, str, str]:
        return (
            graph.entities.label_of(self.head),
            graph.relations.label_of(self.relation),
            graph.entities.label_of(self.tail),
        )


@dataclass
class EasyNegativeReport:
    """Table 2 numbers for one (dataset, recommender) pair."""

    recommender_name: str
    dataset_name: str
    num_entities: int
    num_relations: int
    easy_negatives: int
    false_easy_negatives: list[FalseEasyNegative] = field(default_factory=list)

    @property
    def total_slots(self) -> int:
        """All (entity, relation-side) combinations: ``|E| * 2|R|``."""
        return self.num_entities * 2 * self.num_relations

    @property
    def easy_fraction(self) -> float:
        """Easy negatives as a fraction of all slots (Table 2's percent row)."""
        if self.total_slots == 0:
            return 0.0
        return self.easy_negatives / self.total_slots

    @property
    def num_false(self) -> int:
        return len(self.false_easy_negatives)

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "Dataset": self.dataset_name,
            "Easy negatives (%)": round(100.0 * self.easy_fraction, 2),
            "Easy negatives": self.easy_negatives,
            "False easy negatives": self.num_false,
        }


def mine_easy_negatives(
    fitted: FittedRecommender,
    graph: KnowledgeGraph,
    audit_splits: tuple[str, ...] = ("train", "valid", "test"),
) -> EasyNegativeReport:
    """Count zero-score slots and audit them against the dataset triples.

    The easy-negative count is ``|E| * 2|R| - nnz(X)``; the audit walks
    every triple of ``audit_splits`` and flags those whose head scores zero
    in the relation's domain column or whose tail scores zero in its range
    column.
    """
    total_slots = graph.num_entities * 2 * graph.num_relations
    easy = total_slots - fitted.total_nonzero()

    zero_head: dict[int, np.ndarray] = {}
    zero_tail: dict[int, np.ndarray] = {}
    for relation in range(graph.num_relations):
        zero_head[relation] = fitted.zero_mask(relation, HEAD)
        zero_tail[relation] = fitted.zero_mask(relation, TAIL)

    false_negatives: list[FalseEasyNegative] = []
    for split in audit_splits:
        for h, r, t in getattr(graph, split):
            head_zero = bool(zero_head[r][h])
            tail_zero = bool(zero_tail[r][t])
            if not head_zero and not tail_zero:
                continue
            zero_side = "both" if head_zero and tail_zero else ("head" if head_zero else "tail")
            false_negatives.append(
                FalseEasyNegative(
                    head=h, relation=r, tail=t, split=split, zero_side=zero_side
                )
            )
    return EasyNegativeReport(
        recommender_name=fitted.name,
        dataset_name=graph.name,
        num_entities=graph.num_entities,
        num_relations=graph.num_relations,
        easy_negatives=easy,
        false_easy_negatives=false_negatives,
    )


class EasyNegativeClassifier:
    """Closed-world triple classifier from zero recommender scores (§7).

    ``classify`` returns ``False`` (confident negative) when either slot
    of the candidate triple has zero score, ``True`` (plausible) otherwise.
    """

    def __init__(self, fitted: FittedRecommender):
        self.fitted = fitted

    def classify(self, head: int, relation: int, tail: int) -> bool:
        head_score = self.fitted.score_of(head, relation, HEAD)
        tail_score = self.fitted.score_of(tail, relation, TAIL)
        return head_score > 0.0 and tail_score > 0.0

    def classify_batch(self, triples: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`classify` over an ``(n, 3)`` triple array."""
        triples = np.asarray(triples, dtype=np.int64)
        if triples.ndim != 2 or triples.shape[1] != 3:
            raise ValueError(f"expected (n, 3) triples, got {triples.shape}")
        out = np.empty(triples.shape[0], dtype=bool)
        for i, (h, r, t) in enumerate(triples):
            out[i] = self.classify(int(h), int(r), int(t))
        return out
