"""The evaluation framework — the paper's primary contribution.

``EvaluationProtocol`` is the public front door; the submodules expose the
individual stages (full ranking, candidate sets, pools, estimators) plus
the easy-negative and complexity analyses behind the paper's motivation.
"""

from repro.core.auc import AUCEstimate, corrupt_with_pools, estimate_auc
from repro.core.candidates import (
    CandidateSets,
    TradeoffReport,
    build_static_candidates,
    choose_threshold,
    evaluate_tradeoff,
)
from repro.core.complexity import (
    SamplingComplexity,
    distinct_test_pairs,
    distinct_test_relations,
    sampling_complexity,
)
from repro.core.easy_negatives import (
    EasyNegativeClassifier,
    EasyNegativeReport,
    FalseEasyNegative,
    mine_easy_negatives,
)
from repro.core.estimators import (
    SampledEvaluationResult,
    evaluate_sampled,
    expected_gain,
    expected_outranking,
    optimism_curve,
    sampled_rank,
)
from repro.core.protocol import EvaluationProtocol, PreparationReport
from repro.core.ranking import (
    FullEvaluationResult,
    evaluate_full,
    filtered_rank,
)
from repro.core.sampling import (
    STRATEGIES,
    NegativePools,
    Strategy,
    build_pools,
    resolve_sample_size,
)

__all__ = [
    "AUCEstimate",
    "STRATEGIES",
    "CandidateSets",
    "corrupt_with_pools",
    "estimate_auc",
    "EasyNegativeClassifier",
    "EasyNegativeReport",
    "EvaluationProtocol",
    "FalseEasyNegative",
    "FullEvaluationResult",
    "NegativePools",
    "PreparationReport",
    "SampledEvaluationResult",
    "SamplingComplexity",
    "Strategy",
    "TradeoffReport",
    "build_pools",
    "build_static_candidates",
    "choose_threshold",
    "distinct_test_pairs",
    "distinct_test_relations",
    "evaluate_full",
    "evaluate_sampled",
    "evaluate_tradeoff",
    "expected_gain",
    "expected_outranking",
    "filtered_rank",
    "mine_easy_negatives",
    "optimism_curve",
    "sampled_rank",
    "sampling_complexity",
]
