"""Classification-style metrics over sampled negatives (paper §7).

The paper's future-work section proposes complementing ranking metrics
with ROC-AUC / AUC-PR measured against *harder* negatives, since random
negatives make triple classification a nearly solved task (Safavi &
Koutra's CoDEx observation).  :func:`estimate_auc` implements that: score
the split's positive triples, corrupt each one into a negative drawn from
the framework's candidate pools (uniform when ``pools`` is None), and
report both AUC metrics.

The expected behaviour — verified in the tests — is that the same model
looks *much* better against uniform negatives than against pool-guided
ones; the guided number is the honest one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.ranking import split_triples
from repro.core.sampling import NegativePools
from repro.kg.graph import KnowledgeGraph
from repro.metrics.ranking import average_precision, roc_auc
from repro.models.base import KGEModel


@dataclass
class AUCEstimate:
    """ROC-AUC and average precision of positives vs sampled negatives."""

    roc_auc: float
    average_precision: float
    num_positive: int
    num_negative: int
    strategy: str
    seconds: float = 0.0

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "Negatives": self.strategy,
            "ROC-AUC": round(self.roc_auc, 3),
            "AUC-PR": round(self.average_precision, 3),
            "n+": self.num_positive,
            "n-": self.num_negative,
        }


def _score_triples(model: KGEModel, triples: np.ndarray) -> np.ndarray:
    scores = np.empty(triples.shape[0])
    for i, (h, r, t) in enumerate(triples):
        scores[i] = model.score_candidates(
            int(h), int(r), "tail", np.asarray([int(t)], dtype=np.int64)
        )[0]
    return scores


def corrupt_with_pools(
    triples: np.ndarray,
    graph: KnowledgeGraph,
    pools: NegativePools | None,
    rng: np.random.Generator,
    max_retries: int = 8,
) -> np.ndarray:
    """One negative per positive, avoiding known true triples.

    Head/tail corruption alternates at random; the replacement comes from
    the triple's relation-side pool (uniform over the vocabulary when
    ``pools`` is None).  Collisions with known true answers are redrawn up
    to ``max_retries`` times.
    """
    corrupted = triples.copy()
    corrupt_head = rng.random(triples.shape[0]) < 0.5
    for i, (h, r, t) in enumerate(triples):
        side = "head" if corrupt_head[i] else "tail"
        anchor = int(t) if corrupt_head[i] else int(h)
        known = set(graph.true_answers(anchor, int(r), side).tolist())
        pool = pools.pool(int(r), side) if pools is not None else None
        replacement = None
        for _ in range(max_retries):
            if pool is not None and pool.size:
                candidate = int(pool[rng.integers(pool.size)])
            else:
                candidate = int(rng.integers(graph.num_entities))
            if candidate not in known:
                replacement = candidate
                break
        if replacement is None:
            replacement = int(rng.integers(graph.num_entities))
        if corrupt_head[i]:
            corrupted[i, 0] = replacement
        else:
            corrupted[i, 2] = replacement
    return corrupted


def estimate_auc(
    model: KGEModel,
    graph: KnowledgeGraph,
    split: str = "test",
    pools: NegativePools | None = None,
    num_triples: int | None = None,
    seed: int = 0,
) -> AUCEstimate:
    """ROC-AUC / AUC-PR of ``model`` on positives vs sampled negatives."""
    rng = np.random.default_rng(seed)
    start = time.perf_counter()
    positives = split_triples(graph, split).array
    if positives.shape[0] == 0:
        raise ValueError(f"split {split!r} has no triples")
    if num_triples is not None and num_triples < positives.shape[0]:
        keep = rng.choice(positives.shape[0], size=num_triples, replace=False)
        positives = positives[keep]
    negatives = corrupt_with_pools(positives, graph, pools, rng)
    positive_scores = _score_triples(model, positives)
    negative_scores = _score_triples(model, negatives)
    return AUCEstimate(
        roc_auc=roc_auc(positive_scores, negative_scores),
        average_precision=average_precision(positive_scores, negative_scores),
        num_positive=int(positives.shape[0]),
        num_negative=int(negatives.shape[0]),
        strategy=pools.strategy if pools is not None else "random",
        seconds=time.perf_counter() - start,
    )
