"""The one-call evaluation framework API (the library's front door).

:class:`EvaluationProtocol` packages the paper's pipeline — fit a relation
recommender, build candidate sets, draw per-(relation, side) pools, rank
the test queries against them — behind two calls::

    protocol = EvaluationProtocol(graph, recommender="l-wd", strategy="static")
    protocol.prepare()                      # recommender + pools (once)
    estimate = protocol.evaluate(model)     # fast, per model/epoch
    truth = protocol.evaluate_full(model)   # the expensive ground truth

``prepare`` is deliberately split out: its cost is paid once per dataset
while ``evaluate`` runs per model per epoch, which is where the paper's
90-fold speed-up on large graphs comes from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.candidates import CandidateSets, build_static_candidates
from repro.core.estimators import SampledEvaluationResult, evaluate_sampled
from repro.core.ranking import FullEvaluationResult, evaluate_full
from repro.core.sampling import NegativePools, Strategy, build_pools
from repro.engine.chunking import DEFAULT_CHUNK_SIZE
from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.metrics.ranking import HITS_AT
from repro.models.base import KGEModel
from repro.recommenders.base import FittedRecommender, RelationRecommender
from repro.recommenders.registry import build_recommender

if TYPE_CHECKING:
    from repro.store.store import ExperimentStore


@dataclass
class PreparationReport:
    """Timings of the once-per-dataset preparation stage.

    ``from_cache`` marks reports restored from an experiment store; the
    timing fields then describe the *original* build, not this process.
    """

    recommender_name: str
    strategy: str
    fit_seconds: float
    candidates_seconds: float
    pools_seconds: float
    from_cache: bool = False

    @property
    def total_seconds(self) -> float:
        return self.fit_seconds + self.candidates_seconds + self.pools_seconds


class EvaluationProtocol:
    """Fast, accurate sampled evaluation of KGC models.

    Parameters
    ----------
    graph:
        The knowledge graph (train split fits the recommender; valid/test
        splits are evaluated).
    recommender:
        Recommender name (see :func:`repro.recommenders.build_recommender`)
        or an already-constructed :class:`RelationRecommender`.
    strategy:
        ``"random"``, ``"probabilistic"`` or ``"static"``.
    num_samples / sample_fraction:
        Per-pool sample size ``n_s`` — exactly one must be given.
    types:
        Entity types, required by the typed recommenders.
    include_observed:
        Union PT candidates into static sets (the paper's default).
    seed:
        Seed of the pool draws.
    store:
        Optional :class:`repro.store.ExperimentStore`.  With a store,
        ``prepare()`` reloads previously built candidates/pools instead of
        refitting, and ``evaluate_full`` serves cached ground truths for
        bit-identical (graph, model, split) configurations.
    workers:
        Scoring processes for ``evaluate`` / ``evaluate_full`` (1 =
        serial in-process, negative = all cores).  The engine fans query
        chunks across the workers; ranks are bitwise-identical at any
        worker count.
    chunk_size:
        Queries ranked per score-matrix chunk — bounds the per-chunk
        ``chunk_size x num_candidates`` intermediate.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        recommender: str | RelationRecommender = "l-wd",
        strategy: Strategy = "static",
        num_samples: int | None = None,
        sample_fraction: float | None = None,
        types: TypeStore | None = None,
        include_observed: bool = True,
        seed: int = 0,
        store: "ExperimentStore | None" = None,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        if num_samples is None and sample_fraction is None:
            sample_fraction = 0.1  # the paper's default operating point
        self.graph = graph
        self.strategy: Strategy = strategy
        self.num_samples = num_samples
        self.sample_fraction = sample_fraction
        self.types = types
        self.include_observed = include_observed
        self.seed = seed
        self.store = store
        self.workers = workers
        self.chunk_size = chunk_size
        if isinstance(recommender, str):
            recommender = build_recommender(recommender)
        self.recommender = recommender
        self.fitted: FittedRecommender | None = None
        self.candidates: CandidateSets | None = None
        self.pools: NegativePools | None = None
        self.preparation: PreparationReport | None = None

    # ------------------------------------------------------------------
    def _preparation_key(self) -> str:
        from repro.store.keys import preparation_key

        return preparation_key(
            self.graph,
            self.recommender.name,
            self.strategy,
            self.num_samples,
            self.sample_fraction,
            self.include_observed,
            self.seed,
        )

    def _restore_preparation(self, key: str) -> PreparationReport | None:
        """Reload a previous prepare() from the store, or None on miss."""
        assert self.store is not None
        artifacts = self.store.artifacts
        report = artifacts.get_json("prep", key)
        if report is None:
            return None
        pools = artifacts.get_pools(key)
        if pools is None:
            return None
        if self.strategy == "static":
            self.candidates = artifacts.get_candidates(key)
            if self.candidates is None:
                return None
        self.pools = pools
        return PreparationReport(
            recommender_name=report["recommender_name"],
            strategy=report["strategy"],
            fit_seconds=report["fit_seconds"],
            candidates_seconds=report["candidates_seconds"],
            pools_seconds=report["pools_seconds"],
            from_cache=True,
        )

    def _persist_preparation(self, key: str, report: PreparationReport) -> None:
        assert self.store is not None and self.pools is not None
        artifacts = self.store.artifacts
        labels = {
            "graph": self.graph.name,
            "recommender": self.recommender.name,
            "strategy": self.strategy,
        }
        artifacts.put_pools(key, self.pools, labels=labels)
        if self.strategy == "static" and self.candidates is not None:
            artifacts.put_candidates(key, self.candidates, labels=labels)
        artifacts.put_json(
            "prep",
            key,
            {
                "recommender_name": report.recommender_name,
                "strategy": report.strategy,
                "fit_seconds": report.fit_seconds,
                "candidates_seconds": report.candidates_seconds,
                "pools_seconds": report.pools_seconds,
            },
            labels=labels,
        )

    def prepare(self) -> PreparationReport:
        """Fit the recommender and draw the pools (idempotent).

        With a store attached, a previously persisted preparation of the
        same (graph, recommender, strategy, sample size, seed) is reloaded
        instead of rebuilt; the recommender is then left unfitted until
        something (e.g. :meth:`resample` under ``probabilistic``) needs it.
        """
        if self.preparation is not None:
            return self.preparation
        # Warm the filtered-ranking index: a once-per-dataset cost that
        # belongs to preparation, not to any timed evaluation — on the
        # cache-restored path too, or the build would land inside the
        # first timed evaluate() call.
        self.graph.filter_index  # noqa: B018 — deliberate cache warm-up
        if self.store is not None:
            restored = self._restore_preparation(self._preparation_key())
            if restored is not None:
                self.preparation = restored
                return restored
        needs_recommender = self.strategy in ("probabilistic", "static")
        fit_seconds = 0.0
        if needs_recommender:
            self.fitted = self.recommender.fit(self.graph, self.types)
            fit_seconds = self.fitted.fit_seconds
        candidates_seconds = 0.0
        if self.strategy == "static":
            assert self.fitted is not None
            self.candidates = build_static_candidates(
                self.fitted, self.graph, include_observed=self.include_observed
            )
            candidates_seconds = self.candidates.build_seconds
        start = time.perf_counter()
        self.pools = build_pools(
            self.graph,
            self.strategy,
            rng=np.random.default_rng(self.seed),
            num_samples=self.num_samples,
            sample_fraction=self.sample_fraction,
            fitted=self.fitted,
            candidates=self.candidates,
        )
        pools_seconds = time.perf_counter() - start
        self.preparation = PreparationReport(
            recommender_name=self.recommender.name,
            strategy=self.strategy,
            fit_seconds=fit_seconds,
            candidates_seconds=candidates_seconds,
            pools_seconds=pools_seconds,
        )
        if self.store is not None:
            self._persist_preparation(self._preparation_key(), self.preparation)
        return self.preparation

    def resample(self, seed: int) -> None:
        """Redraw the pools with a new seed (for repeated-sampling CIs).

        The protocol's ``seed`` is updated to the new draw, so the store
        cache key follows the pools: resampled artifacts persist under
        the *new* seed's preparation key and never collide with (or
        overwrite) the original draw's cached pools.  With a store
        attached, a previously persisted draw of the same seed is
        restored instead of redrawn — ``resample`` is exactly as
        cache-friendly as ``prepare``.
        """
        if self.preparation is None:
            self.seed = seed
            self.prepare()
            return
        self.seed = seed
        if self.store is not None:
            restored = self._restore_preparation(self._preparation_key())
            if restored is not None:
                self.preparation = restored
                return
        if self.strategy == "probabilistic" and self.fitted is None:
            # A cache-restored preparation skips fitting; resampling under
            # the probabilistic strategy genuinely needs the score matrix.
            self.fitted = self.recommender.fit(self.graph, self.types)
        start = time.perf_counter()
        self.pools = build_pools(
            self.graph,
            self.strategy,
            rng=np.random.default_rng(seed),
            num_samples=self.num_samples,
            sample_fraction=self.sample_fraction,
            fitted=self.fitted,
            candidates=self.candidates,
        )
        self.preparation = PreparationReport(
            recommender_name=self.preparation.recommender_name,
            strategy=self.preparation.strategy,
            fit_seconds=self.preparation.fit_seconds,
            candidates_seconds=self.preparation.candidates_seconds,
            pools_seconds=time.perf_counter() - start,
        )
        if self.store is not None:
            self._persist_preparation(self._preparation_key(), self.preparation)

    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: KGEModel,
        split: str = "test",
        hits_at: tuple[int, ...] = HITS_AT,
        workers: int | None = None,
    ) -> SampledEvaluationResult:
        """Fast sampled estimate of the filtered ranking metrics.

        ``workers`` overrides the protocol-level worker count for this
        call (None = use the protocol's setting).
        """
        if self.pools is None:
            self.prepare()
        assert self.pools is not None
        return evaluate_sampled(
            model,
            self.graph,
            self.pools,
            split=split,
            hits_at=hits_at,
            workers=self.workers if workers is None else workers,
            chunk_size=self.chunk_size,
        )

    def evaluate_full(
        self,
        model: KGEModel,
        split: str = "test",
        hits_at: tuple[int, ...] = HITS_AT,
        workers: int | None = None,
    ) -> FullEvaluationResult:
        """The full filtered ranking protocol (the expensive ground truth).

        With a store attached, the result is served from / saved to the
        ground-truth cache, keyed by the model's exact parameters; on a
        miss the recomputation fans out across ``workers`` processes.
        """
        workers = self.workers if workers is None else workers
        if self.store is not None:
            return self.store.cached_evaluate_full(
                model,
                self.graph,
                split=split,
                hits_at=hits_at,
                workers=workers,
                chunk_size=self.chunk_size,
            )
        return evaluate_full(
            model,
            self.graph,
            split=split,
            hits_at=hits_at,
            workers=workers,
            chunk_size=self.chunk_size,
        )

    def __repr__(self) -> str:
        size = self.num_samples if self.num_samples is not None else f"{self.sample_fraction:.0%}"
        return (
            f"EvaluationProtocol({self.graph.name!r}, recommender={self.recommender.name!r}, "
            f"strategy={self.strategy!r}, n_s={size})"
        )
