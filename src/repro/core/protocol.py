"""The one-call evaluation framework API (the library's front door).

:class:`EvaluationProtocol` packages the paper's pipeline — fit a relation
recommender, build candidate sets, draw per-(relation, side) pools, rank
the test queries against them — behind two calls::

    protocol = EvaluationProtocol(graph, recommender="l-wd", strategy="static")
    protocol.prepare()                      # recommender + pools (once)
    estimate = protocol.evaluate(model)     # fast, per model/epoch
    truth = protocol.evaluate_full(model)   # the expensive ground truth

``prepare`` is deliberately split out: its cost is paid once per dataset
while ``evaluate`` runs per model per epoch, which is where the paper's
90-fold speed-up on large graphs comes from.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.candidates import CandidateSets, build_static_candidates
from repro.core.estimators import SampledEvaluationResult, evaluate_sampled
from repro.core.ranking import FullEvaluationResult, evaluate_full
from repro.core.sampling import NegativePools, Strategy, build_pools
from repro.kg.graph import KnowledgeGraph
from repro.kg.typing import TypeStore
from repro.metrics.ranking import HITS_AT
from repro.models.base import KGEModel
from repro.recommenders.base import FittedRecommender, RelationRecommender
from repro.recommenders.registry import build_recommender


@dataclass
class PreparationReport:
    """Timings of the once-per-dataset preparation stage."""

    recommender_name: str
    strategy: str
    fit_seconds: float
    candidates_seconds: float
    pools_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.fit_seconds + self.candidates_seconds + self.pools_seconds


class EvaluationProtocol:
    """Fast, accurate sampled evaluation of KGC models.

    Parameters
    ----------
    graph:
        The knowledge graph (train split fits the recommender; valid/test
        splits are evaluated).
    recommender:
        Recommender name (see :func:`repro.recommenders.build_recommender`)
        or an already-constructed :class:`RelationRecommender`.
    strategy:
        ``"random"``, ``"probabilistic"`` or ``"static"``.
    num_samples / sample_fraction:
        Per-pool sample size ``n_s`` — exactly one must be given.
    types:
        Entity types, required by the typed recommenders.
    include_observed:
        Union PT candidates into static sets (the paper's default).
    seed:
        Seed of the pool draws.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        recommender: str | RelationRecommender = "l-wd",
        strategy: Strategy = "static",
        num_samples: int | None = None,
        sample_fraction: float | None = None,
        types: TypeStore | None = None,
        include_observed: bool = True,
        seed: int = 0,
    ):
        if num_samples is None and sample_fraction is None:
            sample_fraction = 0.1  # the paper's default operating point
        self.graph = graph
        self.strategy: Strategy = strategy
        self.num_samples = num_samples
        self.sample_fraction = sample_fraction
        self.types = types
        self.include_observed = include_observed
        self.seed = seed
        if isinstance(recommender, str):
            recommender = build_recommender(recommender)
        self.recommender = recommender
        self.fitted: FittedRecommender | None = None
        self.candidates: CandidateSets | None = None
        self.pools: NegativePools | None = None
        self.preparation: PreparationReport | None = None

    # ------------------------------------------------------------------
    def prepare(self) -> PreparationReport:
        """Fit the recommender and draw the pools (idempotent)."""
        if self.preparation is not None:
            return self.preparation
        # Warm the filtered-ranking index: a once-per-dataset cost that
        # belongs to preparation, not to any timed evaluation.
        self.graph.filter_index  # noqa: B018 — deliberate cache warm-up
        needs_recommender = self.strategy in ("probabilistic", "static")
        fit_seconds = 0.0
        if needs_recommender:
            self.fitted = self.recommender.fit(self.graph, self.types)
            fit_seconds = self.fitted.fit_seconds
        candidates_seconds = 0.0
        if self.strategy == "static":
            assert self.fitted is not None
            self.candidates = build_static_candidates(
                self.fitted, self.graph, include_observed=self.include_observed
            )
            candidates_seconds = self.candidates.build_seconds
        start = time.perf_counter()
        self.pools = build_pools(
            self.graph,
            self.strategy,
            rng=np.random.default_rng(self.seed),
            num_samples=self.num_samples,
            sample_fraction=self.sample_fraction,
            fitted=self.fitted,
            candidates=self.candidates,
        )
        pools_seconds = time.perf_counter() - start
        self.preparation = PreparationReport(
            recommender_name=self.recommender.name,
            strategy=self.strategy,
            fit_seconds=fit_seconds,
            candidates_seconds=candidates_seconds,
            pools_seconds=pools_seconds,
        )
        return self.preparation

    def resample(self, seed: int) -> None:
        """Redraw the pools with a new seed (for repeated-sampling CIs)."""
        if self.preparation is None:
            self.seed = seed
            self.prepare()
            return
        self.pools = build_pools(
            self.graph,
            self.strategy,
            rng=np.random.default_rng(seed),
            num_samples=self.num_samples,
            sample_fraction=self.sample_fraction,
            fitted=self.fitted,
            candidates=self.candidates,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        model: KGEModel,
        split: str = "test",
        hits_at: tuple[int, ...] = HITS_AT,
    ) -> SampledEvaluationResult:
        """Fast sampled estimate of the filtered ranking metrics."""
        if self.pools is None:
            self.prepare()
        assert self.pools is not None
        return evaluate_sampled(model, self.graph, self.pools, split=split, hits_at=hits_at)

    def evaluate_full(
        self,
        model: KGEModel,
        split: str = "test",
        hits_at: tuple[int, ...] = HITS_AT,
    ) -> FullEvaluationResult:
        """The full filtered ranking protocol (the expensive ground truth)."""
        return evaluate_full(model, self.graph, split=split, hits_at=hits_at)

    def __repr__(self) -> str:
        size = self.num_samples if self.num_samples is not None else f"{self.sample_fraction:.0%}"
        return (
            f"EvaluationProtocol({self.graph.name!r}, recommender={self.recommender.name!r}, "
            f"strategy={self.strategy!r}, n_s={size})"
        )
