"""Sampled rank estimators and the theory behind their bias (Section 4).

:func:`evaluate_sampled` reproduces the sampled protocol: each query's
truth is ranked against the (filtered) pre-drawn candidate pool of its
relation-side, and the per-query ranks aggregate into MRR / Hits@K exactly
as in the full protocol.  Because the pool omits most easy negatives, a
*good* pool's sampled rank approaches the true filtered rank while scoring
a fraction of the entities.

The companion functions formalise why uniform pools are optimistic:

* :func:`expected_outranking` — the hypergeometric expectation
  ``E[X_u] = n_s * |E_(h,r)| / |E|`` of Equation 1, which vanishes as the
  sample shrinks (hence inflated metrics);
* :func:`expected_gain` — Theorem 1's ``E[Y] >= 0``: sampling inside the
  true range set never lands farther from the true rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sampling import NegativePools
from repro.engine.chunking import DEFAULT_CHUNK_SIZE, Query
from repro.engine.engine import EvaluationEngine
from repro.kg.graph import SIDES, KnowledgeGraph, Side
from repro.metrics.ranking import HITS_AT, RankingMetrics, rank_of
from repro.models.base import KGEModel


@dataclass
class SampledEvaluationResult:
    """Estimated ranks/metrics of one sampled evaluation run."""

    metrics: RankingMetrics
    strategy: str
    ranks: dict[Query, float] = field(repr=False, default_factory=dict)
    seconds: float = 0.0
    num_scored: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.ranks)


def sampled_rank(
    model: KGEModel,
    graph: KnowledgeGraph,
    anchor: int,
    relation: int,
    side: Side,
    truth: int,
    pool: np.ndarray,
) -> tuple[float, int]:
    """Filtered rank of ``truth`` against one candidate pool.

    Known true answers (and the truth itself) are removed from the pool
    before scoring — the filtered setting — so only genuine negatives can
    outrank the truth.  Returns ``(rank, entities_scored)``.
    """
    known = graph.true_answers(anchor, relation, side)
    negatives = pool[~np.isin(pool, known, assume_unique=False)]
    negatives = negatives[negatives != truth]
    true_score = model.score_candidates(
        anchor, relation, side, np.asarray([truth], dtype=np.int64)
    )[0]
    if negatives.size == 0:
        return 1.0, 1
    negative_scores = model.score_candidates(anchor, relation, side, negatives)
    return rank_of(true_score, negative_scores), int(negatives.size) + 1


def evaluate_sampled(
    model: KGEModel,
    graph: KnowledgeGraph,
    pools: NegativePools,
    split: str = "test",
    hits_at: tuple[int, ...] = HITS_AT,
    sides: tuple[Side, ...] = SIDES,
    workers: int = 1,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    start_method: str | None = None,
    transport: str | None = None,
) -> SampledEvaluationResult:
    """Estimate ranking metrics of ``model`` using pre-drawn pools.

    Execution goes through :class:`repro.engine.EvaluationEngine`:
    ``workers`` fans the chunk schedule across scoring processes (the
    state reaches workers through shared memory under the default
    transport) and ``chunk_size`` bounds the per-chunk score matrix.
    Ranks are bitwise-identical across worker counts, start methods and
    transports.
    """
    engine = EvaluationEngine(
        workers=workers,
        chunk_size=chunk_size,
        start_method=start_method,
        transport=transport,
    )
    run = engine.run(
        model, graph, split=split, pools=pools, hits_at=hits_at, sides=sides
    )
    assert run.ranks is not None
    return SampledEvaluationResult(
        metrics=run.metrics,
        strategy=pools.strategy,
        ranks=run.ranks,
        seconds=run.seconds,
        num_scored=run.num_scored,
    )


# ----------------------------------------------------------------------
# Theory: Equation 1 and Theorem 1
# ----------------------------------------------------------------------
def expected_outranking(
    num_better: int, num_entities: int, num_samples: int
) -> float:
    """``E[X_u]`` — expected sampled entities outranking the truth (Eq. 1).

    Sampling ``num_samples`` of ``num_entities`` without replacement when
    ``num_better`` of them outrank the truth is hypergeometric with mean
    ``num_samples * num_better / num_entities``.
    """
    if not 0 <= num_better <= num_entities:
        raise ValueError(f"need 0 <= num_better <= |E|, got {num_better}/{num_entities}")
    if not 0 <= num_samples <= num_entities:
        raise ValueError(f"need 0 <= n_s <= |E|, got {num_samples}/{num_entities}")
    if num_entities == 0:
        return 0.0
    return num_samples * num_better / num_entities


def expected_gain(
    num_better: int,
    num_entities: int,
    range_size: int,
    num_samples: int,
) -> float:
    """``E[Y]`` of Theorem 1 — rank-accuracy gained by in-range sampling.

    ``Y = X_range - X_uniform`` with ``X_range`` the outranking count when
    sampling ``min(n_s, |RS_r|)`` candidates inside the range set.  The
    closed forms are the two cases of the paper's appendix proof; both are
    non-negative whenever ``E_(h,r)`` is contained in the range set.
    """
    if not 0 <= num_better <= range_size <= num_entities:
        raise ValueError(
            "need 0 <= |E_(h,r)| <= |RS_r| <= |E|, got "
            f"{num_better}/{range_size}/{num_entities}"
        )
    if not 0 < num_samples <= num_entities:
        raise ValueError(f"need 0 < n_s <= |E|, got {num_samples}")
    if range_size == 0:
        return 0.0
    if num_samples < range_size:
        return (
            num_better
            * num_samples
            / (range_size * num_entities)
            * (num_entities - range_size)
        )
    return num_better / num_entities * (num_entities - num_samples)


def optimism_curve(
    num_better: int, num_entities: int, sample_sizes: np.ndarray
) -> np.ndarray:
    """``E[X_u]`` for a sweep of sample sizes (the Figure 3b x-axis)."""
    sizes = np.asarray(sample_sizes, dtype=np.float64)
    return sizes * num_better / num_entities
