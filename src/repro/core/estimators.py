"""Sampled rank estimators and the theory behind their bias (Section 4).

:func:`evaluate_sampled` reproduces the sampled protocol: each query's
truth is ranked against the (filtered) pre-drawn candidate pool of its
relation-side, and the per-query ranks aggregate into MRR / Hits@K exactly
as in the full protocol.  Because the pool omits most easy negatives, a
*good* pool's sampled rank approaches the true filtered rank while scoring
a fraction of the entities.

The companion functions formalise why uniform pools are optimistic:

* :func:`expected_outranking` — the hypergeometric expectation
  ``E[X_u] = n_s * |E_(h,r)| / |E|`` of Equation 1, which vanishes as the
  sample shrinks (hence inflated metrics);
* :func:`expected_gain` — Theorem 1's ``E[Y] >= 0``: sampling inside the
  true range set never lands farther from the true rank.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.ranking import (
    Query,
    chunk_filtered_ranks,
    collect_known_answers,
    grouped_queries,
    query_chunks,
    split_triples,
)
from repro.core.sampling import NegativePools
from repro.kg.graph import SIDES, KnowledgeGraph, Side
from repro.metrics.ranking import HITS_AT, RankingMetrics, aggregate_ranks, rank_of
from repro.models.base import KGEModel


@dataclass
class SampledEvaluationResult:
    """Estimated ranks/metrics of one sampled evaluation run."""

    metrics: RankingMetrics
    strategy: str
    ranks: dict[Query, float] = field(repr=False, default_factory=dict)
    seconds: float = 0.0
    num_scored: int = 0

    @property
    def num_queries(self) -> int:
        return len(self.ranks)


def sampled_rank(
    model: KGEModel,
    graph: KnowledgeGraph,
    anchor: int,
    relation: int,
    side: Side,
    truth: int,
    pool: np.ndarray,
) -> tuple[float, int]:
    """Filtered rank of ``truth`` against one candidate pool.

    Known true answers (and the truth itself) are removed from the pool
    before scoring — the filtered setting — so only genuine negatives can
    outrank the truth.  Returns ``(rank, entities_scored)``.
    """
    known = graph.true_answers(anchor, relation, side)
    negatives = pool[~np.isin(pool, known, assume_unique=False)]
    negatives = negatives[negatives != truth]
    true_score = model.score_candidates(
        anchor, relation, side, np.asarray([truth], dtype=np.int64)
    )[0]
    if negatives.size == 0:
        return 1.0, 1
    negative_scores = model.score_candidates(anchor, relation, side, negatives)
    return rank_of(true_score, negative_scores), int(negatives.size) + 1


def evaluate_sampled(
    model: KGEModel,
    graph: KnowledgeGraph,
    pools: NegativePools,
    split: str = "test",
    hits_at: tuple[int, ...] = HITS_AT,
    sides: tuple[Side, ...] = SIDES,
) -> SampledEvaluationResult:
    """Estimate ranking metrics of ``model`` using pre-drawn pools."""
    start = time.perf_counter()
    ranks: dict[Query, float] = {}
    num_scored = 0
    for (r, side), queries in grouped_queries(graph, split, sides).items():
        pool = pools.pool(r, side)
        anchors = np.asarray([q[0] for q in queries], dtype=np.int64)
        truths = np.asarray([q[1] for q in queries], dtype=np.int64)
        for chunk in query_chunks(len(queries)):
            chunk_queries = queries[chunk]
            b = len(chunk_queries)
            # One batched call scores every query's truth: the diagonal of
            # the (b, b) anchor x truth score matrix.
            true_scores = np.diagonal(
                model.score_candidates_batch(anchors[chunk], r, side, truths[chunk])
            )
            if pool.size == 0:
                for (anchor, truth, h, t) in chunk_queries:
                    ranks[(h, r, t, side)] = 1.0
                num_scored += b
                continue
            pool_scores = model.score_candidates_batch(anchors[chunk], r, side, pool)
            num_scored += pool_scores.size + b
            knowns = collect_known_answers(graph, chunk_queries, r, side)
            chunk_ranks = chunk_filtered_ranks(pool_scores, true_scores, knowns, pool=pool)
            for (anchor, truth, h, t), rank in zip(chunk_queries, chunk_ranks):
                ranks[(h, r, t, side)] = float(rank)
    return SampledEvaluationResult(
        metrics=aggregate_ranks(ranks.values(), hits_at=hits_at),
        strategy=pools.strategy,
        ranks=ranks,
        seconds=time.perf_counter() - start,
        num_scored=num_scored,
    )


# ----------------------------------------------------------------------
# Theory: Equation 1 and Theorem 1
# ----------------------------------------------------------------------
def expected_outranking(
    num_better: int, num_entities: int, num_samples: int
) -> float:
    """``E[X_u]`` — expected sampled entities outranking the truth (Eq. 1).

    Sampling ``num_samples`` of ``num_entities`` without replacement when
    ``num_better`` of them outrank the truth is hypergeometric with mean
    ``num_samples * num_better / num_entities``.
    """
    if not 0 <= num_better <= num_entities:
        raise ValueError(f"need 0 <= num_better <= |E|, got {num_better}/{num_entities}")
    if not 0 <= num_samples <= num_entities:
        raise ValueError(f"need 0 <= n_s <= |E|, got {num_samples}/{num_entities}")
    if num_entities == 0:
        return 0.0
    return num_samples * num_better / num_entities


def expected_gain(
    num_better: int,
    num_entities: int,
    range_size: int,
    num_samples: int,
) -> float:
    """``E[Y]`` of Theorem 1 — rank-accuracy gained by in-range sampling.

    ``Y = X_range - X_uniform`` with ``X_range`` the outranking count when
    sampling ``min(n_s, |RS_r|)`` candidates inside the range set.  The
    closed forms are the two cases of the paper's appendix proof; both are
    non-negative whenever ``E_(h,r)`` is contained in the range set.
    """
    if not 0 <= num_better <= range_size <= num_entities:
        raise ValueError(
            "need 0 <= |E_(h,r)| <= |RS_r| <= |E|, got "
            f"{num_better}/{range_size}/{num_entities}"
        )
    if not 0 < num_samples <= num_entities:
        raise ValueError(f"need 0 < n_s <= |E|, got {num_samples}")
    if range_size == 0:
        return 0.0
    if num_samples < range_size:
        return (
            num_better
            * num_samples
            / (range_size * num_entities)
            * (num_entities - range_size)
        )
    return num_better / num_entities * (num_entities - num_samples)


def optimism_curve(
    num_better: int, num_entities: int, sample_sizes: np.ndarray
) -> np.ndarray:
    """``E[X_u]`` for a sweep of sample sizes (the Figure 3b x-axis)."""
    sizes = np.asarray(sample_sizes, dtype=np.float64)
    return sizes * num_better / num_entities
