"""Query grouping, chunk planning and vectorised filtered ranking.

This module is the shared substrate of both evaluation paths: the full
filtered protocol (:func:`repro.core.ranking.evaluate_full`) and the
sampled estimators (:func:`repro.core.estimators.evaluate_sampled`).
Both reduce to the same pipeline —

1. group a split's queries by ``(relation, side)`` so same-candidate
   queries can share one matrix product (:func:`grouped_queries`);
2. cut each group into bounded chunks so the ``b x k`` score
   intermediates stay small (:func:`plan_chunks`);
3. rank each chunk's truths against its candidates with known true
   answers filtered out (:func:`chunk_filtered_ranks`).

The only difference between the two paths is the candidate axis: the full
protocol ranks against *every* entity, the sampled path against a
pre-drawn pool.  :class:`ChunkTask` captures one unit of that pipeline, so
the evaluation engine can run chunks serially or fan them out across
worker processes without duplicating any of the logic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kg.graph import SIDES, KnowledgeGraph, Side, TripleSet

Query = tuple[int, int, int, Side]
"""A ranking query: ``(head, relation, tail, side)`` where ``side`` names
the slot being predicted."""

#: Default number of queries ranked per score-matrix chunk.
DEFAULT_CHUNK_SIZE = 128


def split_triples(graph: KnowledgeGraph, split: str) -> TripleSet:
    """Resolve a split name to its :class:`TripleSet`."""
    if split not in ("train", "valid", "test"):
        raise KeyError(f"unknown split {split!r}; expected train, valid or test")
    return getattr(graph, split)


def grouped_queries(
    graph: KnowledgeGraph,
    split: str,
    sides: tuple[Side, ...] = SIDES,
) -> dict[tuple[int, Side], list[tuple[int, int, int, int]]]:
    """Group a split's ranking queries by ``(relation, side)``.

    Each group entry is ``(anchor, truth, head, tail)``.  Grouping is what
    lets both evaluators score whole query batches against one candidate
    set / pool with a single matrix product — the same-relation queries
    share their candidates by construction of the framework.
    """
    groups: dict[tuple[int, Side], list[tuple[int, int, int, int]]] = {}
    for h, r, t in split_triples(graph, split):
        for side in sides:
            anchor, truth = (t, h) if side == "head" else (h, t)
            groups.setdefault((r, side), []).append((anchor, truth, h, t))
    return groups


def query_chunks(num_queries: int, chunk_size: int = DEFAULT_CHUNK_SIZE):
    """Yield index slices bounding the ``b x k`` score intermediates."""
    for start in range(0, num_queries, chunk_size):
        yield slice(start, min(start + chunk_size, num_queries))


@dataclass(frozen=True)
class ChunkTask:
    """One schedulable unit of evaluation work.

    ``group`` indexes the ordered ``(relation, side)`` group list built by
    :func:`ordered_groups`; ``start``/``stop`` bound the query rows of the
    chunk inside that group.  Tasks are tiny (four integers and a string),
    so shipping them to worker processes costs nothing next to the scoring
    they trigger.
    """

    group: int
    relation: int
    side: Side
    start: int
    stop: int

    @property
    def num_queries(self) -> int:
        return self.stop - self.start


def ordered_groups(
    graph: KnowledgeGraph,
    split: str,
    sides: tuple[Side, ...] = SIDES,
) -> list[tuple[tuple[int, Side], list[tuple[int, int, int, int]]]]:
    """The ``(relation, side)`` groups of a split in deterministic order.

    The order is the insertion order of :func:`grouped_queries` (first
    appearance in the split), which pins both the chunk schedule and the
    rank-dictionary insertion order, so serial and parallel runs produce
    identical results.
    """
    return list(grouped_queries(graph, split, sides).items())


def plan_chunks(
    groups: list[tuple[tuple[int, Side], list[tuple[int, int, int, int]]]],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[ChunkTask]:
    """Cut ordered groups into the engine's chunk schedule."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    tasks: list[ChunkTask] = []
    for group_index, ((relation, side), queries) in enumerate(groups):
        for chunk in query_chunks(len(queries), chunk_size):
            tasks.append(
                ChunkTask(
                    group=group_index,
                    relation=relation,
                    side=side,
                    start=chunk.start,
                    stop=chunk.stop,
                )
            )
    return tasks


def group_offsets(lengths: list[int] | np.ndarray) -> np.ndarray:
    """Start offset of each group inside the concatenated query table.

    ``group_offsets(lengths)[g] + task.start`` is the global row of a
    chunk's first query — the index workers use to write ranks straight
    into the shared result buffer, and the parent uses to read them back.
    The returned array has ``len(lengths) + 1`` entries (the last is the
    total query count).
    """
    return np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(np.asarray(lengths, dtype=np.int64))]
    )


def collect_known_answers(
    graph: KnowledgeGraph,
    queries: list[tuple[int, int, int, int]],
    relation: int,
    side: Side,
) -> list[np.ndarray]:
    """Per-query filtered-answer arrays, each guaranteed to contain its truth.

    For queries drawn from a graph split the truth is always in the filter
    index; the guard covers caller-supplied triples the index never saw.
    """
    knowns: list[np.ndarray] = []
    for anchor, truth, _, _ in queries:
        known = graph.true_answers(anchor, relation, side)
        if known.size == 0 or known[
            min(int(np.searchsorted(known, truth)), known.size - 1)
        ] != truth:
            known = np.append(known, truth)
        knowns.append(known)
    return knowns


def chunk_filtered_ranks(
    scores: np.ndarray,
    true_scores: np.ndarray,
    knowns: list[np.ndarray],
    pool: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorised filtered ranks for one chunk of same-(relation, side) queries.

    ``scores`` is ``(b, k)``: row ``i`` scores the candidates of query
    ``i``.  ``knowns[i]`` are the entity ids to exclude (known answers,
    truth included).  With ``pool`` None the candidate axis *is* the entity
    axis (full evaluation); otherwise ``pool`` maps columns to sorted
    entity ids and exclusions outside the pool are ignored.

    The rank is ``1 + better + ties/2`` over non-excluded candidates; the
    exclusion is applied as a vectorised correction (one fancy-indexed
    gather and two bincounts per chunk) rather than per-row masking, which
    is what keeps sampled evaluation sampling-bound instead of
    Python-bound.
    """
    b = scores.shape[0]
    better = (scores > true_scores[:, None]).sum(axis=1)
    ties = (scores == true_scores[:, None]).sum(axis=1)
    lengths = [known.size for known in knowns]
    if sum(lengths):
        flat = np.concatenate(knowns)
        row_idx = np.repeat(np.arange(b), lengths)
        if pool is None:
            cols = flat
        else:
            cols = np.searchsorted(pool, flat)
            np.minimum(cols, pool.size - 1, out=cols)
            valid = pool[cols] == flat
            row_idx = row_idx[valid]
            cols = cols[valid]
        if row_idx.size:
            values = scores[row_idx, cols]
            reference = true_scores[row_idx]
            better -= np.bincount(row_idx[values > reference], minlength=b)
            ties -= np.bincount(row_idx[values == reference], minlength=b)
    return 1.0 + better + ties / 2.0
