"""Per-worker evaluation state and the chunk-scoring kernel.

The engine's parallel path fans :class:`~repro.engine.chunking.ChunkTask`
objects across a ``multiprocessing`` pool.  Everything heavy — the model
parameters, the graph with its filter index, the candidate pools and the
grouped query arrays — is built **once in the parent** and handed to each
worker through the pool initializer (:func:`initialize_worker`), so each
task only carries four integers.  Under the default ``fork`` start method
on Linux the state is inherited copy-on-write and costs nothing; under
``spawn`` it is pickled exactly once per worker at pool start, never per
chunk.

:func:`score_chunk` is the single scoring kernel both evaluation paths
share; the serial engine path calls it directly on a locally built
:class:`EvaluationState`, which is what guarantees bitwise-equal ranks
between ``workers=1`` and ``workers=N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.chunking import (
    ChunkTask,
    chunk_filtered_ranks,
    collect_known_answers,
    ordered_groups,
)
from repro.kg.graph import SIDES, KnowledgeGraph, Side
from repro.models.base import KGEModel

if TYPE_CHECKING:
    from repro.core.sampling import NegativePools


@dataclass
class GroupState:
    """One ``(relation, side)`` query group with its precomputed id arrays."""

    relation: int
    side: Side
    queries: list[tuple[int, int, int, int]]
    anchors: np.ndarray
    truths: np.ndarray


@dataclass
class EvaluationState:
    """Everything a chunk needs to score: model, graph, groups, pools."""

    model: KGEModel
    graph: KnowledgeGraph
    groups: list[GroupState]
    split: str = "test"
    sides: tuple[Side, ...] = SIDES
    pools: "NegativePools | None" = None


def build_state(
    model: KGEModel,
    graph: KnowledgeGraph,
    split: str,
    sides: tuple[Side, ...] = SIDES,
    pools: "NegativePools | None" = None,
) -> EvaluationState:
    """Materialise the evaluation state for one (model, split) run.

    The group order is deterministic (split iteration order), so the state
    built here and the states built inside worker processes agree on every
    ``ChunkTask.group`` index.
    """
    graph.filter_index  # noqa: B018 — build the index before any timed chunk
    groups = [
        GroupState(
            relation=relation,
            side=side,
            queries=queries,
            anchors=np.asarray([q[0] for q in queries], dtype=np.int64),
            truths=np.asarray([q[1] for q in queries], dtype=np.int64),
        )
        for (relation, side), queries in ordered_groups(graph, split, sides)
    ]
    return EvaluationState(
        model=model, graph=graph, groups=groups, split=split, sides=sides, pools=pools
    )


def score_chunk(state: EvaluationState, task: ChunkTask) -> tuple[np.ndarray, int]:
    """Rank one chunk of queries; returns ``(ranks, entities_scored)``.

    With pools attached the chunk is the sampled path: the truths' scores
    come from the diagonal of the anchor x truth score matrix and the
    candidates are the chunk's relation-side pool.  Without pools it is
    the full path: the candidate axis is the whole entity vocabulary.
    """
    group = state.groups[task.group]
    chunk = slice(task.start, task.stop)
    chunk_queries = group.queries[chunk]
    anchors = group.anchors[chunk]
    truths = group.truths[chunk]
    model = state.model
    b = len(chunk_queries)

    if state.pools is None:
        scores = model.score_candidates_batch(anchors, group.relation, group.side)
        true_scores = scores[np.arange(b), truths]
        knowns = collect_known_answers(
            state.graph, chunk_queries, group.relation, group.side
        )
        return chunk_filtered_ranks(scores, true_scores, knowns), int(scores.size)

    pool = state.pools.pool(group.relation, group.side)
    if pool.size == 0:
        # Nothing competes with the truth: every query ranks first.
        return np.ones(b, dtype=np.float64), b
    # One batched call scores every query's truth: the diagonal of the
    # (b, b) anchor x truth score matrix.
    true_scores = np.diagonal(
        model.score_candidates_batch(anchors, group.relation, group.side, truths)
    )
    pool_scores = model.score_candidates_batch(
        anchors, group.relation, group.side, pool
    )
    knowns = collect_known_answers(
        state.graph, chunk_queries, group.relation, group.side
    )
    ranks = chunk_filtered_ranks(pool_scores, true_scores, knowns, pool=pool)
    return ranks, int(pool_scores.size) + b


# ----------------------------------------------------------------------
# Persistent-pool worker loop (transport="shm")
# ----------------------------------------------------------------------
def worker_main(worker_id: int, task_queue, result_queue) -> None:
    """The long-lived loop of one persistent shared-memory pool worker.

    Messages on ``task_queue``:

    * ``("state", manifest)`` — attach a freshly published state
      (:func:`repro.engine.shm.attach_state`), replacing any previous
      one, and acknowledge with ``("ready", worker_id, state_id,
      attach_seconds)``;
    * ``("task", state_id, index, task, offset, meta)`` — score one
      chunk with :func:`score_chunk` against the attached state, write
      the ranks directly into the shared result buffer at ``offset``,
      and reply ``("done", index, entities_scored, telemetry)`` — the
      ranks themselves never cross the queue;
    * ``("stop",)`` — detach and exit.

    Telemetry: the worker runs its **own** ``MetricsRegistry`` +
    ``Tracer`` (never the parent's process-globals — under ``fork``
    those can snapshot held locks).  When a task carries ``meta`` the
    worker times its stages (queue wait from ``meta["enqueue_ts"]``,
    scoring, the rank write), folds them into its private
    ``repro_engine_worker_*`` counters, and ships the counter delta
    since the previous reply — plus timestamped span events stamped
    with ``meta["trace_id"]`` when ``meta["timeline"]`` asks for them —
    back as the reply's ``telemetry`` dict.  ``meta=None`` is the
    zero-overhead path: score, write, reply, nothing timed.

    Any failure is reported as ``("error", index, traceback)`` instead of
    raised, so the parent always gets a message rather than a dead queue.
    SIGINT is ignored: a Ctrl-C in the parent must interrupt the *parent*
    (which then tears the pool down deliberately), not race ``N`` workers
    into dying mid-write.
    """
    import signal
    import time
    import traceback

    from repro.engine.shm import attach_state
    from repro.obs.context import TraceContext, use_context
    from repro.obs.metrics import MetricsRegistry, counter_deltas
    from repro.obs.trace import Tracer

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover — exotic platforms
        pass
    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, timeline=False)
    shipped: dict[str, float] = {}
    attached = None
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            break
        index = -1
        try:
            if kind == "state":
                if attached is not None:
                    attached.close()
                    attached = None
                attach_start = time.perf_counter()
                attached = attach_state(message[1])
                attach_seconds = time.perf_counter() - attach_start
                result_queue.put(
                    ("ready", worker_id, attached.state_id, attach_seconds)
                )
            elif kind == "task":
                _, state_id, index, task, offset, meta = message
                if attached is None or attached.state_id != state_id:
                    raise RuntimeError(
                        f"worker {worker_id} received a task for state "
                        f"{state_id} but has "
                        f"{attached.state_id if attached else 'no state'} attached"
                    )
                if meta is None:
                    ranks, scored = score_chunk(attached.state, task)
                    attached.result[offset : offset + task.num_queries] = ranks
                    result_queue.put(("done", index, scored, None))
                    continue
                received = time.time()
                tracer.timeline = bool(meta.get("timeline"))
                trace_id = meta.get("trace_id")
                context = (
                    TraceContext(trace_id=trace_id) if trace_id else None
                )
                with use_context(context):
                    wait = max(0.0, received - float(meta["enqueue_ts"]))
                    tracer.record("engine.worker.queue_wait", wait)
                    score_start = time.perf_counter()
                    ranks, scored = score_chunk(attached.state, task)
                    score_seconds = time.perf_counter() - score_start
                    tracer.record("engine.worker.score", score_seconds)
                    write_start = time.perf_counter()
                    attached.result[offset : offset + task.num_queries] = ranks
                    write_seconds = time.perf_counter() - write_start
                    tracer.record("engine.worker.write", write_seconds)
                counters = {
                    "repro_engine_worker_chunks_total": 1.0,
                    "repro_engine_worker_queries_total": float(task.num_queries),
                    "repro_engine_worker_entities_total": float(scored),
                    "repro_engine_worker_queue_wait_seconds_total": wait,
                    "repro_engine_worker_score_seconds_total": score_seconds,
                    "repro_engine_worker_write_seconds_total": write_seconds,
                    "repro_engine_worker_busy_seconds_total": (
                        score_seconds + write_seconds
                    ),
                }
                for name, amount in counters.items():
                    registry.counter(name).inc(amount)
                snapshot = registry.counter_values()
                telemetry = {"counters": counter_deltas(snapshot, shipped)}
                shipped = snapshot
                if tracer.timeline:
                    telemetry["events"] = tracer.events()
                    tracer.reset()
                result_queue.put(("done", index, scored, telemetry))
            else:  # pragma: no cover — protocol error
                raise RuntimeError(f"unknown worker message {kind!r}")
        except BaseException:
            result_queue.put(("error", index, traceback.format_exc()))
    if attached is not None:
        attached.close()


# ----------------------------------------------------------------------
# Legacy pool plumbing (transport="pickle")
# ----------------------------------------------------------------------
_WORKER_STATE: EvaluationState | None = None


def initialize_worker(state: EvaluationState) -> None:
    """Pool initializer: adopt the parent's already-built state.

    The parent builds the state (groups, filter index) exactly once and
    hands it over here — inherited copy-on-write under ``fork``, pickled
    once per worker under ``spawn`` — so workers never repeat the
    O(split) grouping work.
    """
    global _WORKER_STATE
    _WORKER_STATE = state


def run_task(task: ChunkTask) -> tuple[np.ndarray, int]:
    """Score one chunk against the worker's shared state."""
    if _WORKER_STATE is None:
        raise RuntimeError("worker used before initialize_worker ran")
    return score_chunk(_WORKER_STATE, task)
