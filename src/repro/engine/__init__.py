"""The parallel chunked evaluation engine (`repro.engine`).

One execution core for both evaluation protocols: queries are grouped by
``(relation, side)``, cut into bounded chunks, scored — serially, or in
parallel over one of two transports: the default ``"shm"`` transport
publishes the model / graph / pools into ``multiprocessing.shared_memory``
once and reuses a persistent worker pool across runs
(:mod:`repro.engine.pool` / :mod:`repro.engine.shm`); the legacy
``"pickle"`` transport ships the state to a per-run ``multiprocessing``
pool at pool start — and folded into :class:`RankingMetrics`, optionally
through the flat-memory online :class:`RankAccumulator`.

Entry points
------------
* :class:`EvaluationEngine` — ``run()`` a model over a split with
  ``workers=`` / ``chunk_size=`` / ``start_method=`` / ``transport=``
  control (env: ``$REPRO_ENGINE_START_METHOD``, ``$REPRO_ENGINE_TRANSPORT``);
* the same knobs surface on :class:`repro.core.protocol.EvaluationProtocol`,
  :func:`repro.bench.runner.run_training_study` and the CLI
  (``repro evaluate --workers N``);
* :func:`get_engine_pool` / :func:`shutdown_engine_pools` — the
  persistent pool registry behind the shm transport.
"""

from repro.engine.aggregator import RankAccumulator
from repro.engine.chunking import (
    DEFAULT_CHUNK_SIZE,
    ChunkTask,
    Query,
    chunk_filtered_ranks,
    collect_known_answers,
    group_offsets,
    grouped_queries,
    ordered_groups,
    plan_chunks,
    query_chunks,
    split_triples,
)
from repro.engine.engine import EngineRun, EvaluationEngine, resolve_workers
from repro.engine.pool import (
    EngineWorkerError,
    PersistentWorkerPool,
    active_pools,
    get_engine_pool,
    resolve_start_method,
    resolve_transport,
    shutdown_engine_pools,
)
from repro.engine.shm import (
    ShmArena,
    StateManifest,
    attach_state,
    publish_state,
    state_fingerprint,
)
from repro.engine.worker import (
    EvaluationState,
    GroupState,
    build_state,
    score_chunk,
    worker_main,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkTask",
    "EngineRun",
    "EngineWorkerError",
    "EvaluationEngine",
    "EvaluationState",
    "GroupState",
    "PersistentWorkerPool",
    "Query",
    "RankAccumulator",
    "ShmArena",
    "StateManifest",
    "active_pools",
    "attach_state",
    "build_state",
    "chunk_filtered_ranks",
    "collect_known_answers",
    "get_engine_pool",
    "group_offsets",
    "grouped_queries",
    "ordered_groups",
    "plan_chunks",
    "publish_state",
    "query_chunks",
    "resolve_start_method",
    "resolve_transport",
    "resolve_workers",
    "score_chunk",
    "shutdown_engine_pools",
    "split_triples",
    "state_fingerprint",
    "worker_main",
]
