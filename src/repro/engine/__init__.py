"""The parallel chunked evaluation engine (`repro.engine`).

One execution core for both evaluation protocols: queries are grouped by
``(relation, side)``, cut into bounded chunks, scored — serially or
across ``multiprocessing`` workers that receive the model / graph / pools
once at pool start — and folded into :class:`RankingMetrics`, optionally
through the flat-memory online :class:`RankAccumulator`.

Entry points
------------
* :class:`EvaluationEngine` — ``run()`` a model over a split with
  ``workers=`` / ``chunk_size=`` control;
* the same knobs surface on :class:`repro.core.protocol.EvaluationProtocol`,
  :func:`repro.bench.runner.run_training_study` and the CLI
  (``repro evaluate --workers N``).
"""

from repro.engine.aggregator import RankAccumulator
from repro.engine.chunking import (
    DEFAULT_CHUNK_SIZE,
    ChunkTask,
    Query,
    chunk_filtered_ranks,
    collect_known_answers,
    grouped_queries,
    ordered_groups,
    plan_chunks,
    query_chunks,
    split_triples,
)
from repro.engine.engine import EngineRun, EvaluationEngine, resolve_workers
from repro.engine.worker import (
    EvaluationState,
    GroupState,
    build_state,
    score_chunk,
)

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "ChunkTask",
    "EngineRun",
    "EvaluationEngine",
    "EvaluationState",
    "GroupState",
    "Query",
    "RankAccumulator",
    "build_state",
    "chunk_filtered_ranks",
    "collect_known_answers",
    "grouped_queries",
    "ordered_groups",
    "plan_chunks",
    "query_chunks",
    "resolve_workers",
    "score_chunk",
    "split_triples",
]
