"""The shared-memory plane of the parallel evaluation engine.

The legacy (``transport="pickle"``) parallel path ships the whole
evaluation state to every worker through the pool initializer and every
chunk's ranks back through a result queue.  That transport *loses* the
CPU-bound regime: state pickling is paid at every pool start and rank
arrays are serialised per chunk.  This module is the replacement plane:

* :class:`ShmArena` — a named set of ``multiprocessing.shared_memory``
  segments, one per numpy array, created once in the parent.  The arena
  owns the segments (close + unlink exactly once, crash- and
  interrupt-safe via ``atexit``) and keeps the process-wide
  ``repro_engine_shm_bytes`` / ``repro_engine_shm_segments`` gauges
  truthful.
* :func:`publish_state` — flattens an
  :class:`~repro.engine.worker.EvaluationState` into shared memory:
  embedding tables (zero-copy through
  :meth:`~repro.models.base.KGEModel.parameter_arrays`), the CSR filter
  index (:class:`~repro.kg.graph.FilterIndexCSR`), the grouped query
  table, the negative pools
  (:meth:`~repro.core.sampling.NegativePools.export_arrays`) and a
  per-query **result buffer** workers write ranks into directly —
  nothing heavier than a :class:`StateManifest` ever crosses a queue.
* :func:`attach_state` — the worker-side inverse: attach every segment
  by name and rebuild a view-backed ``EvaluationState`` whose arrays
  alias the parent's bytes.

Models that do not expose ``parameter_arrays`` (wrapper scorers such as
:class:`repro.bench.LatencyBoundScorer`) fall back to travelling as one
pickle inside the manifest; everything else still goes through shared
memory, and exactness is unaffected either way.

Memory-mapped models (:func:`repro.models.io.open_mmap`) take a third
route: their parameter bytes already live in files every process can map,
so :func:`publish_state` ships only the shard manifest — workers re-open
the same shards and share the pages through the OS cache, and the state
fingerprint uses the manifest digest instead of hashing the mapped bytes,
so repeat runs republish nothing (see ``docs/scale.md``).
"""

from __future__ import annotations

import pickle
import secrets
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.kg.graph import FilterIndexCSR, Side
from repro.obs import get_registry

if TYPE_CHECKING:
    from repro.engine.worker import EvaluationState

#: Gauge names (documented in docs/observability.md).
SHM_BYTES_GAUGE = "repro_engine_shm_bytes"
SHM_SEGMENTS_GAUGE = "repro_engine_shm_segments"


def _shm_gauges():
    registry = get_registry()
    return (
        registry.gauge(SHM_BYTES_GAUGE, "Live shared-memory bytes owned by engine arenas"),
        registry.gauge(SHM_SEGMENTS_GAUGE, "Live shared-memory segments owned by engine arenas"),
    )


class ShmArena:
    """A named family of shared-memory segments, one per exported array.

    The *parent* creates an arena (``owner=True``): every :meth:`put`
    copies an array into a fresh segment exactly once.  The arena is the
    single owner of those segments — :meth:`close` unlinks them, is
    idempotent, and is also registered on interpreter exit through the
    engine pool registry, so no segment survives the process even when a
    run dies on an exception or a ``KeyboardInterrupt``.
    """

    def __init__(self, tag: str = "repro"):
        self.tag = tag
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._specs: dict[str, tuple[str, tuple[int, ...], str]] = {}
        self._views: dict[str, np.ndarray] = {}
        self._bytes = 0
        self.closed = False

    # ------------------------------------------------------------------
    def put(self, name: str, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a new segment; returns the shared view."""
        if self.closed:
            raise RuntimeError("arena is closed")
        if name in self._segments:
            raise ValueError(f"duplicate arena array {name!r}")
        array = np.ascontiguousarray(array)
        nbytes = max(int(array.nbytes), 1)  # zero-size arrays still need a segment
        segment = shared_memory.SharedMemory(
            create=True, size=nbytes, name=f"{self.tag}_{secrets.token_hex(4)}_{len(self._segments)}"
        )
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
        view[...] = array
        self._segments[name] = segment
        self._specs[name] = (segment.name, tuple(array.shape), array.dtype.str)
        self._views[name] = view
        self._bytes += nbytes
        bytes_gauge, segments_gauge = _shm_gauges()
        bytes_gauge.inc(nbytes)
        segments_gauge.inc()
        return view

    def view(self, name: str) -> np.ndarray:
        """The parent-side shared view of one exported array."""
        return self._views[name]

    @property
    def specs(self) -> dict[str, tuple[str, tuple[int, ...], str]]:
        """``name -> (segment name, shape, dtype)`` — the attach manifest."""
        return dict(self._specs)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def close(self) -> None:
        """Release and unlink every segment (idempotent)."""
        if self.closed:
            return
        self.closed = True
        self._views.clear()
        for segment in self._segments.values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # already gone (e.g. double cleanup paths)
                pass
        self._segments.clear()
        bytes_gauge, segments_gauge = _shm_gauges()
        bytes_gauge.dec(self._bytes)
        segments_gauge.dec(len(self._specs))
        self._bytes = 0

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"{len(self._specs)} segments, {self._bytes} bytes"
        return f"ShmArena({self.tag!r}, {state})"


def attach_array(spec: tuple[str, tuple[int, ...], str]) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Attach one exported array by its ``(segment, shape, dtype)`` spec.

    The attaching process is *not* the owner, so registration with the
    ``resource_tracker`` is suppressed for the duration of the attach —
    Python < 3.13 has no ``track=False`` (bpo-39959), and letting workers
    register segments they merely view would make the shared tracker try
    to unlink the parent's segments (and log spurious KeyErrors when
    several workers attach the same one).
    """
    segment_name, shape, dtype = spec
    original_register = resource_tracker.register

    def _register_skip_shm(name, rtype):  # the tracker API is private but stable
        if rtype != "shared_memory":
            original_register(name, rtype)

    resource_tracker.register = _register_skip_shm
    try:
        segment = shared_memory.SharedMemory(name=segment_name)
    finally:
        resource_tracker.register = original_register
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf), segment


# ----------------------------------------------------------------------
# State manifest: everything a worker needs, none of it heavy
# ----------------------------------------------------------------------
@dataclass
class StateManifest:
    """The picklable description of one published evaluation state."""

    state_id: str
    arrays: dict[str, tuple[str, tuple[int, ...], str]]
    groups: list[tuple[int, Side, int]]  # (relation, side, num queries)
    num_entities: int
    num_relations: int
    split: str
    sides: tuple[Side, ...]
    model_spec: dict | None = None  # registry model: rebuild + attach arrays
    model_pickle: bytes | None = field(default=None, repr=False)  # wrapper fallback
    model_shards: dict | None = None  # mmap model: workers re-open the shards
    pools_meta: dict | None = None
    num_queries: int = 0


@dataclass
class PublishedState:
    """Parent-side handle: the arena plus its manifest and result view."""

    manifest: StateManifest
    arena: ShmArena
    fingerprint: tuple

    @property
    def result_view(self) -> np.ndarray:
        return self.arena.view("result")

    def close(self) -> None:
        self.arena.close()


def state_fingerprint(state: "EvaluationState") -> tuple:
    """A cheap content-aware identity for one evaluation state.

    Object ids alone would go stale when a training loop mutates model
    parameters in place between evaluations, so the model contributes a
    digest of its parameter bytes; the graph and pools are immutable
    after construction, so identity suffices for them.
    """
    import hashlib

    model = state.model
    source = getattr(model, "shard_source", None)
    if source is not None:
        # Memory-mapped models carry a manifest digest computed at save
        # time; hashing the mapped bytes would page the whole table in.
        model_key: object = (id(model), ("mmap", source.digest))
    elif hasattr(model, "parameter_arrays"):
        digest = hashlib.blake2b(digest_size=16)
        for name in sorted(model.parameter_arrays()):
            digest.update(name.encode())
            digest.update(np.ascontiguousarray(model.parameter_arrays()[name]).view(np.uint8))
        model_key = (id(model), digest.hexdigest())
    else:
        model_key = (id(model), None)
    return (
        model_key,
        id(state.graph),
        id(state.pools),
        state.split,
        state.sides,
    )


def publish_state(state: "EvaluationState") -> PublishedState:
    """Flatten one parent-built state into shared memory.

    Exports, each as its own segment: every model parameter table, the
    six CSR filter-index arrays, the concatenated ``(N, 4)`` query table
    with its group offsets, the flattened negative pools (sampled path
    only) and the ``(N,)`` float64 result buffer workers write ranks
    into.  Raises nothing halfway: on failure the partial arena is
    unlinked before the error propagates.
    """
    state_id = secrets.token_hex(8)
    arena = ShmArena(tag=f"repro_{state_id[:8]}")
    try:
        model = state.model
        model_spec = None
        model_pickle = None
        model_shards = None
        source = getattr(model, "shard_source", None)
        if source is not None:
            # Memory-mapped model: the shards on disk *are* the shared
            # plane (every process maps the same file pages), so nothing
            # is copied into shm — workers re-open the manifest.
            model_spec = model.init_spec()
            model_shards = {
                "directory": source.directory,
                "digest": source.digest,
                "nbytes": source.nbytes,
            }
        elif hasattr(model, "parameter_arrays") and hasattr(model, "init_spec"):
            model_spec = model.init_spec()
            for name, array in model.parameter_arrays().items():
                arena.put(f"param_{name}", array)
        else:
            model_pickle = pickle.dumps(model)

        csr = FilterIndexCSR.from_graph(state.graph)
        for name, array in csr.arrays().items():
            arena.put(name, array)

        groups_meta: list[tuple[int, Side, int]] = []
        query_blocks: list[np.ndarray] = []
        for group in state.groups:
            block = np.asarray(group.queries, dtype=np.int64).reshape(-1, 4)
            query_blocks.append(block)
            groups_meta.append((group.relation, group.side, block.shape[0]))
        queries = (
            np.concatenate(query_blocks, axis=0)
            if query_blocks
            else np.empty((0, 4), dtype=np.int64)
        )
        arena.put("queries", queries)
        num_queries = int(queries.shape[0])
        arena.put("result", np.zeros(num_queries, dtype=np.float64))

        pools_meta = None
        if state.pools is not None:
            pools_meta, pool_arrays = state.pools.export_arrays()
            for name, array in pool_arrays.items():
                arena.put(name, array)

        manifest = StateManifest(
            state_id=state_id,
            arrays=arena.specs,
            groups=groups_meta,
            num_entities=csr.num_entities,
            num_relations=csr.num_relations,
            split=state.split,
            sides=state.sides,
            model_spec=model_spec,
            model_pickle=model_pickle,
            model_shards=model_shards,
            pools_meta=pools_meta,
            num_queries=num_queries,
        )
    except BaseException:
        arena.close()
        raise
    return PublishedState(
        manifest=manifest, arena=arena, fingerprint=state_fingerprint(state)
    )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class SharedGraphView:
    """The slice of :class:`~repro.kg.graph.KnowledgeGraph` chunk scoring
    needs — filtered-answer lookups — backed by attached CSR arrays."""

    def __init__(self, csr: FilterIndexCSR, name: str = "shared"):
        self._csr = csr
        self.name = name
        self.num_entities = csr.num_entities
        self.num_relations = csr.num_relations

    def true_answers(self, anchor: int, relation: int, side: Side) -> np.ndarray:
        return self._csr.true_answers(anchor, relation, side)


@dataclass
class AttachedState:
    """A worker's live view of one published state."""

    state_id: str
    state: "EvaluationState"
    result: np.ndarray
    segments: list[shared_memory.SharedMemory] = field(repr=False, default_factory=list)

    def close(self) -> None:
        for segment in self.segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover — views still alive
                pass
        self.segments.clear()


def attach_state(manifest: StateManifest) -> AttachedState:
    """Rebuild a view-backed evaluation state inside a worker process."""
    from repro.core.sampling import pools_from_arrays
    from repro.engine.worker import EvaluationState, GroupState

    arrays: dict[str, np.ndarray] = {}
    segments: list[shared_memory.SharedMemory] = []
    for name, spec in manifest.arrays.items():
        view, segment = attach_array(spec)
        arrays[name] = view
        segments.append(segment)

    if manifest.model_pickle is not None:
        model = pickle.loads(manifest.model_pickle)
    elif manifest.model_shards is not None:
        from repro.models.io import open_mmap

        model = open_mmap(manifest.model_shards["directory"])
        if model.shard_source.digest != manifest.model_shards["digest"]:
            raise RuntimeError(
                f"sharded model at {manifest.model_shards['directory']} "
                f"changed underneath the published state "
                f"({model.shard_source.digest} != "
                f"{manifest.model_shards['digest']})"
            )
    else:
        from repro.models.io import build_from_spec

        assert manifest.model_spec is not None
        model = build_from_spec(manifest.model_spec)
        model.attach_parameter_arrays(
            {
                name[len("param_") :]: view
                for name, view in arrays.items()
                if name.startswith("param_")
            }
        )

    csr = FilterIndexCSR.from_arrays(
        manifest.num_entities, manifest.num_relations, arrays
    )
    graph = SharedGraphView(csr)

    queries = arrays["queries"]
    groups: list[GroupState] = []
    offset = 0
    for relation, side, length in manifest.groups:
        block = queries[offset : offset + length]
        groups.append(
            GroupState(
                relation=relation,
                side=side,
                queries=block,
                anchors=block[:, 0],
                truths=block[:, 1],
            )
        )
        offset += length

    pools = None
    if manifest.pools_meta is not None:
        pools = pools_from_arrays(manifest.pools_meta, arrays)

    state = EvaluationState(
        model=model,
        graph=graph,  # type: ignore[arg-type] — duck-typed true_answers view
        groups=groups,
        split=manifest.split,
        sides=manifest.sides,
        pools=pools,
    )
    return AttachedState(
        state_id=manifest.state_id,
        state=state,
        result=arrays["result"],
        segments=segments,
    )
