"""Online aggregation of per-chunk ranks into :class:`RankingMetrics`.

The engine streams chunks of ranks out of its workers; holding every rank
until the end would put a ``float`` per query per run back on the heap —
exactly the ``O(|test|)`` growth the chunked design avoids on
million-entity graphs.  :class:`RankAccumulator` keeps the running sums
the aggregate metrics need (``sum 1/r``, ``sum r``, per-threshold hit
counts, the query count) so memory stays flat no matter how many chunks
flow through, and partial accumulators from different workers can be
merged associatively.

Two deliberate divergences from the retained-ranks path, which is why
the engine uses the accumulator only when ranks are *not* kept
(``keep_ranks=False``) and the legacy aggregation otherwise, keeping
default results bit-identical with pre-engine releases:

* the streaming mean sums chunk partials in schedule order, which can
  differ from :func:`repro.metrics.ranking.aggregate_ranks`'s pairwise
  summation by float rounding in the last few ulps;
* the accumulator counts every scored query, while the rank dictionary
  collapses *duplicate* triples in a split to one ``(h, r, t, side)``
  entry each (the legacy semantics).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.ranking import HITS_AT, RankingMetrics


class RankAccumulator:
    """Streaming ``ranks -> RankingMetrics`` reducer.

    Examples
    --------
    >>> acc = RankAccumulator(hits_at=(1, 3))
    >>> acc.update(np.asarray([1.0, 4.0]))
    >>> acc.update(np.asarray([2.0]))
    >>> metrics = acc.finalize()
    >>> metrics.num_queries
    3
    >>> round(metrics.mrr, 4)
    0.5833
    >>> metrics.hits_at(3)
    0.6666666666666666
    """

    def __init__(self, hits_at: tuple[int, ...] = HITS_AT):
        self.hits_at = tuple(hits_at)
        self.num_queries = 0
        self.inverse_rank_sum = 0.0
        self.rank_sum = 0.0
        self.hit_counts = {k: 0 for k in self.hits_at}

    def update(self, ranks: np.ndarray) -> None:
        """Fold one chunk of 1-based ranks into the running sums."""
        ranks = np.asarray(ranks, dtype=np.float64)
        if ranks.size == 0:
            return
        if (ranks < 1.0).any():
            raise ValueError("ranks must be >= 1")
        self.num_queries += int(ranks.size)
        self.inverse_rank_sum += float(np.sum(1.0 / ranks))
        self.rank_sum += float(np.sum(ranks))
        for k in self.hits_at:
            self.hit_counts[k] += int(np.count_nonzero(ranks <= k))

    def merge(self, other: "RankAccumulator") -> "RankAccumulator":
        """Fold another accumulator (e.g. a worker partial) into this one."""
        if other.hits_at != self.hits_at:
            raise ValueError(
                f"hits grids differ: {self.hits_at} vs {other.hits_at}"
            )
        self.num_queries += other.num_queries
        self.inverse_rank_sum += other.inverse_rank_sum
        self.rank_sum += other.rank_sum
        for k in self.hits_at:
            self.hit_counts[k] += other.hit_counts[k]
        return self

    def finalize(self) -> RankingMetrics:
        """The aggregate metrics of everything folded in so far."""
        if self.num_queries == 0:
            return RankingMetrics(
                mrr=0.0,
                hits={k: 0.0 for k in self.hits_at},
                mean_rank=0.0,
                num_queries=0,
            )
        n = self.num_queries
        return RankingMetrics(
            mrr=self.inverse_rank_sum / n,
            hits={k: self.hit_counts[k] / n for k in self.hits_at},
            mean_rank=self.rank_sum / n,
            num_queries=n,
        )
