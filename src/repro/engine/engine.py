"""The batched, multi-worker evaluation engine.

:class:`EvaluationEngine` is the single execution core behind both
evaluation protocols: the full filtered ranking
(:func:`repro.core.ranking.evaluate_full`) and the sampled estimators
(:func:`repro.core.estimators.evaluate_sampled`).  One ``run()`` call

1. builds the deterministic chunk schedule
   (:func:`repro.engine.chunking.plan_chunks`);
2. scores the chunks — in-process for ``workers=1``, or across a
   ``multiprocessing`` pool whose workers receive the model / graph /
   pools once at pool start (:mod:`repro.engine.worker`);
3. folds the per-chunk ranks into metrics, either retaining every rank
   (the legacy API surface) or streaming them through the online
   :class:`~repro.engine.aggregator.RankAccumulator` so memory stays flat
   (``keep_ranks=False``).

Chunk results are consumed in schedule order regardless of which worker
finishes first, and scoring itself is deterministic, so ``workers=N``
produces **bitwise-identical ranks** to ``workers=1`` —
``benchmarks/bench_parallel_engine.py`` asserts exactly that next to its
speed-up floor.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import multiprocessing

import numpy as np

from repro.engine.aggregator import RankAccumulator
from repro.engine.chunking import DEFAULT_CHUNK_SIZE, ChunkTask, Query, plan_chunks
from repro.engine.pool import (
    PersistentWorkerPool,
    get_engine_pool,
    resolve_transport,
)
from repro.engine.worker import (
    EvaluationState,
    build_state,
    initialize_worker,
    run_task,
    score_chunk,
)
from repro.kg.graph import SIDES, KnowledgeGraph, Side
from repro.metrics.ranking import HITS_AT, RankingMetrics, aggregate_ranks
from repro.models.base import KGEModel
from repro.obs import get_registry, get_tracer
from repro.obs.log import log_event

if TYPE_CHECKING:
    from repro.core.sampling import NegativePools


def resolve_workers(workers: int | None) -> int:
    """Normalise a worker-count request into a concrete process count.

    ``None`` and ``0`` mean serial; any negative value means "all cores"
    (``os.cpu_count()``), mirroring the ``-1`` convention of joblib.
    """
    if workers is None or workers == 0:
        return 1
    if workers < 0:
        return max(1, os.cpu_count() or 1)
    return workers


@dataclass
class EngineRun:
    """The outcome of one engine pass over a split."""

    metrics: RankingMetrics
    ranks: dict[Query, float] | None = field(repr=False, default=None)
    seconds: float = 0.0
    num_scored: int = 0
    num_queries: int = 0
    workers: int = 1
    chunk_size: int = DEFAULT_CHUNK_SIZE


class EvaluationEngine:
    """Chunk-streamed, optionally multi-process ranking evaluation.

    Parameters
    ----------
    workers:
        Number of scoring processes.  ``1`` (default) runs in-process with
        zero multiprocessing overhead; ``N > 1`` fans chunks across a
        process pool; negative means all cores.
    chunk_size:
        Queries ranked per score-matrix chunk — bounds the ``b x k``
        intermediate at ``chunk_size x num_candidates`` floats.
    start_method:
        Optional ``multiprocessing`` start method (``"fork"``,
        ``"spawn"``, ``"forkserver"``).  ``None`` defers to
        ``$REPRO_ENGINE_START_METHOD``, then the platform default; on
        Linux that is ``fork``, under which the legacy transport inherits
        state copy-on-write instead of pickling it.
    transport:
        How parallel runs move data: ``"shm"`` (default) publishes the
        state into ``multiprocessing.shared_memory`` once and reuses a
        persistent worker pool across runs (:mod:`repro.engine.pool`);
        ``"pickle"`` is the legacy per-run ``multiprocessing.Pool`` path
        that serialises the state at every pool start.  ``None`` defers
        to ``$REPRO_ENGINE_TRANSPORT``, then ``"shm"``.  Serial runs
        (``workers=1``) never touch either transport.
    timeout:
        Optional per-run deadline in seconds for the shm transport; a run
        exceeding it raises :class:`~repro.engine.pool.EngineWorkerError`
        instead of hanging (the fault tests lean on this).
    pool:
        Optional caller-owned :class:`~repro.engine.pool.
        PersistentWorkerPool` the shm transport should run on instead of
        the shared module-level registry — the serve layer injects its
        private pool here so its lifecycle (and ``close()``) stays fully
        its own.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        start_method: str | None = None,
        transport: str | None = None,
        timeout: float | None = None,
        pool: "PersistentWorkerPool | None" = None,
    ):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.start_method = start_method
        self.transport = resolve_transport(transport)
        self.timeout = timeout
        self.pool = pool

    # ------------------------------------------------------------------
    def run(
        self,
        model: KGEModel,
        graph: KnowledgeGraph,
        split: str = "test",
        pools: "NegativePools | None" = None,
        hits_at: tuple[int, ...] = HITS_AT,
        sides: tuple[Side, ...] = SIDES,
        keep_ranks: bool = True,
    ) -> EngineRun:
        """Evaluate ``model`` on one split (sampled iff ``pools`` given).

        With ``keep_ranks=True`` the result carries the per-query rank
        dictionary and the metrics are aggregated exactly as the
        pre-engine implementations did (bit-compatible).  With
        ``keep_ranks=False`` ranks are folded into the online accumulator
        chunk by chunk and discarded, keeping memory flat on arbitrarily
        large splits.

        The two modes agree up to float rounding on well-formed splits;
        if a split contains *duplicate* triples, the rank dictionary
        keeps one entry per distinct query (legacy semantics) while the
        streaming accumulator counts every scored query.
        """
        start = time.perf_counter()
        tracer = get_tracer()
        registry = get_registry()
        registry.gauge(
            "repro_engine_workers", "Worker processes of the last engine run"
        ).set(self.workers)
        registry.gauge(
            "repro_engine_chunk_size", "Chunk size of the last engine run"
        ).set(self.chunk_size)
        with tracer.span("engine.run"):
            state = build_state(model, graph, split, sides=sides, pools=pools)
            tasks = plan_chunks(
                [((g.relation, g.side), g.queries) for g in state.groups],
                self.chunk_size,
            )
            accumulator = RankAccumulator(hits_at)
            ranks: dict[Query, float] | None = {} if keep_ranks else None
            num_scored = 0
            num_queries = 0

            for task, (chunk_ranks, chunk_scored) in self._scored_chunks(state, tasks):
                num_scored += chunk_scored
                num_queries += chunk_ranks.size
                if ranks is None:
                    accumulator.update(chunk_ranks)
                else:
                    group = state.groups[task.group]
                    for (anchor, truth, h, t), rank in zip(
                        group.queries[task.start : task.stop], chunk_ranks
                    ):
                        ranks[(h, task.relation, t, task.side)] = float(rank)
            tracer.add("chunks", len(tasks))
            tracer.add("queries", num_queries)
            tracer.add("scored", num_scored)
        registry.counter(
            "repro_engine_chunks_total", "Chunks scored by the evaluation engine"
        ).inc(len(tasks))
        registry.counter(
            "repro_engine_queries_total", "Queries ranked by the evaluation engine"
        ).inc(num_queries)

        if ranks is not None:
            metrics = aggregate_ranks(ranks.values(), hits_at=hits_at)
            num_queries = len(ranks)  # duplicate queries collapse, as before
        else:
            metrics = accumulator.finalize()
        log_event(
            "engine.run",
            split=split,
            workers=self.workers,
            transport=self.transport if self.workers > 1 else "serial",
            chunks=len(tasks),
            queries=num_queries,
            entities=num_scored,
            seconds=round(time.perf_counter() - start, 6),
        )
        return EngineRun(
            metrics=metrics,
            ranks=ranks,
            seconds=time.perf_counter() - start,
            num_scored=num_scored,
            num_queries=num_queries,
            workers=self.workers,
            chunk_size=self.chunk_size,
        )

    # ------------------------------------------------------------------
    def _scored_chunks(
        self, state: EvaluationState, tasks: list[ChunkTask]
    ) -> Iterator[tuple[ChunkTask, tuple[np.ndarray, int]]]:
        """Yield ``(task, (ranks, scored))`` in deterministic schedule order."""
        tracer = get_tracer()
        workers = min(self.workers, len(tasks)) if tasks else 1
        if workers <= 1:
            if tracer.enabled:
                # A perf_counter pair per chunk is cheaper than a context
                # manager in a loop that may run thousands of times.
                for task in tasks:
                    chunk_start = time.perf_counter()
                    result = score_chunk(state, task)
                    tracer.record("engine.chunk", time.perf_counter() - chunk_start)
                    yield task, result
            else:
                for task in tasks:
                    yield task, score_chunk(state, task)
            return
        if self.transport == "shm":
            pool = self.pool if self.pool is not None else get_engine_pool(
                workers, self.start_method
            )
            wait_start = time.perf_counter()
            results = pool.run_tasks(state, tasks, timeout=self.timeout)
            # The pool returns every chunk at once; one record covers the
            # whole merge-side wait (serial runs keep per-chunk records).
            tracer.record("engine.chunk", time.perf_counter() - wait_start)
            yield from zip(tasks, results)
            return
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(
            processes=workers,
            initializer=initialize_worker,
            initargs=(state,),
        ) as pool:
            # imap preserves submission order, so the merge is
            # schedule-ordered no matter which worker finishes first.
            # Workers are separate processes, so only the merge-side wait
            # is observable here.
            results = pool.imap(run_task, tasks)
            for task in tasks:
                chunk_start = time.perf_counter()
                result = next(results)
                tracer.record("engine.chunk", time.perf_counter() - chunk_start)
                yield task, result

    def __repr__(self) -> str:
        return (
            f"EvaluationEngine(workers={self.workers}, "
            f"chunk_size={self.chunk_size})"
        )
