"""Persistent shared-memory worker pools for the evaluation engine.

A :class:`PersistentWorkerPool` is the long-lived half of the engine's
``transport="shm"`` path: ``N`` daemon worker processes that stay alive
across ``evaluate_full`` / ``evaluate_sampled`` calls (and across serve
requests), each looping on its own task queue.  A pool executes *runs*:

1. :meth:`ensure_state` publishes the evaluation state into shared
   memory (:func:`repro.engine.shm.publish_state`) — skipped entirely
   when the previous run used content-identical state, which is what
   makes repeated evaluation of the same model (training loops, the
   serve path, benchmarks) pay the publish exactly once;
2. chunk tasks are dispatched round-robin; each worker scores its chunks
   with the same :func:`~repro.engine.worker.score_chunk` kernel as the
   serial path and writes the ranks **directly into the shared result
   buffer** — only a ``("done", index, scored, telemetry)`` tuple rides
   the result queue;
3. the parent slices the buffer back into schedule order and merges the
   workers' shipped telemetry deltas into per-worker-labelled
   ``repro_engine_worker_*`` metric families and ``engine.worker.*``
   trace spans (:func:`resolve_telemetry` / ``$REPRO_ENGINE_TELEMETRY``
   turn the shipping off).

Fault model: a worker that dies mid-run (OOM-kill, segfault, ``os._exit``)
is detected by liveness polling on the result-queue wait and surfaces as
:class:`EngineWorkerError` — never a hang; an optional per-run ``timeout``
bounds the wait outright.  Any failed or interrupted run marks the pool
*broken*: its processes are terminated, its shared segments unlinked, and
the module-level registry (:func:`get_engine_pool`) transparently builds
a fresh pool on next use.  An ``atexit`` hook shuts every registered pool
down, so no shm segment or worker process outlives the interpreter.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.chunking import group_offsets
from repro.engine.shm import PublishedState, publish_state, state_fingerprint
from repro.obs import get_registry, get_tracer
from repro.obs.context import current_trace_id
from repro.obs.log import log_event

if TYPE_CHECKING:
    from repro.engine.chunking import ChunkTask
    from repro.engine.worker import EvaluationState

#: Transports the engine can execute a parallel run through.
TRANSPORTS: tuple[str, ...] = ("shm", "pickle")

#: Seconds between liveness checks while waiting on worker results.
POLL_INTERVAL = 0.1

#: Seconds allowed for a worker to attach a freshly published state.
STATE_ATTACH_TIMEOUT = 120.0

#: Help text for the merged per-worker counter families (one labelled
#: series per worker, merged parent-side from shipped deltas).
WORKER_COUNTER_HELP: dict[str, str] = {
    "repro_engine_worker_chunks_total": "Chunks scored, per pool worker",
    "repro_engine_worker_queries_total": "Queries ranked, per pool worker",
    "repro_engine_worker_entities_total": (
        "Candidate entities scored, per pool worker"
    ),
    "repro_engine_worker_queue_wait_seconds_total": (
        "Seconds chunks waited on the task queue, per pool worker"
    ),
    "repro_engine_worker_attach_seconds_total": (
        "Seconds spent attaching shared states, per pool worker"
    ),
    "repro_engine_worker_score_seconds_total": (
        "Seconds spent scoring chunks, per pool worker"
    ),
    "repro_engine_worker_write_seconds_total": (
        "Seconds spent writing ranks to the shared buffer, per pool worker"
    ),
    "repro_engine_worker_busy_seconds_total": (
        "Seconds spent attached + scoring + writing, per pool worker"
    ),
}

#: Worker stage counters folded back into the parent trace as spans.
_STAGE_SPANS: dict[str, str] = {
    "repro_engine_worker_queue_wait_seconds_total": "engine.worker.queue_wait",
    "repro_engine_worker_score_seconds_total": "engine.worker.score",
    "repro_engine_worker_write_seconds_total": "engine.worker.write",
    "repro_engine_worker_attach_seconds_total": "engine.worker.attach",
}


def resolve_telemetry(telemetry: bool | None = None) -> bool:
    """``telemetry`` argument > ``$REPRO_ENGINE_TELEMETRY`` > on.

    Worker-side telemetry is on by default (its cost is a handful of
    clock reads per chunk, asserted ≤5% end-to-end by
    ``bench_parallel_engine``); set ``REPRO_ENGINE_TELEMETRY=0`` to get
    the bare score-and-write worker loop.
    """
    if telemetry is not None:
        return telemetry
    raw = (os.environ.get("REPRO_ENGINE_TELEMETRY") or "").strip().lower()
    return raw not in ("0", "false", "off", "no")


class EngineWorkerError(RuntimeError):
    """A worker process died, failed, or a run exceeded its timeout."""


def resolve_transport(transport: str | None) -> str:
    """``transport`` argument > ``$REPRO_ENGINE_TRANSPORT`` > ``"shm"``."""
    resolved = transport or os.environ.get("REPRO_ENGINE_TRANSPORT") or "shm"
    if resolved not in TRANSPORTS:
        raise ValueError(
            f"unknown engine transport {resolved!r}; expected one of {TRANSPORTS}"
        )
    return resolved


def resolve_start_method(start_method: str | None) -> str:
    """``start_method`` argument > ``$REPRO_ENGINE_START_METHOD`` > platform default."""
    resolved = (
        start_method
        or os.environ.get("REPRO_ENGINE_START_METHOD")
        or multiprocessing.get_start_method()
    )
    if resolved not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"start method {resolved!r} unavailable on this platform; "
            f"have {multiprocessing.get_all_start_methods()}"
        )
    return resolved


class PersistentWorkerPool:
    """``workers`` long-lived scoring processes plus their queues.

    Thread-safe: concurrent callers (e.g. serve request threads) serialise
    on an internal lock, so one run's result buffer is never overwritten
    while another caller is still slicing it.
    """

    def __init__(self, workers: int, start_method: str | None = None):
        if workers < 1:
            raise ValueError(f"pool needs at least 1 worker, got {workers}")
        # Imported here: worker_main lives beside score_chunk and importing
        # it at module top would cycle through repro.engine.__init__.
        from repro.engine.worker import worker_main

        self.workers = workers
        self.start_method = resolve_start_method(start_method)
        self.started_at = time.time()
        self.runs_completed = 0
        self.states_published = 0
        self.broken = False
        self.closed = False
        self._lock = threading.Lock()
        self._published: PublishedState | None = None
        context = multiprocessing.get_context(self.start_method)
        self._task_queues = [context.Queue() for _ in range(workers)]
        self._result_queue = context.Queue()
        self._processes = [
            context.Process(
                target=worker_main,
                args=(worker_id, self._task_queues[worker_id], self._result_queue),
                daemon=True,
                name=f"repro-engine-{worker_id}",
            )
            for worker_id in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._workers_gauge().set(workers, pool=self.label)
        get_registry().counter(
            "repro_engine_pool_starts_total", "Engine worker pools started", labels=("pool",)
        ).inc(pool=self.label)
        log_event(
            "engine.pool.start",
            pool=self.label,
            workers=workers,
            start_method=self.start_method,
            pids=self.worker_pids(),
        )

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return f"{self.workers}-{self.start_method}"

    @staticmethod
    def _workers_gauge():
        return get_registry().gauge(
            "repro_engine_pool_workers",
            "Live worker processes per persistent engine pool",
            labels=("pool",),
        )

    def alive(self) -> bool:
        return (
            not self.closed
            and not self.broken
            and all(process.is_alive() for process in self._processes)
        )

    def worker_pids(self) -> list[int]:
        return [process.pid for process in self._processes if process.pid is not None]

    # ------------------------------------------------------------------
    # State publication
    # ------------------------------------------------------------------
    def ensure_state(self, state: "EvaluationState") -> PublishedState:
        """Publish ``state`` unless the live published state already matches.

        Matching is content-aware (model parameter digest, graph / pools
        identity, split, sides); wrapper models that travel by pickle are
        never considered reusable because their bytes cannot be cheaply
        fingerprinted.
        """
        fingerprint = state_fingerprint(state)
        current = self._published
        reusable = (
            current is not None
            and current.fingerprint == fingerprint
            and current.manifest.model_pickle is None
        )
        if reusable:
            return current  # type: ignore[return-value]
        published = publish_state(state)
        attach_seconds: dict[int, float] = {}
        try:
            for task_queue in self._task_queues:
                task_queue.put(("state", published.manifest))
            deadline = time.monotonic() + STATE_ATTACH_TIMEOUT
            while len(attach_seconds) < self.workers:
                message = self._next_message(deadline, waiting_for="state attach")
                if message[0] == "ready":
                    attach_seconds[message[1]] = float(message[3])
                elif message[0] == "error":
                    raise EngineWorkerError(
                        f"worker failed to attach shared state:\n{message[2]}"
                    )
        except BaseException:
            published.close()
            raise
        if current is not None:
            current.close()
        self._published = published
        self.states_published += 1
        registry = get_registry()
        registry.counter(
            "repro_engine_state_publish_total",
            "Evaluation states published into shared memory",
            labels=("pool",),
        ).inc(pool=self.label)
        # Attach time is measured worker-side and shipped on the "ready"
        # ack — the only stage that happens outside a chunk reply.
        for worker_id, seconds in attach_seconds.items():
            registry.merge_counters(
                {
                    "repro_engine_worker_attach_seconds_total": seconds,
                    "repro_engine_worker_busy_seconds_total": seconds,
                },
                labels={"pool": self.label, "worker": str(worker_id)},
                help_texts=WORKER_COUNTER_HELP,
            )
        log_event(
            "engine.state.publish",
            pool=self.label,
            state_id=published.manifest.state_id,
            shm_bytes=published.arena.nbytes,
            attach_seconds=round(sum(attach_seconds.values()), 6),
        )
        return published

    # ------------------------------------------------------------------
    # Run execution
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        state: "EvaluationState",
        tasks: Sequence["ChunkTask"],
        timeout: float | None = None,
        telemetry: bool | None = None,
    ) -> list[tuple[np.ndarray, int]]:
        """Score ``tasks`` against ``state``; results in schedule order.

        Returns one ``(ranks, entities_scored)`` pair per task.  Any
        failure — worker crash, worker-side exception, timeout, or an
        interrupt of the caller — marks the pool broken and shuts it
        down before re-raising, so shared segments never leak.

        With telemetry on (:func:`resolve_telemetry` — the default) each
        task carries its enqueue timestamp plus the caller's trace id,
        and each reply carries the worker's counter delta; the deltas
        are merged into the process registry as per-worker-labelled
        ``repro_engine_worker_*`` families and folded into the active
        trace as ``engine.worker.*`` spans (plus the workers' own
        timestamped events when the tracer records timelines).
        """
        with self._lock:
            if self.closed or self.broken:
                raise EngineWorkerError("worker pool is no longer usable")
            telemetry_on = resolve_telemetry(telemetry)
            tracer = get_tracer()
            timeline = telemetry_on and tracer.enabled and tracer.timeline
            trace_id = current_trace_id() if timeline else None
            deltas: list[tuple[int, dict]] = []
            try:
                published = self.ensure_state(state)
                manifest = published.manifest
                group_starts = group_offsets(
                    [length for _, _, length in manifest.groups]
                )
                for index, task in enumerate(tasks):
                    offset = int(group_starts[task.group] + task.start)
                    meta = (
                        {
                            "enqueue_ts": time.time(),
                            "timeline": timeline,
                            "trace_id": trace_id,
                        }
                        if telemetry_on
                        else None
                    )
                    self._task_queues[index % self.workers].put(
                        ("task", manifest.state_id, index, task, offset, meta)
                    )
                deadline = time.monotonic() + timeout if timeout is not None else None
                scored: dict[int, int] = {}
                while len(scored) < len(tasks):
                    message = self._next_message(deadline, waiting_for="chunk results")
                    if message[0] == "done":
                        scored[message[1]] = message[2]
                        if message[3] is not None:
                            deltas.append((message[1] % self.workers, message[3]))
                    elif message[0] == "error":
                        raise EngineWorkerError(
                            f"engine worker failed on chunk {message[1]}:\n{message[2]}"
                        )
                buffer = published.result_view
                results: list[tuple[np.ndarray, int]] = []
                for index, task in enumerate(tasks):
                    offset = int(group_starts[task.group] + task.start)
                    ranks = buffer[offset : offset + task.num_queries].copy()
                    results.append((ranks, scored[index]))
            except BaseException:
                self._mark_broken()
                raise
            self.runs_completed += 1
            registry = get_registry()
            registry.counter(
                "repro_engine_pool_runs_total",
                "Evaluation runs executed by persistent engine pools",
                labels=("pool",),
            ).inc(pool=self.label)
            registry.gauge(
                "repro_engine_pool_uptime_seconds",
                "Age of each persistent engine pool at its last run",
                labels=("pool",),
            ).set(round(time.time() - self.started_at, 3), pool=self.label)
            if deltas:
                self._merge_worker_telemetry(deltas, registry, tracer)
            return results

    def _merge_worker_telemetry(self, deltas, registry, tracer) -> None:
        """Fold shipped worker deltas into the parent registry and trace.

        Counters land as ``repro_engine_worker_*{pool=,worker=}`` series
        (so ``/metrics`` exposes them via the serve layer's
        ``repro_engine_`` passthrough); stage seconds also fold into the
        active span tree as ``engine.worker.*`` children, and any
        timestamped worker events append verbatim — their worker-side
        ``pid``/``tid``/``trace_id`` preserved — so a Chrome export
        shows every process on one timeline.
        """
        for worker_id, delta in deltas:
            counters = delta.get("counters", {})
            if counters:
                registry.merge_counters(
                    counters,
                    labels={"pool": self.label, "worker": str(worker_id)},
                    help_texts=WORKER_COUNTER_HELP,
                )
            if not tracer.enabled:
                continue
            chunks = int(counters.get("repro_engine_worker_chunks_total", 1)) or 1
            for counter_name, span_name in _STAGE_SPANS.items():
                seconds = counters.get(counter_name)
                if seconds:
                    tracer.record(span_name, seconds, count=chunks, event=False)
            for event in delta.get("events", ()):
                tracer.add_event(
                    event["name"],
                    event["ts"],
                    event["dur"],
                    pid=event.get("pid"),
                    tid=event.get("tid"),
                    trace_id=event.get("trace_id"),
                    args=event.get("args"),
                )

    def _next_message(self, deadline: float | None, waiting_for: str):
        """One result-queue message, guarded by liveness and the deadline."""
        while True:
            try:
                return self._result_queue.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                dead = [
                    (process.name, process.exitcode)
                    for process in self._processes
                    if not process.is_alive()
                ]
                if dead:
                    raise EngineWorkerError(
                        f"engine worker process(es) died while {waiting_for}: "
                        + ", ".join(f"{name} (exit {code})" for name, code in dead)
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise EngineWorkerError(
                        f"timed out while {waiting_for} "
                        f"(pool {self.label}, timeout exceeded)"
                    ) from None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _mark_broken(self) -> None:
        self.broken = True
        log_event("engine.pool.broken", pool=self.label, runs=self.runs_completed)
        self.shutdown(force=True)

    def shutdown(self, force: bool = False, join_timeout: float = 2.0) -> None:
        """Stop workers, release queues, unlink shared segments (idempotent)."""
        if self.closed:
            return
        self.closed = True
        log_event(
            "engine.pool.shutdown",
            pool=self.label,
            forced=force,
            runs=self.runs_completed,
        )
        if not force:
            for task_queue in self._task_queues:
                try:
                    task_queue.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover — queue gone
                    pass
            for process in self._processes:
                process.join(timeout=join_timeout)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=join_timeout)
        for q in (*self._task_queues, self._result_queue):
            q.cancel_join_thread()
            q.close()
        if self._published is not None:
            self._published.close()
            self._published = None
        self._workers_gauge().set(0, pool=self.label)

    def __repr__(self) -> str:
        status = "closed" if self.closed else ("broken" if self.broken else "live")
        return (
            f"PersistentWorkerPool(workers={self.workers}, "
            f"start_method={self.start_method!r}, {status}, "
            f"runs={self.runs_completed})"
        )


# ----------------------------------------------------------------------
# Module-level pool registry: one pool per (workers, start method)
# ----------------------------------------------------------------------
_POOLS: dict[tuple[int, str], PersistentWorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_engine_pool(
    workers: int, start_method: str | None = None
) -> PersistentWorkerPool:
    """The shared persistent pool for ``(workers, start_method)``.

    Pools persist across engine runs (that is the point); a pool found
    broken or dead is disposed of and rebuilt transparently.
    """
    method = resolve_start_method(start_method)
    key = (workers, method)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and not pool.alive():
            pool.shutdown(force=True)
            pool = None
        if pool is None:
            pool = PersistentWorkerPool(workers, start_method=method)
            _POOLS[key] = pool
        return pool


def active_pools() -> list[PersistentWorkerPool]:
    """Every registry pool that is currently usable."""
    with _POOLS_LOCK:
        return [pool for pool in _POOLS.values() if pool.alive()]


def shutdown_engine_pools() -> None:
    """Stop every registry pool and unlink its shared memory."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_engine_pools)
