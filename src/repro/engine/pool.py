"""Persistent shared-memory worker pools for the evaluation engine.

A :class:`PersistentWorkerPool` is the long-lived half of the engine's
``transport="shm"`` path: ``N`` daemon worker processes that stay alive
across ``evaluate_full`` / ``evaluate_sampled`` calls (and across serve
requests), each looping on its own task queue.  A pool executes *runs*:

1. :meth:`ensure_state` publishes the evaluation state into shared
   memory (:func:`repro.engine.shm.publish_state`) — skipped entirely
   when the previous run used content-identical state, which is what
   makes repeated evaluation of the same model (training loops, the
   serve path, benchmarks) pay the publish exactly once;
2. chunk tasks are dispatched round-robin; each worker scores its chunks
   with the same :func:`~repro.engine.worker.score_chunk` kernel as the
   serial path and writes the ranks **directly into the shared result
   buffer** — only a ``("done", index, scored)`` tuple rides the result
   queue;
3. the parent slices the buffer back into schedule order.

Fault model: a worker that dies mid-run (OOM-kill, segfault, ``os._exit``)
is detected by liveness polling on the result-queue wait and surfaces as
:class:`EngineWorkerError` — never a hang; an optional per-run ``timeout``
bounds the wait outright.  Any failed or interrupted run marks the pool
*broken*: its processes are terminated, its shared segments unlinked, and
the module-level registry (:func:`get_engine_pool`) transparently builds
a fresh pool on next use.  An ``atexit`` hook shuts every registered pool
down, so no shm segment or worker process outlives the interpreter.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import queue as queue_module
import threading
import time
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.engine.chunking import group_offsets
from repro.engine.shm import PublishedState, publish_state, state_fingerprint
from repro.obs import get_registry

if TYPE_CHECKING:
    from repro.engine.chunking import ChunkTask
    from repro.engine.worker import EvaluationState

#: Transports the engine can execute a parallel run through.
TRANSPORTS: tuple[str, ...] = ("shm", "pickle")

#: Seconds between liveness checks while waiting on worker results.
POLL_INTERVAL = 0.1

#: Seconds allowed for a worker to attach a freshly published state.
STATE_ATTACH_TIMEOUT = 120.0


class EngineWorkerError(RuntimeError):
    """A worker process died, failed, or a run exceeded its timeout."""


def resolve_transport(transport: str | None) -> str:
    """``transport`` argument > ``$REPRO_ENGINE_TRANSPORT`` > ``"shm"``."""
    resolved = transport or os.environ.get("REPRO_ENGINE_TRANSPORT") or "shm"
    if resolved not in TRANSPORTS:
        raise ValueError(
            f"unknown engine transport {resolved!r}; expected one of {TRANSPORTS}"
        )
    return resolved


def resolve_start_method(start_method: str | None) -> str:
    """``start_method`` argument > ``$REPRO_ENGINE_START_METHOD`` > platform default."""
    resolved = (
        start_method
        or os.environ.get("REPRO_ENGINE_START_METHOD")
        or multiprocessing.get_start_method()
    )
    if resolved not in multiprocessing.get_all_start_methods():
        raise ValueError(
            f"start method {resolved!r} unavailable on this platform; "
            f"have {multiprocessing.get_all_start_methods()}"
        )
    return resolved


class PersistentWorkerPool:
    """``workers`` long-lived scoring processes plus their queues.

    Thread-safe: concurrent callers (e.g. serve request threads) serialise
    on an internal lock, so one run's result buffer is never overwritten
    while another caller is still slicing it.
    """

    def __init__(self, workers: int, start_method: str | None = None):
        if workers < 1:
            raise ValueError(f"pool needs at least 1 worker, got {workers}")
        # Imported here: worker_main lives beside score_chunk and importing
        # it at module top would cycle through repro.engine.__init__.
        from repro.engine.worker import worker_main

        self.workers = workers
        self.start_method = resolve_start_method(start_method)
        self.started_at = time.time()
        self.runs_completed = 0
        self.states_published = 0
        self.broken = False
        self.closed = False
        self._lock = threading.Lock()
        self._published: PublishedState | None = None
        context = multiprocessing.get_context(self.start_method)
        self._task_queues = [context.Queue() for _ in range(workers)]
        self._result_queue = context.Queue()
        self._processes = [
            context.Process(
                target=worker_main,
                args=(worker_id, self._task_queues[worker_id], self._result_queue),
                daemon=True,
                name=f"repro-engine-{worker_id}",
            )
            for worker_id in range(workers)
        ]
        for process in self._processes:
            process.start()
        self._workers_gauge().set(workers, pool=self.label)
        get_registry().counter(
            "repro_engine_pool_starts_total", "Engine worker pools started", labels=("pool",)
        ).inc(pool=self.label)

    # ------------------------------------------------------------------
    @property
    def label(self) -> str:
        return f"{self.workers}-{self.start_method}"

    @staticmethod
    def _workers_gauge():
        return get_registry().gauge(
            "repro_engine_pool_workers",
            "Live worker processes per persistent engine pool",
            labels=("pool",),
        )

    def alive(self) -> bool:
        return (
            not self.closed
            and not self.broken
            and all(process.is_alive() for process in self._processes)
        )

    def worker_pids(self) -> list[int]:
        return [process.pid for process in self._processes if process.pid is not None]

    # ------------------------------------------------------------------
    # State publication
    # ------------------------------------------------------------------
    def ensure_state(self, state: "EvaluationState") -> PublishedState:
        """Publish ``state`` unless the live published state already matches.

        Matching is content-aware (model parameter digest, graph / pools
        identity, split, sides); wrapper models that travel by pickle are
        never considered reusable because their bytes cannot be cheaply
        fingerprinted.
        """
        fingerprint = state_fingerprint(state)
        current = self._published
        reusable = (
            current is not None
            and current.fingerprint == fingerprint
            and current.manifest.model_pickle is None
        )
        if reusable:
            return current  # type: ignore[return-value]
        published = publish_state(state)
        try:
            for task_queue in self._task_queues:
                task_queue.put(("state", published.manifest))
            deadline = time.monotonic() + STATE_ATTACH_TIMEOUT
            acknowledged = 0
            while acknowledged < self.workers:
                message = self._next_message(deadline, waiting_for="state attach")
                if message[0] == "ready":
                    acknowledged += 1
                elif message[0] == "error":
                    raise EngineWorkerError(
                        f"worker failed to attach shared state:\n{message[2]}"
                    )
        except BaseException:
            published.close()
            raise
        if current is not None:
            current.close()
        self._published = published
        self.states_published += 1
        get_registry().counter(
            "repro_engine_state_publish_total",
            "Evaluation states published into shared memory",
            labels=("pool",),
        ).inc(pool=self.label)
        return published

    # ------------------------------------------------------------------
    # Run execution
    # ------------------------------------------------------------------
    def run_tasks(
        self,
        state: "EvaluationState",
        tasks: Sequence["ChunkTask"],
        timeout: float | None = None,
    ) -> list[tuple[np.ndarray, int]]:
        """Score ``tasks`` against ``state``; results in schedule order.

        Returns one ``(ranks, entities_scored)`` pair per task.  Any
        failure — worker crash, worker-side exception, timeout, or an
        interrupt of the caller — marks the pool broken and shuts it
        down before re-raising, so shared segments never leak.
        """
        with self._lock:
            if self.closed or self.broken:
                raise EngineWorkerError("worker pool is no longer usable")
            try:
                published = self.ensure_state(state)
                manifest = published.manifest
                group_starts = group_offsets(
                    [length for _, _, length in manifest.groups]
                )
                for index, task in enumerate(tasks):
                    offset = int(group_starts[task.group] + task.start)
                    self._task_queues[index % self.workers].put(
                        ("task", manifest.state_id, index, task, offset)
                    )
                deadline = time.monotonic() + timeout if timeout is not None else None
                scored: dict[int, int] = {}
                while len(scored) < len(tasks):
                    message = self._next_message(deadline, waiting_for="chunk results")
                    if message[0] == "done":
                        scored[message[1]] = message[2]
                    elif message[0] == "error":
                        raise EngineWorkerError(
                            f"engine worker failed on chunk {message[1]}:\n{message[2]}"
                        )
                buffer = published.result_view
                results: list[tuple[np.ndarray, int]] = []
                for index, task in enumerate(tasks):
                    offset = int(group_starts[task.group] + task.start)
                    ranks = buffer[offset : offset + task.num_queries].copy()
                    results.append((ranks, scored[index]))
            except BaseException:
                self._mark_broken()
                raise
            self.runs_completed += 1
            registry = get_registry()
            registry.counter(
                "repro_engine_pool_runs_total",
                "Evaluation runs executed by persistent engine pools",
                labels=("pool",),
            ).inc(pool=self.label)
            registry.gauge(
                "repro_engine_pool_uptime_seconds",
                "Age of each persistent engine pool at its last run",
                labels=("pool",),
            ).set(round(time.time() - self.started_at, 3), pool=self.label)
            return results

    def _next_message(self, deadline: float | None, waiting_for: str):
        """One result-queue message, guarded by liveness and the deadline."""
        while True:
            try:
                return self._result_queue.get(timeout=POLL_INTERVAL)
            except queue_module.Empty:
                dead = [
                    (process.name, process.exitcode)
                    for process in self._processes
                    if not process.is_alive()
                ]
                if dead:
                    raise EngineWorkerError(
                        f"engine worker process(es) died while {waiting_for}: "
                        + ", ".join(f"{name} (exit {code})" for name, code in dead)
                    ) from None
                if deadline is not None and time.monotonic() > deadline:
                    raise EngineWorkerError(
                        f"timed out while {waiting_for} "
                        f"(pool {self.label}, timeout exceeded)"
                    ) from None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _mark_broken(self) -> None:
        self.broken = True
        self.shutdown(force=True)

    def shutdown(self, force: bool = False, join_timeout: float = 2.0) -> None:
        """Stop workers, release queues, unlink shared segments (idempotent)."""
        if self.closed:
            return
        self.closed = True
        if not force:
            for task_queue in self._task_queues:
                try:
                    task_queue.put(("stop",))
                except (ValueError, OSError):  # pragma: no cover — queue gone
                    pass
            for process in self._processes:
                process.join(timeout=join_timeout)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=join_timeout)
        for q in (*self._task_queues, self._result_queue):
            q.cancel_join_thread()
            q.close()
        if self._published is not None:
            self._published.close()
            self._published = None
        self._workers_gauge().set(0, pool=self.label)

    def __repr__(self) -> str:
        status = "closed" if self.closed else ("broken" if self.broken else "live")
        return (
            f"PersistentWorkerPool(workers={self.workers}, "
            f"start_method={self.start_method!r}, {status}, "
            f"runs={self.runs_completed})"
        )


# ----------------------------------------------------------------------
# Module-level pool registry: one pool per (workers, start method)
# ----------------------------------------------------------------------
_POOLS: dict[tuple[int, str], PersistentWorkerPool] = {}
_POOLS_LOCK = threading.Lock()


def get_engine_pool(
    workers: int, start_method: str | None = None
) -> PersistentWorkerPool:
    """The shared persistent pool for ``(workers, start_method)``.

    Pools persist across engine runs (that is the point); a pool found
    broken or dead is disposed of and rebuilt transparently.
    """
    method = resolve_start_method(start_method)
    key = (workers, method)
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is not None and not pool.alive():
            pool.shutdown(force=True)
            pool = None
        if pool is None:
            pool = PersistentWorkerPool(workers, start_method=method)
            _POOLS[key] = pool
        return pool


def active_pools() -> list[PersistentWorkerPool]:
    """Every registry pool that is currently usable."""
    with _POOLS_LOCK:
        return [pool for pool in _POOLS.values() if pool.alive()]


def shutdown_engine_pools() -> None:
    """Stop every registry pool and unlink its shared memory."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_engine_pools)
