"""repro — reproduction of "Are We Wasting Time? A Fast, Accurate
Performance Evaluation Framework for Knowledge Graph Link Predictors"
(Cornell et al., ICDE 2025).

Subpackages
-----------
``repro.kg``            knowledge-graph data model
``repro.datasets``      typed synthetic dataset generator + zoo
``repro.models``        numpy KGE models and trainer
``repro.recommenders``  relation recommenders (L-WD, PT, DBH, OntoSim, PIE)
``repro.core``          the evaluation framework (the paper's contribution)
``repro.engine``        parallel chunked evaluation engine (workers/chunks)
``repro.kp``            Knowledge Persistence baseline
``repro.metrics``       ranking + agreement metrics
``repro.bench``         experiment drivers for every paper table/figure
``repro.store``         persistent experiment store: artifact cache + run journal
``repro.serve``         online link-prediction serving (micro-batched HTTP API)
``repro.experiment``    declarative experiment specs + orchestrator (``repro run``)
"""

__version__ = "1.0.0"
