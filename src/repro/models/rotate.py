"""RotatE (Sun et al., 2019): relations as rotations in the complex plane.

Entities are complex vectors (``2 * dim`` reals); relations are ``dim``
phases.  ``score(h, r, t) = -sum_d |h_d * e^{i theta_d} - t_d|`` — the
negative L1 norm of complex moduli, so higher is better.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import (
    Tensor,
    cos,
    gather,
    gather_cols,
    mul,
    neg,
    sin,
    sqrt,
    square,
    sub,
    sum_,
)
from repro.kg.graph import HEAD, Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


class RotatE(KGEModel):
    """RotatE with phase-parameterised unit-modulus relation embeddings."""

    name = "rotate"

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, 2 * self.dim))
        )
        self.phase = self._add_parameter(
            "phase", rng.uniform(-np.pi, np.pi, size=(self.num_relations, self.dim))
        )

    def _gather_complex(self, ids: Array) -> tuple[Tensor, Tensor]:
        rows = gather(self.entity, ids)
        re = gather_cols(rows, np.arange(self.dim))
        im = gather_cols(rows, np.arange(self.dim, 2 * self.dim))
        return re, im

    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        h_re, h_im = self._gather_complex(check_ids(heads, self.num_entities, "head"))
        t_re, t_im = self._gather_complex(check_ids(tails, self.num_entities, "tail"))
        theta = gather(self.phase, check_ids(relations, self.num_relations, "relation"))
        r_re, r_im = cos(theta), sin(theta)
        rot_re = sub(mul(h_re, r_re), mul(h_im, r_im))
        rot_im = mul(h_re, r_im) + mul(h_im, r_re)
        d_re = sub(rot_re, t_re)
        d_im = sub(rot_im, t_im)
        modulus = sqrt(square(d_re) + square(d_im))
        return neg(sum_(modulus, axis=-1))

    def _split_entities(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return rows[..., : self.dim], rows[..., self.dim :]

    def _scores_numpy(self, anchor: int, relation: int, side: Side, rows: np.ndarray) -> Array:
        theta = self.phase.data[relation]
        r_re, r_im = np.cos(theta), np.sin(theta)
        a_re, a_im = self.entity.data[anchor, : self.dim], self.entity.data[anchor, self.dim :]
        e_re, e_im = self._split_entities(rows)
        if side == HEAD:
            # candidate h rotates: |h*r - t_anchor|
            rot_re = e_re * r_re - e_im * r_im
            rot_im = e_re * r_im + e_im * r_re
            d_re = rot_re - a_re
            d_im = rot_im - a_im
        else:
            rot_re = a_re * r_re - a_im * r_im
            rot_im = a_re * r_im + a_im * r_re
            d_re = rot_re - e_re
            d_im = rot_im - e_im
        return -np.sqrt(d_re**2 + d_im**2 + 1e-12).sum(axis=-1)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        return self._scores_numpy(anchor, relation, side, self.entity.data)

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        return self._scores_numpy(anchor, relation, side, self.entity.data[candidates])

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        rows = self.entity.data if candidates is None else self.entity.data[
            check_ids(candidates, self.num_entities, "candidate")
        ]
        theta = self.phase.data[relation]
        r_re, r_im = np.cos(theta), np.sin(theta)
        a_re, a_im = self._split_entities(self.entity.data[anchors])  # (b, d)
        e_re, e_im = self._split_entities(rows)  # (k, d)
        if side == HEAD:
            # candidate h rotates: |h*r - t_anchor| per (anchor, candidate)
            rot_re = e_re * r_re - e_im * r_im
            rot_im = e_re * r_im + e_im * r_re
            d_re = rot_re[None, :, :] - a_re[:, None, :]
            d_im = rot_im[None, :, :] - a_im[:, None, :]
        else:
            rot_re = a_re * r_re - a_im * r_im
            rot_im = a_re * r_im + a_im * r_re
            d_re = rot_re[:, None, :] - e_re[None, :, :]
            d_im = rot_im[:, None, :] - e_im[None, :, :]
        return -np.sqrt(d_re**2 + d_im**2 + 1e-12).sum(axis=2)
