"""TransE (Bordes et al., 2013): translation scoring ``-||h + r - t||``."""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, abs_, gather, neg, sqrt, square, sub, sum_
from repro.kg.graph import HEAD, Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


class TransE(KGEModel):
    """TransE with L1 (default) or L2 distance.

    The score of ``(h, r, t)`` is ``-||e_h + w_r - e_t||_p``; higher is
    better, consistent with every other model in the library.
    """

    name = "transe"
    extra_init_fields = ("norm",)

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int = 32,
        seed: int = 0,
        dtype: str = "float64",
        norm: int = 1,
    ):
        if norm not in (1, 2):
            raise ValueError(f"TransE norm must be 1 or 2, got {norm}")
        self.norm = norm
        super().__init__(num_entities, num_relations, dim=dim, seed=seed, dtype=dtype)

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, self.dim))
        )
        self.relation = self._add_parameter(
            "relation", xavier_uniform(rng, (self.num_relations, self.dim))
        )

    # ------------------------------------------------------------------
    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        h = gather(self.entity, check_ids(heads, self.num_entities, "head"))
        r = gather(self.relation, check_ids(relations, self.num_relations, "relation"))
        t = gather(self.entity, check_ids(tails, self.num_entities, "tail"))
        diff = sub(h + r, t)
        if self.norm == 1:
            return neg(sum_(abs_(diff), axis=-1))
        return neg(sqrt(sum_(square(diff), axis=-1)))

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        entities = self.entity.data
        r = self.relation.data[relation]
        if side == HEAD:
            # score(e) = -||e + r - t_anchor||
            diff = entities + r - entities[anchor]
        else:
            diff = (entities[anchor] + r) - entities
        if self.norm == 1:
            return -np.abs(diff).sum(axis=1)
        return -np.sqrt((diff**2).sum(axis=1) + 1e-12)

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        cand = self.entity.data[candidates]
        r = self.relation.data[relation]
        if side == HEAD:
            diff = cand + r - self.entity.data[anchor]
        else:
            diff = (self.entity.data[anchor] + r) - cand
        if self.norm == 1:
            return -np.abs(diff).sum(axis=1)
        return -np.sqrt((diff**2).sum(axis=1) + 1e-12)

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        entities = self.entity.data
        cand = entities if candidates is None else entities[check_ids(candidates, self.num_entities, "candidate")]
        r = self.relation.data[relation]
        anchor_emb = entities[anchors]
        if side == HEAD:
            diff = cand[None, :, :] + r - anchor_emb[:, None, :]
        else:
            diff = (anchor_emb + r)[:, None, :] - cand[None, :, :]
        if self.norm == 1:
            return -np.abs(diff).sum(axis=2)
        return -np.sqrt((diff**2).sum(axis=2) + 1e-12)
