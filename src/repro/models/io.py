"""Saving and loading trained KGE models.

Checkpoints are a single ``.npz`` holding every parameter tensor plus the
constructor metadata needed to rebuild the model; loading reconstructs
through :func:`repro.models.build_model` and overwrites the freshly
initialised parameters, so a round-tripped model scores bit-identically.

Out-of-core checkpoints are a *directory* of ``.npy`` shards instead
(:func:`save_sharded` / :func:`open_mmap`): each parameter table lives in
one or more row-split ``.npy`` files that are memory-mapped read-only at
open, so a million-entity embedding table costs pages, not resident
memory, and every process that opens the same shards shares them through
the OS page cache.  The manifest carries per-parameter digests, so the
engine's fingerprint cache can identify a sharded model without ever
paging its bytes in (:func:`repro.engine.shm.state_fingerprint`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.models.base import KGEModel

_META_KEY = "__meta__"

SHARD_FORMAT = "repro-mmap-model"
SHARD_VERSION = 1

#: Gauge tracking bytes of model parameters currently served via mmap
#: shards in this process (documented in docs/observability.md).
MMAP_BYTES_GAUGE = "repro_engine_mmap_bytes"

#: Entity-vocabulary size of the probe model :func:`open_mmap` builds
#: before swapping in the full-size memory-mapped tables.
_PROBE_ENTITIES = 8

#: Rows initialised per block by :func:`init_sharded`.
_INIT_BLOCK_ROWS = 65536


def save_model(model: KGEModel, path: str | os.PathLike[str]) -> None:
    """Write ``model`` to ``path`` as a ``.npz`` checkpoint.

    Only registry models can round-trip (oracle/random scorers derive
    from a graph and have nothing worth persisting).  Model-specific
    constructor kwargs come from the class's
    :attr:`~repro.models.base.KGEModel.extra_init_fields` declaration,
    so a model cannot silently drop them here: new constructor
    parameters fail the signature-coverage test until declared.
    """
    meta = model.init_spec()
    arrays = model.parameter_arrays()
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def build_from_spec(spec: dict) -> KGEModel:
    """Rebuild an untrained model from an :meth:`~repro.models.base.
    KGEModel.init_spec` dict (freshly initialised parameters).

    The shared-memory evaluation transport rebuilds worker-side models
    this way and then swaps in the parent's parameter storage with
    :meth:`~repro.models.base.KGEModel.attach_parameter_arrays`.
    """
    # Imported here to keep repro.models importable before this module.
    from repro.models import build_model

    meta = dict(spec)
    return build_model(
        meta.pop("name"),
        meta.pop("num_entities"),
        meta.pop("num_relations"),
        dim=meta.pop("dim"),
        seed=meta.pop("seed"),
        # Checkpoints written before the dtype knob default to float64,
        # which is exactly what they were trained in.
        dtype=meta.pop("dtype", "float64"),
        **meta,
    )


def _mmap_gauge():
    from repro.obs import get_registry

    return get_registry().gauge(
        MMAP_BYTES_GAUGE,
        "Bytes of model parameters served via mmap shards in this process",
    )


def _digest_array(array: np.ndarray, block_rows: int = 1 << 16) -> str:
    """Blake2b digest of an array's raw bytes, streamed in row blocks.

    Row blocks keep the resident set bounded when the array is a memory
    map — pages are touched once and can be evicted behind the cursor.
    """
    digest = hashlib.blake2b(digest_size=16)
    if array.ndim == 0 or array.shape[0] == 0:
        digest.update(np.ascontiguousarray(array).tobytes())
    else:
        for start in range(0, array.shape[0], block_rows):
            digest.update(
                np.ascontiguousarray(array[start : start + block_rows]).tobytes()
            )
    return digest.hexdigest()


def _manifest_digest(spec: dict, params: dict) -> str:
    digest = hashlib.blake2b(digest_size=16)
    digest.update(json.dumps(spec, sort_keys=True).encode("utf-8"))
    for name in sorted(params):
        digest.update(name.encode("utf-8"))
        digest.update(params[name]["digest"].encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class ShardSource:
    """Where a memory-mapped model's parameters live on disk.

    ``open_mmap`` stamps this onto the returned model as
    ``model.shard_source``; the engine treats its ``digest`` as the
    model's content identity, so state fingerprints and store keys never
    hash the mapped bytes.
    """

    directory: str
    digest: str
    nbytes: int


def save_sharded(
    model: KGEModel,
    directory: str | os.PathLike[str],
    max_shard_bytes: int | None = None,
) -> ShardSource:
    """Write ``model`` as a directory of ``.npy`` parameter shards.

    Each parameter becomes ``<name>.<i>.npy`` files (one by default;
    row-split when ``max_shard_bytes`` caps the file size) plus a
    ``manifest.json`` carrying the model's
    :meth:`~repro.models.base.KGEModel.init_spec`, per-parameter shapes,
    digests and the ``entity_indexed`` flag that tells
    :func:`open_mmap` which tables are allowed to outgrow the probe
    model.  The inverse of :func:`open_mmap`; round-tripped scores are
    bit-identical because the bytes are copied verbatim.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec = model.init_spec()
    params: dict[str, dict] = {}
    total = 0
    for name, array in model.parameter_arrays().items():
        array = np.ascontiguousarray(array)
        rows = int(array.shape[0]) if array.ndim else 1
        row_bytes = max(1, array.nbytes // max(rows, 1))
        per_shard = rows
        if max_shard_bytes is not None and array.ndim >= 1:
            per_shard = max(1, int(max_shard_bytes) // row_bytes)
        shards = []
        if array.ndim == 0 or rows == 0 or per_shard >= rows:
            file = f"{name}.0.npy"
            np.save(directory / file, array)
            shards.append({"file": file, "rows": rows})
        else:
            for index, start in enumerate(range(0, rows, per_shard)):
                block = array[start : start + per_shard]
                file = f"{name}.{index}.npy"
                np.save(directory / file, block)
                shards.append({"file": file, "rows": int(block.shape[0])})
        params[name] = {
            "dtype": array.dtype.name,
            "shape": list(array.shape),
            "entity_indexed": bool(
                array.ndim >= 1 and array.shape[0] == model.num_entities
            ),
            "shards": shards,
            "digest": _digest_array(array),
        }
        total += int(array.nbytes)
    manifest = {
        "format": SHARD_FORMAT,
        "version": SHARD_VERSION,
        "model": spec,
        "params": params,
        "nbytes": total,
        "digest": _manifest_digest(spec, params),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return ShardSource(
        directory=str(directory), digest=manifest["digest"], nbytes=total
    )


def read_shard_manifest(directory: str | os.PathLike[str]) -> dict:
    """Load and validate the manifest of a sharded model directory."""
    path = Path(directory) / "manifest.json"
    manifest = json.loads(path.read_text(encoding="utf-8"))
    if manifest.get("format") != SHARD_FORMAT:
        raise ValueError(f"{path} is not a {SHARD_FORMAT} manifest")
    if int(manifest.get("version", 0)) > SHARD_VERSION:
        raise ValueError(
            f"sharded model version {manifest['version']} is newer than "
            f"supported version {SHARD_VERSION}"
        )
    return manifest


def _joined_shard(directory: Path, name: str, meta: dict) -> np.ndarray:
    """One read-only mmap for a parameter, joining row shards if needed.

    Multi-shard parameters are consolidated once into ``<name>.joined.npy``
    (block-copied through a temp file, then atomically renamed, so a
    crash never leaves a half-written join behind) and the consolidated
    file is reused by later opens.
    """
    shards = meta["shards"]
    shape = tuple(meta["shape"])
    dtype = np.dtype(meta["dtype"])
    if len(shards) == 1:
        array = np.load(directory / shards[0]["file"], mmap_mode="r")
    else:
        joined = directory / f"{name}.joined.npy"
        if not joined.exists():
            tmp = directory / f"{name}.joined.npy.tmp.{os.getpid()}"
            out = np.lib.format.open_memmap(
                tmp, mode="w+", dtype=dtype, shape=shape
            )
            row = 0
            for shard in shards:
                block = np.load(directory / shard["file"], mmap_mode="r")
                out[row : row + block.shape[0]] = block
                row += int(block.shape[0])
            out.flush()
            del out
            os.replace(tmp, joined)
        array = np.load(joined, mmap_mode="r")
    if tuple(array.shape) != shape or array.dtype != dtype:
        raise ValueError(
            f"shard {name!r} in {directory} has {array.shape} {array.dtype}, "
            f"manifest says {shape} {dtype}"
        )
    return array


def open_mmap(directory: str | os.PathLike[str]) -> KGEModel:
    """Open a :func:`save_sharded` directory as a read-only mmap model.

    Builds a *probe* model with a tiny entity vocabulary (so no
    full-size xavier table is ever materialised), swaps in the
    memory-mapped parameter tables with
    :meth:`~repro.models.base.KGEModel.attach_parameter_arrays`
    (``strict=False`` — only manifest-flagged ``entity_indexed`` tables
    may outgrow the probe), and corrects ``num_entities``.  The returned
    model scores bit-identically to its in-memory twin but its parameters
    are read-only file pages; it is an evaluation/serving backend, not a
    trainable model.
    """
    directory = Path(directory)
    manifest = read_shard_manifest(directory)
    spec = dict(manifest["model"])
    num_entities = int(spec["num_entities"])

    arrays: dict[str, np.ndarray] = {}
    for name, meta in manifest["params"].items():
        array = _joined_shard(directory, name, meta)
        if meta["entity_indexed"] and array.shape[0] != num_entities:
            raise ValueError(
                f"entity-indexed parameter {name!r} has {array.shape[0]} rows, "
                f"model has {num_entities} entities"
            )
        arrays[name] = array

    probe_spec = dict(spec)
    probe_spec["num_entities"] = min(num_entities, _PROBE_ENTITIES)
    model = build_from_spec(probe_spec)
    if set(arrays) != set(model.parameters):
        raise ValueError(
            f"sharded parameters {sorted(arrays)} do not match model "
            f"parameters {sorted(model.parameters)}"
        )
    for name, tensor in model.parameters.items():
        meta = manifest["params"][name]
        if not meta["entity_indexed"] and arrays[name].shape != tensor.data.shape:
            raise ValueError(
                f"parameter {name!r} has shape {arrays[name].shape}, "
                f"model expects {tensor.data.shape}"
            )
    model.attach_parameter_arrays(arrays, strict=False)
    model.num_entities = num_entities
    source = ShardSource(
        directory=str(directory),
        digest=manifest["digest"],
        nbytes=int(manifest["nbytes"]),
    )
    model.shard_source = source  # type: ignore[attr-defined]
    _mmap_gauge().inc(source.nbytes)
    return model


def init_sharded(
    name: str,
    num_entities: int,
    num_relations: int,
    directory: str | os.PathLike[str],
    dim: int = 32,
    seed: int = 0,
    dtype: str = "float64",
    block_rows: int = _INIT_BLOCK_ROWS,
    **options,
) -> ShardSource:
    """Initialise a sharded model directory without building the model.

    Entity-indexed tables are written straight into ``.npy`` memory maps
    in ``block_rows`` blocks — peak memory is one block, never the full
    table — with xavier-style uniform draws whose limit is computed from
    the *full* table shape (the limit depends on ``num_entities``, so
    blocks cannot simply reuse the probe's).  One-dimensional
    entity-indexed parameters (per-entity biases) start at zero, matching
    their in-memory initialisation.  Non-entity parameters come verbatim
    from a tiny probe model.

    The weights are valid xavier-scale initialisations but are **not**
    bit-equal to ``build_model(...)`` at the same seed (the draw order
    differs); this entry point exists for benchmarks and smoke tests that
    need a million-entity model without ever materialising one.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    def _probe(entities: int) -> KGEModel:
        return build_from_spec(
            {
                "name": name,
                "num_entities": entities,
                "num_relations": num_relations,
                "dim": dim,
                "seed": seed,
                "dtype": dtype,
                **options,
            }
        )

    probe = _probe(min(num_entities, _PROBE_ENTITIES))
    # Entity-indexed tables are the ones whose first axis tracks the
    # entity count — detected by diffing two probe sizes, so a relation
    # table that merely *coincides* with the probe size is never misflagged.
    sibling = _probe(min(num_entities, _PROBE_ENTITIES) + 1)
    entity_params = {
        param_name
        for param_name, array in probe.parameter_arrays().items()
        if array.ndim >= 1
        and array.shape[:1] != sibling.parameter_arrays()[param_name].shape[:1]
    }
    spec = dict(probe.init_spec())
    spec["num_entities"] = num_entities
    rng = np.random.default_rng(seed)
    params: dict[str, dict] = {}
    total = 0
    for param_name, array in probe.parameter_arrays().items():
        entity_indexed = param_name in entity_params
        file = f"{param_name}.0.npy"
        digest = hashlib.blake2b(digest_size=16)
        if entity_indexed:
            shape = (num_entities,) + array.shape[1:]
            out = np.lib.format.open_memmap(
                directory / file, mode="w+", dtype=array.dtype, shape=shape
            )
            fan_in = shape[0] if len(shape) == 1 else shape[-2]
            limit = np.sqrt(6.0 / (fan_in + shape[-1]))
            for start in range(0, num_entities, block_rows):
                rows = min(block_rows, num_entities - start)
                if len(shape) == 1:
                    block = np.zeros(rows, dtype=array.dtype)
                else:
                    block = rng.uniform(
                        -limit, limit, size=(rows,) + shape[1:]
                    ).astype(array.dtype)
                out[start : start + rows] = block
                digest.update(np.ascontiguousarray(block).tobytes())
            out.flush()
            nbytes = int(out.nbytes)
            del out
        else:
            shape = array.shape
            array = np.ascontiguousarray(array)
            np.save(directory / file, array)
            digest.update(array.tobytes())
            nbytes = int(array.nbytes)
        params[param_name] = {
            "dtype": array.dtype.name,
            "shape": list(shape),
            "entity_indexed": entity_indexed,
            "shards": [{"file": file, "rows": int(shape[0]) if shape else 1}],
            "digest": digest.hexdigest(),
        }
        total += nbytes
    manifest = {
        "format": SHARD_FORMAT,
        "version": SHARD_VERSION,
        "model": spec,
        "params": params,
        "nbytes": total,
        "digest": _manifest_digest(spec, params),
    }
    (directory / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return ShardSource(
        directory=str(directory), digest=manifest["digest"], nbytes=total
    )


def load_model(path: str | os.PathLike[str]) -> KGEModel:
    """Rebuild a model from a :func:`save_model` checkpoint."""
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro model checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        model = build_from_spec(meta)
        for key, tensor in model.parameters.items():
            stored = archive[key]
            if stored.shape != tensor.data.shape:
                raise ValueError(
                    f"checkpoint parameter {key!r} has shape {stored.shape}, "
                    f"model expects {tensor.data.shape}"
                )
            tensor.data[...] = stored
    return model
