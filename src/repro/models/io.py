"""Saving and loading trained KGE models.

Checkpoints are a single ``.npz`` holding every parameter tensor plus the
constructor metadata needed to rebuild the model; loading reconstructs
through :func:`repro.models.build_model` and overwrites the freshly
initialised parameters, so a round-tripped model scores bit-identically.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.models.base import KGEModel

_META_KEY = "__meta__"


def save_model(model: KGEModel, path: str | os.PathLike[str]) -> None:
    """Write ``model`` to ``path`` as a ``.npz`` checkpoint.

    Only registry models can round-trip (oracle/random scorers derive
    from a graph and have nothing worth persisting).  Model-specific
    constructor kwargs come from the class's
    :attr:`~repro.models.base.KGEModel.extra_init_fields` declaration,
    so a model cannot silently drop them here: new constructor
    parameters fail the signature-coverage test until declared.
    """
    meta = model.init_spec()
    arrays = model.parameter_arrays()
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def build_from_spec(spec: dict) -> KGEModel:
    """Rebuild an untrained model from an :meth:`~repro.models.base.
    KGEModel.init_spec` dict (freshly initialised parameters).

    The shared-memory evaluation transport rebuilds worker-side models
    this way and then swaps in the parent's parameter storage with
    :meth:`~repro.models.base.KGEModel.attach_parameter_arrays`.
    """
    # Imported here to keep repro.models importable before this module.
    from repro.models import build_model

    meta = dict(spec)
    return build_model(
        meta.pop("name"),
        meta.pop("num_entities"),
        meta.pop("num_relations"),
        dim=meta.pop("dim"),
        seed=meta.pop("seed"),
        # Checkpoints written before the dtype knob default to float64,
        # which is exactly what they were trained in.
        dtype=meta.pop("dtype", "float64"),
        **meta,
    )


def load_model(path: str | os.PathLike[str]) -> KGEModel:
    """Rebuild a model from a :func:`save_model` checkpoint."""
    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro model checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        model = build_from_spec(meta)
        for key, tensor in model.parameters.items():
            stored = archive[key]
            if stored.shape != tensor.data.shape:
                raise ValueError(
                    f"checkpoint parameter {key!r} has shape {stored.shape}, "
                    f"model expects {tensor.data.shape}"
                )
            tensor.data[...] = stored
    return model
