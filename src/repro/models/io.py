"""Saving and loading trained KGE models.

Checkpoints are a single ``.npz`` holding every parameter tensor plus the
constructor metadata needed to rebuild the model; loading reconstructs
through :func:`repro.models.build_model` and overwrites the freshly
initialised parameters, so a round-tripped model scores bit-identically.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.models.base import KGEModel

_META_KEY = "__meta__"


def save_model(model: KGEModel, path: str | os.PathLike[str]) -> None:
    """Write ``model`` to ``path`` as a ``.npz`` checkpoint.

    Only registry models can round-trip (oracle/random scorers derive
    from a graph and have nothing worth persisting).  Model-specific
    constructor kwargs come from the class's
    :attr:`~repro.models.base.KGEModel.extra_init_fields` declaration,
    so a model cannot silently drop them here: new constructor
    parameters fail the signature-coverage test until declared.
    """
    meta = {
        "name": model.name,
        "num_entities": model.num_entities,
        "num_relations": model.num_relations,
        "dim": model.dim,
        "seed": model.seed,
        "dtype": model.dtype,
    }
    for field in model.extra_init_fields:
        meta[field] = getattr(model, field)
    arrays = {key: tensor.data for key, tensor in model.parameters.items()}
    if _META_KEY in arrays:
        raise ValueError(f"parameter name {_META_KEY!r} is reserved")
    arrays[_META_KEY] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_model(path: str | os.PathLike[str]) -> KGEModel:
    """Rebuild a model from a :func:`save_model` checkpoint."""
    # Imported here to keep repro.models importable before this module.
    from repro.models import build_model

    with np.load(path) as archive:
        if _META_KEY not in archive:
            raise ValueError(f"{path} is not a repro model checkpoint")
        meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
        name = meta.pop("name")
        model = build_model(
            name,
            meta.pop("num_entities"),
            meta.pop("num_relations"),
            dim=meta.pop("dim"),
            seed=meta.pop("seed"),
            # Checkpoints written before the dtype knob default to float64,
            # which is exactly what they were trained in.
            dtype=meta.pop("dtype", "float64"),
            **meta,
        )
        for key, tensor in model.parameters.items():
            stored = archive[key]
            if stored.shape != tensor.data.shape:
                raise ValueError(
                    f"checkpoint parameter {key!r} has shape {stored.shape}, "
                    f"model expects {tensor.data.shape}"
                )
            tensor.data[...] = stored
    return model
