"""RESCAL (Nickel et al., 2011): full bilinear scoring ``h^T W_r t``."""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, einsum, gather, sum_, mul
from repro.kg.graph import HEAD, Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


class RESCAL(KGEModel):
    """RESCAL with a full ``dim x dim`` matrix per relation.

    Quadratic parameter growth in ``dim`` makes RESCAL the heaviest
    factorisation model here; it is included because the paper trains it on
    five datasets and its KP correlations are notably unstable (Table 7).
    """

    name = "rescal"

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, self.dim))
        )
        self.relation = self._add_parameter(
            "relation", xavier_uniform(rng, (self.num_relations, self.dim, self.dim))
        )

    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        h = gather(self.entity, check_ids(heads, self.num_entities, "head"))
        w = gather(self.relation, check_ids(relations, self.num_relations, "relation"))
        t = gather(self.entity, check_ids(tails, self.num_entities, "tail"))
        hw = einsum("bi,bij->bj", h, w)
        return sum_(mul(hw, t), axis=-1)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        w = self.relation.data[relation]
        a = self.entity.data[anchor]
        if side == HEAD:
            # score(h) = h . (W_r t)
            return self.entity.data @ (w @ a)
        # score(t) = (h W_r) . t
        return self.entity.data @ (a @ w)

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        w = self.relation.data[relation]
        a = self.entity.data[anchor]
        query = (w @ a) if side == HEAD else (a @ w)
        return self.entity.data[candidates] @ query

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        entities = self.entity.data
        cand = entities if candidates is None else entities[check_ids(candidates, self.num_entities, "candidate")]
        w = self.relation.data[relation]
        anchor_emb = entities[anchors]
        queries = anchor_emb @ w.T if side == HEAD else anchor_emb @ w
        return queries @ cand.T
