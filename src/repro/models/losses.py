"""Training losses for KGE models.

All losses consume a ``(b,)`` Tensor of positive scores and a ``(b, k)``
Tensor of negative scores (``k`` negatives per positive) and return a
scalar Tensor.  The three standard KGC losses are provided:

* margin ranking (TransE's original objective);
* binary cross-entropy with logits (ConvE, TuckER);
* softplus / logistic loss (ComplEx, DistMult as in Trouillon et al.).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, mean, relu, softplus, sub, sum_

_LOSSES = {}


def register_loss(name: str):
    """Class-free registry decorator for loss functions."""

    def wrap(fn):
        _LOSSES[name] = fn
        return fn

    return wrap


def available_losses() -> list[str]:
    """Registered loss names, sorted."""
    return sorted(_LOSSES)


def get_loss(name: str):
    """Look up a loss function by name."""
    try:
        return _LOSSES[name]
    except KeyError:
        raise KeyError(f"unknown loss {name!r}; available: {', '.join(available_losses())}") from None


def _broadcast_positive(positive: Tensor, negative: Tensor) -> Tensor:
    """Reshape ``(b,)`` positives to ``(b, 1)`` for row-wise comparison."""
    if positive.ndim != 1:
        raise ValueError(f"positive scores must be 1-D, got shape {positive.shape}")
    if negative.ndim != 2 or negative.shape[0] != positive.shape[0]:
        raise ValueError(
            f"negative scores must be (b, k) with b={positive.shape[0]}, got {negative.shape}"
        )
    from repro.autodiff.engine import reshape

    return reshape(positive, (positive.shape[0], 1))


@register_loss("margin")
def margin_ranking_loss(positive: Tensor, negative: Tensor, margin: float = 1.0) -> Tensor:
    """``mean(relu(margin - pos + neg))`` over all (positive, negative) pairs."""
    pos = _broadcast_positive(positive, negative)
    return mean(relu(sub(negative, pos) + margin))


@register_loss("bce")
def bce_loss(positive: Tensor, negative: Tensor, margin: float = 0.0) -> Tensor:
    """Binary cross-entropy with logits: positives toward 1, negatives toward 0.

    ``BCE(x, y=1) = softplus(-x)`` and ``BCE(x, y=0) = softplus(x)``;
    positives and negatives are weighted equally (per-element mean of each
    block), matching the 1-vs-all style training of ConvE/TuckER without
    materialising the all-entities label matrix.
    """
    del margin  # uniform signature across losses
    pos_term = mean(softplus(-positive))
    neg_term = mean(softplus(negative))
    return pos_term + neg_term


@register_loss("softplus")
def softplus_loss(positive: Tensor, negative: Tensor, margin: float = 0.0) -> Tensor:
    """Logistic loss of Trouillon et al.: ``softplus(-y * score)``."""
    del margin
    return mean(softplus(-positive)) + mean(softplus(negative))


def l2_penalty(tensors: list[Tensor], coefficient: float) -> Tensor | None:
    """Optional L2 regulariser over parameter tensors; None when disabled."""
    if coefficient <= 0.0 or not tensors:
        return None
    total: Tensor | None = None
    from repro.autodiff.engine import square

    for tensor in tensors:
        term = sum_(square(tensor))
        total = term if total is None else total + term
    assert total is not None
    return total * coefficient


def loss_value(loss: Tensor | float) -> float:
    """Extract the scalar loss value (guards NaN explosions).

    Accepts an autodiff Tensor or the plain float the fused kernel path
    produces — both training paths share the same divergence guard.
    """
    value = float(loss.data) if isinstance(loss, Tensor) else float(loss)
    if not np.isfinite(value):
        raise FloatingPointError(f"loss diverged to {value}")
    return value
