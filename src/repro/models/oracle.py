"""A synthetic scorer with controllable accuracy — no training required.

The estimator experiments need models whose *true* ranking metrics span a
wide range; training seven KGE models to different quality levels is slow.
:class:`OracleModel` produces scores directly from the graph structure:

* every entity gets i.i.d. Gaussian noise per query, derived from a
  counter-based hash so any subset of candidates can be scored in O(k)
  without materialising the full score vector;
* entities observed on the query's relation-side in training (the
  *hard-negative* pool) get a popularity-weighted ``domain_bonus`` — real
  KGC models rank popular type-compatible entities highest (the "France"
  effect), and that structure is what lets score-guided sampling catch
  almost all competitors early;
* the query's known true answers are re-drawn at the top-competitor level
  plus ``skill``.

Raising ``skill`` moves the true answer above more of the popular
competitors, sweeping the model smoothly from chance-level to
near-perfect MRR.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

from repro.autodiff.engine import Tensor
from repro.kg.graph import KnowledgeGraph, Side
from repro.models.base import Array, KGEModel, check_ids
from repro.models.random_model import _mix

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MULT = np.uint64(0xBF58476D1CE4E5B9)
_OFFSET = np.uint64(0x632BE59BD9B4E019)


def _hash_uniform(keys: np.ndarray, seed: "int | np.ndarray") -> np.ndarray:
    """Deterministic uniform(0, 1) numbers from integer keys (vectorised).

    ``seed`` may be a scalar or an array broadcastable against ``keys``
    (one seed per row scores a whole query batch at once).  SplitMix64-
    style mixing; overflow wrap-around is the point of the construction,
    so the overflow warnings are silenced locally.
    """
    with np.errstate(over="ignore"):
        seed_bits = (
            np.uint64(seed & 0x7FFFFFFFFFFFFFFF)
            if isinstance(seed, (int, np.integer))
            else (np.asarray(seed).astype(np.uint64) & np.uint64(0x7FFFFFFFFFFFFFFF))
        )
        state = (keys.astype(np.uint64) + seed_bits) * _GOLDEN
        state ^= state >> np.uint64(30)
        state = (state + _OFFSET) * _MULT
        state ^= state >> np.uint64(27)
        state *= _MULT
        state ^= state >> np.uint64(31)
    # 53-bit mantissa -> uniform in (0, 1), clamped away from the edges.
    uniform = (state >> np.uint64(11)).astype(np.float64) * (2.0**-53)
    return np.clip(uniform, 1e-12, 1.0 - 1e-12)


def _hash_normal(keys: np.ndarray, seed: int) -> np.ndarray:
    """Deterministic standard-normal numbers from integer keys."""
    return ndtri(_hash_uniform(keys, seed))


class OracleModel(KGEModel):
    """Graph-aware synthetic scorer with a ``skill`` dial.

    Parameters
    ----------
    graph:
        The graph whose filter index and observed domains/ranges define the
        hard-negative pools and true answers.
    skill:
        Mean bonus of true answers over the top of the hard-negative pool.
        ``0`` is chance level among the popular competitors; ``4+`` is
        near-perfect.
    domain_bonus:
        Gap between the hard-negative pool and the easy-negative mass.
    """

    name = "oracle"

    def __init__(
        self,
        graph: KnowledgeGraph,
        skill: float = 2.0,
        domain_bonus: float = 4.0,
        seed: int = 0,
    ):
        self.graph = graph
        self.skill = float(skill)
        self.domain_bonus = float(domain_bonus)
        self._pool_bonus: dict[tuple[int, Side], np.ndarray] = {}
        self._degree_counts: dict[Side, np.ndarray] = {}
        super().__init__(graph.num_entities, graph.num_relations, dim=1, seed=seed)

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self._add_parameter("unused", np.zeros(1))

    # ------------------------------------------------------------------
    def _popularity_bonus(self, relation: int, side: Side) -> np.ndarray:
        """Per-entity pool bonus for one relation-side (cached, |E| floats).

        Pool entities get ``domain_bonus * (0.5 + popularity)`` with
        popularity their observed count normalised by the column maximum;
        everything else gets 0.
        """
        key = (relation, side)
        cached = self._pool_bonus.get(key)
        if cached is not None:
            return cached
        counts = self._degree_counts.get(side)
        if counts is None:
            counts = self.graph.degree_counts(side).astype(np.float64)
            self._degree_counts[side] = counts
        column = counts[:, relation]
        peak = column.max()
        bonus = np.zeros(self.num_entities)
        if peak > 0:
            pool = column > 0
            bonus[pool] = self.domain_bonus * (0.5 + column[pool] / peak)
        self._pool_bonus[key] = bonus
        return bonus

    def _query_seed(self, anchor: int, relation: int, side: Side, salt: int) -> int:
        side_bit = 0 if side == "head" else 1
        return _mix(self.seed, salt, anchor, relation, side_bit)

    def _scores_for(
        self, anchor: int, relation: int, side: Side, candidates: np.ndarray
    ) -> np.ndarray:
        """O(k) scores of ``candidates`` for one query (hash-derived)."""
        noise_seed = self._query_seed(anchor, relation, side, salt=7_919)
        scores = _hash_normal(candidates, noise_seed)
        scores += self._popularity_bonus(relation, side)[candidates]
        truths = self.graph.true_answers(anchor, relation, side)
        if truths.size:
            is_truth = np.isin(candidates, truths)
            if is_truth.any():
                truth_seed = self._query_seed(anchor, relation, side, salt=104_729)
                scores[is_truth] = (
                    _hash_normal(candidates[is_truth], truth_seed)
                    + 1.5 * self.domain_bonus
                    + self.skill
                )
        return scores

    # ------------------------------------------------------------------
    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        heads = check_ids(heads, self.num_entities, "head")
        relations = check_ids(relations, self.num_relations, "relation")
        tails = check_ids(tails, self.num_entities, "tail")
        scores = np.asarray(
            [
                self._scores_for(int(h), int(r), "tail", np.asarray([t]))[0]
                for h, r, t in zip(heads, relations, tails)
            ]
        )
        return Tensor(scores)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        return self._scores_for(
            anchor, relation, side, np.arange(self.num_entities, dtype=np.int64)
        )

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        return self._scores_for(anchor, relation, side, candidates)

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        if candidates is None:
            candidates = np.arange(self.num_entities, dtype=np.int64)
        else:
            candidates = check_ids(candidates, self.num_entities, "candidate")
        noise_seeds = np.asarray(
            [self._query_seed(int(a), relation, side, salt=7_919) for a in anchors]
        )[:, None]
        scores = ndtri(_hash_uniform(candidates[None, :], noise_seeds))
        scores += self._popularity_bonus(relation, side)[candidates][None, :]
        for i, anchor in enumerate(anchors):
            truths = self.graph.true_answers(int(anchor), relation, side)
            if truths.size == 0:
                continue
            is_truth = np.isin(candidates, truths)
            if is_truth.any():
                truth_seed = self._query_seed(int(anchor), relation, side, salt=104_729)
                scores[i, is_truth] = (
                    _hash_normal(candidates[is_truth], truth_seed)
                    + 1.5 * self.domain_bonus
                    + self.skill
                )
        return scores
