"""An untrained scorer producing deterministic pseudo-random scores.

Useful as a sanity floor: every estimator should report chance-level
metrics on it, and any estimator that reports *better* than chance on a
random scorer is leaking information.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor
from repro.kg.graph import Side
from repro.models.base import Array, KGEModel, check_ids


_MASK64 = (1 << 64) - 1


def _mix(*values: int) -> int:
    """SplitMix64-style integer hash of several ids into one seed."""
    state = 0x9E3779B97F4A7C15
    for value in values:
        state ^= (value + 0x632BE59BD9B4E019) & _MASK64
        state = (state * 0xBF58476D1CE4E5B9) & _MASK64
        state ^= state >> 27
    return state & 0x7FFFFFFFFFFFFFFF


class RandomModel(KGEModel):
    """Scores are a deterministic hash of ``(anchor, relation, side, entity)``.

    Consistency is the only contract: the same query always yields the same
    full score vector, so sampled and full evaluation see the same model.
    """

    name = "random"

    def _build_parameters(self, rng: np.random.Generator) -> None:
        # No trainable parameters; keep a scalar so optimizers don't choke
        # if someone passes this model to a trainer by mistake.
        self._add_parameter("unused", np.zeros(1))

    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        heads = check_ids(heads, self.num_entities, "head")
        relations = check_ids(relations, self.num_relations, "relation")
        tails = check_ids(tails, self.num_entities, "tail")
        scores = np.asarray(
            [
                self.score_candidates(int(h), int(r), "tail", np.asarray([t]))[0]
                for h, r, t in zip(heads, relations, tails)
            ]
        )
        return Tensor(scores)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        side_bit = 0 if side == "head" else 1
        rng = np.random.default_rng(_mix(self.seed, anchor, relation, side_bit))
        return rng.standard_normal(self.num_entities)

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        return self.score_all(anchor, relation, side)[candidates]
