"""First-order optimizers over autodiff parameter tensors.

Adam (the paper's training optimizer, Appendix D) and plain SGD.  State is
kept per parameter tensor in the order the model registered them, so an
optimizer is bound to exactly one model's parameter list.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, stack_parameters


class Optimizer:
    """Shared bookkeeping for gradient-based optimizers."""

    def __init__(self, params: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = stack_parameters(params)
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent (optional momentum)."""

    def __init__(self, params: list[Tensor], lr: float = 0.1, momentum: float = 0.0):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += param.grad
                update = velocity
            else:
                update = param.grad
            param.data -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def build_optimizer(name: str, params: list[Tensor], lr: float, **kwargs) -> Optimizer:
    """Factory: ``"adam"`` or ``"sgd"``."""
    name = name.lower()
    if name == "adam":
        return Adam(params, lr=lr, **kwargs)
    if name == "sgd":
        return SGD(params, lr=lr, **kwargs)
    raise KeyError(f"unknown optimizer {name!r}; available: adam, sgd")
