"""First-order optimizers over autodiff parameter tensors.

Adam (the paper's training optimizer, Appendix D), Adagrad and plain SGD.
State is kept per parameter tensor in the order the model registered them,
so an optimizer is bound to exactly one model's parameter list.

Every optimizer exposes two update surfaces:

* :meth:`Optimizer.step` — the classic dense step over ``param.grad``,
  used by the autodiff training path;
* :meth:`Optimizer.step_rows` — sparse row-indexed updates for the fused
  analytic kernels (:mod:`repro.models.kernels`): gradients arrive as
  ``(param, rows, row_grads)`` triples touching only the embedding rows of
  one batch.  Duplicate row indices are accumulated first
  (:func:`coalesce_rows`), then state and parameters are updated for the
  touched rows only.  For stateful optimizers this is the standard *lazy*
  semantics (as in torch's SparseAdam): momentum/second-moment decay is
  applied to a row only when it is touched, so a sparse trajectory matches
  the dense one exactly whenever every row is touched every step, and
  diverges only through stale decay on untouched rows.

Optimizer state always lives in the parameters' dtype, so float32 models
keep float32 moments.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.autodiff.engine import Tensor, stack_parameters

Array = np.ndarray

#: Names accepted by :func:`build_optimizer` (and validated eagerly by
#: :class:`~repro.models.training.TrainingConfig`).
OPTIMIZERS = ("adagrad", "adam", "sgd")

#: One sparse gradient: (parameter tensor, row indices, per-row gradients).
#: Row indices may repeat; ``step_rows`` accumulates duplicates.
RowUpdate = tuple[Tensor, Array, Array]


def coalesce_rows(rows: Array, grads: Array) -> tuple[Array, Array]:
    """Sum gradients of duplicate row indices.

    Returns ``(unique_rows, summed_grads)`` with rows sorted ascending.
    A batch touches the same embedding row many times (every positive
    shares its relation row with its negatives, popular entities recur),
    and applying a stateful update once per *occurrence* instead of once
    per *row* would be wrong — this is the accumulation step that makes
    sparse and dense updates agree.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.ndim != 1 or grads.shape[0] != rows.shape[0]:
        raise ValueError(
            f"rows must be (n,) matching grads' first axis, got {rows.shape} "
            f"vs {grads.shape}"
        )
    unique, inverse = np.unique(rows, return_inverse=True)
    if unique.shape[0] == rows.shape[0]:
        # Already duplicate-free; the sort implied by np.unique suffices.
        return unique, grads[np.argsort(rows, kind="stable")]
    flat = grads.reshape(rows.shape[0], -1)
    # Segment-sum as a sparse matmul: one CSR row per unique index, one
    # column per occurrence.  ~4x faster than the unbuffered np.add.at.
    selector = sparse.csr_matrix(
        (
            np.ones(rows.shape[0], dtype=flat.dtype),
            (inverse, np.arange(rows.shape[0])),
        ),
        shape=(unique.shape[0], rows.shape[0]),
    )
    summed = selector @ flat
    return unique, summed.reshape((unique.shape[0],) + grads.shape[1:])


class Optimizer:
    """Shared bookkeeping for gradient-based optimizers."""

    def __init__(self, params: list[Tensor], lr: float, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if weight_decay < 0.0:
            raise ValueError(f"weight decay must be non-negative, got {weight_decay}")
        self.params = stack_parameters(params)
        self.lr = lr
        self.weight_decay = weight_decay
        self._index = {id(param): i for i, param in enumerate(self.params)}

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def _slot(self, param: Tensor) -> int:
        try:
            return self._index[id(param)]
        except KeyError:
            raise KeyError(
                "step_rows received a tensor this optimizer is not bound to"
            ) from None

    def _decayed(self, param: Tensor, rows: Array, grads: Array) -> Array:
        if self.weight_decay > 0.0:
            return grads + self.weight_decay * param.data[rows]
        return grads

    def step(self) -> None:
        raise NotImplementedError

    def step_rows(self, updates: list[RowUpdate]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Vanilla stochastic gradient descent (optional momentum)."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            if self.momentum > 0.0:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data -= self.lr * update

    def step_rows(self, updates: list[RowUpdate]) -> None:
        for param, rows, grads in updates:
            slot = self._slot(param)
            rows, grads = coalesce_rows(rows, grads)
            if rows.size == 0:
                continue
            grads = self._decayed(param, rows, grads)
            if self.momentum > 0.0:
                velocity = self._velocity[slot]
                rolled = self.momentum * velocity[rows] + grads
                velocity[rows] = rolled
                update = rolled
            else:
                update = grads
            param.data[rows] -= self.lr * update


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014) with bias correction."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-2,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must lie in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step_rows(self, updates: list[RowUpdate]) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, rows, grads in updates:
            slot = self._slot(param)
            rows, grads = coalesce_rows(rows, grads)
            if rows.size == 0:
                continue
            grads = self._decayed(param, rows, grads)
            m, v = self._m[slot], self._v[slot]
            m_rows = self.beta1 * m[rows] + (1.0 - self.beta1) * grads
            v_rows = self.beta2 * v[rows] + (1.0 - self.beta2) * grads * grads
            m[rows] = m_rows
            v[rows] = v_rows
            param.data[rows] -= (
                self.lr * (m_rows / bias1) / (np.sqrt(v_rows / bias2) + self.eps)
            )


class Adagrad(Optimizer):
    """Adagrad (Duchi et al., 2011): per-coordinate adaptive learning rates.

    A natural fit for sparse embedding training — rarely touched rows keep
    large effective learning rates — which is why it ships alongside the
    row-indexed update path.
    """

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 0.1,
        eps: float = 1e-10,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr, weight_decay)
        self.eps = eps
        self._sum_sq = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, sum_sq in zip(self.params, self._sum_sq):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            sum_sq += grad * grad
            param.data -= self.lr * grad / (np.sqrt(sum_sq) + self.eps)

    def step_rows(self, updates: list[RowUpdate]) -> None:
        for param, rows, grads in updates:
            slot = self._slot(param)
            rows, grads = coalesce_rows(rows, grads)
            if rows.size == 0:
                continue
            grads = self._decayed(param, rows, grads)
            sum_sq = self._sum_sq[slot]
            rolled = sum_sq[rows] + grads * grads
            sum_sq[rows] = rolled
            param.data[rows] -= self.lr * grads / (np.sqrt(rolled) + self.eps)


def build_optimizer(name: str, params: list[Tensor], lr: float, **kwargs) -> Optimizer:
    """Factory: ``"adam"``, ``"adagrad"`` or ``"sgd"``."""
    name = name.lower()
    if name == "adam":
        return Adam(params, lr=lr, **kwargs)
    if name == "adagrad":
        return Adagrad(params, lr=lr, **kwargs)
    if name == "sgd":
        return SGD(params, lr=lr, **kwargs)
    raise KeyError(
        f"unknown optimizer {name!r}; available: {', '.join(OPTIMIZERS)}"
    )
