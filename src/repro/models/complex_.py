"""ComplEx (Trouillon et al., 2016): ``Re(<h, r, conj(t)>)`` over C^d.

Complex embeddings are stored as ``2 * dim`` reals per row, the first half
real parts and the second half imaginary parts.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import Tensor, gather, mul, sub, sum_
from repro.kg.graph import HEAD, Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


def _split(data: np.ndarray, dim: int) -> tuple[np.ndarray, np.ndarray]:
    return data[..., :dim], data[..., dim:]


class ComplEx(KGEModel):
    """ComplEx with ``dim`` complex coordinates (``2 * dim`` parameters).

    ``score(h, r, t) = Re(sum_d h_d * r_d * conj(t_d))`` which expands to::

        hr_re . t_re + hr_im . t_im
        where hr_re = h_re*r_re - h_im*r_im and hr_im = h_re*r_im + h_im*r_re

    The asymmetry under conjugation is what lets ComplEx model ordered
    relations DistMult cannot.
    """

    name = "complex"

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, 2 * self.dim))
        )
        self.relation = self._add_parameter(
            "relation", xavier_uniform(rng, (self.num_relations, 2 * self.dim))
        )

    def _gather_split(self, table: Tensor, ids: Array) -> tuple[Tensor, Tensor]:
        from repro.autodiff.engine import gather_cols

        rows = gather(table, ids)
        # rows is (b, 2*dim); split via slicing on a reshape-free path.
        re = gather_cols(rows, np.arange(self.dim)) if rows.ndim == 2 else rows
        im = gather_cols(rows, np.arange(self.dim, 2 * self.dim))
        return re, im

    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        h_re, h_im = self._gather_split(self.entity, check_ids(heads, self.num_entities, "head"))
        r_re, r_im = self._gather_split(
            self.relation, check_ids(relations, self.num_relations, "relation")
        )
        t_re, t_im = self._gather_split(self.entity, check_ids(tails, self.num_entities, "tail"))
        hr_re = sub(mul(h_re, r_re), mul(h_im, r_im))
        hr_im = mul(h_re, r_im) + mul(h_im, r_re)
        return sum_(mul(hr_re, t_re) + mul(hr_im, t_im), axis=-1)

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        e_re, e_im = _split(self.entity.data, self.dim)
        r_re, r_im = _split(self.relation.data[relation], self.dim)
        a_re, a_im = self.entity.data[anchor, : self.dim], self.entity.data[anchor, self.dim :]
        if side == HEAD:
            # score(h) = h_re.(r_re*t_re + r_im*t_im) + h_im.(r_re*t_im - r_im*t_re)
            q_re = r_re * a_re + r_im * a_im
            q_im = r_re * a_im - r_im * a_re
        else:
            # score(t) = t_re.(h_re*r_re - h_im*r_im) + t_im.(h_re*r_im + h_im*r_re)
            q_re = a_re * r_re - a_im * r_im
            q_im = a_re * r_im + a_im * r_re
        return e_re @ q_re + e_im @ q_im

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        rows = self.entity.data[candidates]
        e_re, e_im = _split(rows, self.dim)
        r_re, r_im = _split(self.relation.data[relation], self.dim)
        a_re, a_im = self.entity.data[anchor, : self.dim], self.entity.data[anchor, self.dim :]
        if side == HEAD:
            q_re = r_re * a_re + r_im * a_im
            q_im = r_re * a_im - r_im * a_re
        else:
            q_re = a_re * r_re - a_im * r_im
            q_im = a_re * r_im + a_im * r_re
        return e_re @ q_re + e_im @ q_im

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        rows = self.entity.data if candidates is None else self.entity.data[
            check_ids(candidates, self.num_entities, "candidate")
        ]
        e_re, e_im = _split(rows, self.dim)
        r_re, r_im = _split(self.relation.data[relation], self.dim)
        a_re, a_im = _split(self.entity.data[anchors], self.dim)
        if side == HEAD:
            q_re = r_re * a_re + r_im * a_im
            q_im = r_re * a_im - r_im * a_re
        else:
            q_re = a_re * r_re - a_im * r_im
            q_im = a_re * r_im + a_im * r_re
        return q_re @ e_re.T + q_im @ e_im.T
