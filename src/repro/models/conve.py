"""ConvE (Dettmers et al., 2018): 2-D convolution over stacked embeddings.

The head and relation embeddings are reshaped into two stacked 2-D maps,
convolved with ``num_filters`` learned ``k x k`` kernels (valid padding),
passed through ReLU, projected back to entity space and scored against the
tail embedding plus a per-entity bias.

Two implementation notes:

* The convolution is expressed as im2col (a constant-index
  :func:`~repro.autodiff.engine.gather_cols`) followed by an einsum with
  the filter bank, which is exact and keeps the autodiff operator set tiny.
* Like LibKGE's ConvE, the model uses **reciprocal relations**: the
  relation table holds ``2 * |R|`` rows and a head query ``(?, r, t)`` is
  scored as the tail query ``(t, r + |R|, ?)``.  The trainer augments
  batches with inverse triples when it sees :attr:`inverse_offset`.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.engine import (
    Tensor,
    concat,
    einsum,
    gather,
    gather_cols,
    mul,
    relu,
    reshape,
    sum_,
)
from repro.kg.graph import HEAD, Side
from repro.models.base import Array, KGEModel, check_ids, xavier_uniform


def _im2col_indices(height: int, width: int, kernel: int) -> np.ndarray:
    """``(P, kernel*kernel)`` flat indices of valid conv patches."""
    out_h = height - kernel + 1
    out_w = width - kernel + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} too large for {height}x{width} input"
        )
    patches = np.empty((out_h * out_w, kernel * kernel), dtype=np.int64)
    position = 0
    for oy in range(out_h):
        for ox in range(out_w):
            offsets = [
                (oy + dy) * width + (ox + dx)
                for dy in range(kernel)
                for dx in range(kernel)
            ]
            patches[position] = offsets
            position += 1
    return patches


def _auto_height(dim: int, kernel: int) -> int:
    """The squarest embedding height whose stacked image fits the kernel.

    The image is ``(2 * height) x (dim / height)``; both sides must be at
    least ``kernel`` for a valid convolution to exist.
    """
    best = None
    for height in range(1, dim + 1):
        if dim % height:
            continue
        width = dim // height
        if 2 * height < kernel or width < kernel:
            continue
        squareness = abs(2 * height - width)
        if best is None or squareness < best[0]:
            best = (squareness, height)
    if best is None:
        raise ValueError(f"no embedding height fits kernel {kernel} for dim={dim}")
    return best[1]


class ConvE(KGEModel):
    """ConvE with im2col convolution and reciprocal relations.

    Parameters
    ----------
    embedding_height:
        Number of rows each embedding reshapes into; ``dim`` must be
        divisible by it.  The stacked input image is
        ``(2 * embedding_height) x (dim / embedding_height)``.  When
        omitted, the squarest height whose image fits the kernel is
        chosen automatically.
    num_filters, kernel_size:
        Convolution bank shape.
    """

    name = "conve"
    extra_init_fields = ("embedding_height", "num_filters", "kernel_size")

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int = 32,
        seed: int = 0,
        dtype: str = "float64",
        embedding_height: int | None = None,
        num_filters: int = 8,
        kernel_size: int = 3,
    ):
        if embedding_height is None:
            embedding_height = _auto_height(dim, kernel_size)
        if dim % embedding_height != 0:
            raise ValueError(f"dim={dim} not divisible by embedding_height={embedding_height}")
        self.embedding_height = embedding_height
        self.embedding_width = dim // embedding_height
        self.num_filters = num_filters
        self.kernel_size = kernel_size
        self.image_height = 2 * embedding_height
        self.image_width = self.embedding_width
        self._patches = _im2col_indices(self.image_height, self.image_width, kernel_size)
        super().__init__(num_entities, num_relations, dim=dim, seed=seed, dtype=dtype)

    @property
    def inverse_offset(self) -> int:
        """Relation-id offset of the reciprocal direction."""
        return self.num_relations

    def _build_parameters(self, rng: np.random.Generator) -> None:
        self.entity = self._add_parameter(
            "entity", xavier_uniform(rng, (self.num_entities, self.dim))
        )
        self.relation = self._add_parameter(
            "relation", xavier_uniform(rng, (2 * self.num_relations, self.dim))
        )
        self.filters = self._add_parameter(
            "filters",
            xavier_uniform(rng, (self.num_filters, self.kernel_size**2)),
        )
        hidden = self._patches.shape[0] * self.num_filters
        self.fc = self._add_parameter("fc", xavier_uniform(rng, (hidden, self.dim)))
        self.bias = self._add_parameter("bias", np.zeros(self.num_entities))

    # ------------------------------------------------------------------
    # Shared forward pass
    # ------------------------------------------------------------------
    def _features(self, head_ids: Array, relation_ids: Array) -> Tensor:
        """Differentiable ``(b, dim)`` feature vectors for (head, relation)."""
        h = gather(self.entity, head_ids)
        r = gather(self.relation, relation_ids)
        image = concat([h, r], axis=-1)  # (b, 2*dim) == flattened stacked image
        patches = gather_cols(image, self._patches)  # (b, P, k*k)
        conv = relu(einsum("bpk,fk->bpf", patches, self.filters))
        flat = reshape(conv, (conv.shape[0], -1))
        return relu(einsum("bm,md->bd", flat, self.fc))

    def _features_numpy(self, head_id: int, relation_id: int) -> np.ndarray:
        """Inference-path feature vector for one (head, relation) pair."""
        image = np.concatenate(
            [self.entity.data[head_id], self.relation.data[relation_id]]
        )
        patches = image[self._patches]  # (P, k*k)
        conv = np.maximum(patches @ self.filters.data.T, 0.0)  # (P, F)
        flat = conv.reshape(-1)
        return np.maximum(flat @ self.fc.data, 0.0)

    # ------------------------------------------------------------------
    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        head_ids = check_ids(heads, self.num_entities, "head")
        relation_ids = check_ids(relations, 2 * self.num_relations, "relation")
        tail_ids = check_ids(tails, self.num_entities, "tail")
        features = self._features(head_ids, relation_ids)
        t = gather(self.entity, tail_ids)
        b = gather(self.bias, tail_ids)
        return sum_(mul(features, t), axis=-1) + b

    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        relation_id = relation + self.inverse_offset if side == HEAD else relation
        features = self._features_numpy(anchor, relation_id)
        return self.entity.data @ features + self.bias.data

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        candidates = check_ids(candidates, self.num_entities, "candidate")
        relation_id = relation + self.inverse_offset if side == HEAD else relation
        features = self._features_numpy(anchor, relation_id)
        return self.entity.data[candidates] @ features + self.bias.data[candidates]

    def score_candidates_batch(
        self, anchors: Array, relation: int, side: Side, candidates: Array | None = None
    ) -> Array:
        anchors = check_ids(anchors, self.num_entities, "anchor")
        relation_id = relation + self.inverse_offset if side == HEAD else relation
        relation_rows = np.broadcast_to(
            self.relation.data[relation_id], (anchors.shape[0], self.dim)
        )
        images = np.concatenate([self.entity.data[anchors], relation_rows], axis=1)
        patches = images[:, self._patches]  # (b, P, k*k)
        conv = np.maximum(patches @ self.filters.data.T, 0.0)  # (b, P, F)
        flat = conv.reshape(anchors.shape[0], -1)
        features = np.maximum(flat @ self.fc.data, 0.0)  # (b, dim)
        if candidates is None:
            return features @ self.entity.data.T + self.bias.data
        candidates = check_ids(candidates, self.num_entities, "candidate")
        return features @ self.entity.data[candidates].T + self.bias.data[candidates]
