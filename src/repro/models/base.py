"""The KGE model interface every component of the framework scores through.

A :class:`KGEModel` owns embedding parameters (as autodiff
:class:`~repro.autodiff.engine.Tensor` leaves) and exposes two scoring
surfaces:

* a *training* surface — :meth:`score_triples` returns a differentiable
  Tensor of scores for a batch of ``(h, r, t)`` triples, so losses can
  backpropagate into the embeddings;
* an *inference* surface — :meth:`score_all` and :meth:`score_candidates`
  return plain numpy arrays computed outside the autodiff graph, because
  evaluation scores millions of candidates and must not build graphs.

Both surfaces must agree: ``score_all(anchor, r, side)[e]`` equals
``score_triples`` of the corresponding triple.  The evaluation framework is
agnostic to everything else about the model, which is the property the
paper's "model-agnostic" claim rests on.
"""

from __future__ import annotations

import abc
from typing import Iterable, Mapping

import numpy as np

from repro.autodiff.engine import Tensor, parameter
from repro.kg.graph import HEAD, Side

Array = np.ndarray

#: Parameter dtypes a model may be built with.  float64 is the substrate
#: default (and the precision the kernel-equivalence tests run at);
#: float32 halves memory traffic for the fused training kernels.
DTYPES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> Array:
    """Xavier/Glorot uniform initialisation used by all embedding tables."""
    fan_in = shape[0] if len(shape) == 1 else shape[-2]
    fan_out = shape[-1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


class KGEModel(abc.ABC):
    """Base class for knowledge-graph embedding models.

    Parameters
    ----------
    num_entities, num_relations:
        Vocabulary sizes of the graph the model embeds.
    dim:
        Embedding dimensionality (interpretation is model-specific; complex
        models use ``dim`` complex numbers stored as ``2 * dim`` reals).
    seed:
        Initialisation seed; two models built with the same arguments are
        bit-identical.
    dtype:
        ``"float64"`` (default) or ``"float32"``.  Initial values are
        always drawn in float64 and then cast, so a float32 model starts
        at the float32 rounding of its float64 twin.
    """

    name: str = "kge"

    #: Constructor kwargs beyond the common four (``num_entities``,
    #: ``num_relations``, ``dim``, ``seed``) that checkpoints must carry.
    #: Subclasses adding constructor parameters MUST list them here (each
    #: must also be an attribute of the built model) or ``save_model``
    #: would silently drop them; ``tests/models/test_model_io.py``
    #: enforces the invariant against every registered constructor.
    extra_init_fields: tuple[str, ...] = ()

    def __init__(
        self,
        num_entities: int,
        num_relations: int,
        dim: int = 32,
        seed: int = 0,
        dtype: str = "float64",
    ):
        if num_entities <= 0 or num_relations <= 0:
            raise ValueError("model needs at least one entity and one relation")
        if dim <= 0:
            raise ValueError(f"embedding dim must be positive, got {dim}")
        if dtype not in DTYPES:
            raise ValueError(
                f"dtype must be one of {sorted(DTYPES)}, got {dtype!r}"
            )
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.dim = dim
        self.seed = seed
        self.dtype = dtype
        self._rng = np.random.default_rng(seed)
        self._params: dict[str, Tensor] = {}
        self.training = False
        self._build_parameters(self._rng)

    # ------------------------------------------------------------------
    # Parameter management
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _build_parameters(self, rng: np.random.Generator) -> None:
        """Create all parameter tensors via :meth:`_add_parameter`."""

    def _add_parameter(self, name: str, data: Array) -> Tensor:
        if name in self._params:
            raise ValueError(f"duplicate parameter {name!r}")
        tensor = parameter(np.asarray(data, dtype=self.np_dtype))
        self._params[name] = tensor
        return tensor

    @property
    def np_dtype(self) -> np.dtype:
        """The numpy dtype all parameter tables are stored in."""
        return DTYPES[self.dtype]

    @property
    def parameters(self) -> Mapping[str, Tensor]:
        """All named parameter tensors."""
        return dict(self._params)

    def parameter_list(self) -> list[Tensor]:
        """Parameters in insertion order (matches optimizer state order)."""
        return list(self._params.values())

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.data.size for p in self._params.values())

    def parameter_arrays(self) -> dict[str, Array]:
        """The raw numpy array behind every parameter tensor (no copy).

        The returned arrays *are* the model's live parameters — mutating
        one mutates the model.  Checkpointing and the shared-memory
        evaluation transport both read parameters through this surface.
        """
        return {name: tensor.data for name, tensor in self._params.items()}

    def attach_parameter_arrays(
        self, arrays: Mapping[str, Array], strict: bool = True
    ) -> None:
        """Replace every parameter's storage with the given arrays, zero-copy.

        Each array must match the existing parameter's shape and dtype
        exactly — this is a storage swap, not a cast — which is what lets
        worker processes back a freshly built model with shared-memory
        views instead of private copies.  Gradients are reset because
        they no longer correspond to the new storage.

        With ``strict=False`` the *first* axis may differ while dtype and
        trailing axes still must match.  This is the out-of-core loader's
        hook (:func:`repro.models.io.open_mmap`): it builds a probe model
        with a tiny entity vocabulary, attaches full-size memory-mapped
        tables, and then corrects ``num_entities`` — the full xavier
        initialisation is never materialised.  Callers own the semantic
        check that only entity-indexed tables actually grow.
        """
        missing = set(self._params) - set(arrays)
        if missing:
            raise KeyError(f"missing parameter arrays: {sorted(missing)}")
        for name, tensor in self._params.items():
            array = arrays[name]
            expected = tensor.data.shape if strict else tensor.data.shape[1:]
            got = array.shape if strict else array.shape[1:]
            if (
                got != expected
                or array.ndim != tensor.data.ndim
                or array.dtype != tensor.data.dtype
            ):
                raise ValueError(
                    f"parameter {name!r} expects {tensor.data.shape} "
                    f"{tensor.data.dtype}, got {array.shape} {array.dtype}"
                )
            tensor.data = array
            tensor.grad = None

    def init_spec(self) -> dict:
        """The constructor metadata needed to rebuild this model.

        Includes the common five arguments plus every declared
        :attr:`extra_init_fields` entry; :func:`repro.models.io.
        build_from_spec` consumes it.  This is also exactly what
        ``save_model`` stamps into checkpoints.
        """
        spec = {
            "name": self.name,
            "num_entities": self.num_entities,
            "num_relations": self.num_relations,
            "dim": self.dim,
            "seed": self.seed,
            "dtype": self.dtype,
        }
        for field in self.extra_init_fields:
            spec[field] = getattr(self, field)
        return spec

    def zero_grad(self) -> None:
        for param in self._params.values():
            param.zero_grad()

    def train_mode(self, training: bool = True) -> "KGEModel":
        """Toggle training mode (enables dropout in models that use it)."""
        self.training = training
        return self

    # ------------------------------------------------------------------
    # Scoring surfaces
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def score_triples(self, heads: Array, relations: Array, tails: Array) -> Tensor:
        """Differentiable scores for a batch of triples (shape ``(b,)``)."""

    @abc.abstractmethod
    def score_all(self, anchor: int, relation: int, side: Side) -> Array:
        """Scores of *every* entity as the missing side of one query.

        ``side == "tail"`` scores all tails of ``(anchor, relation, ?)``;
        ``side == "head"`` scores all heads of ``(?, relation, anchor)``.
        Returns a ``(num_entities,)`` float64 array, no autodiff graph.
        """

    def score_candidates(
        self, anchor: int, relation: int, side: Side, candidates: Array
    ) -> Array:
        """Scores of selected candidate entities for one query.

        The default implementation slices :meth:`score_all`; subclasses
        override it when scoring a small candidate set directly is cheaper
        (all the factorisation models below do).
        """
        return self.score_all(anchor, relation, side)[np.asarray(candidates, dtype=np.int64)]

    def score_candidates_batch(
        self,
        anchors: Array,
        relation: int,
        side: Side,
        candidates: Array | None = None,
    ) -> Array:
        """``(b, k)`` scores for many queries of one (relation, side).

        Row ``i`` holds the scores of ``candidates`` (all entities when
        None) for the query anchored at ``anchors[i]``.  The default loops
        over :meth:`score_candidates`; the factorisation models override
        it with a single matrix product, which is what makes batched
        sampled evaluation fast.  Callers chunk ``anchors`` to bound the
        ``b * k`` intermediate.
        """
        anchors = check_ids(anchors, self.num_entities, "anchor")
        if candidates is None:
            candidates = np.arange(self.num_entities, dtype=np.int64)
        return np.stack(
            [
                self.score_candidates(int(anchor), relation, side, candidates)
                for anchor in anchors
            ]
        )

    def score_triples_numpy(self, heads: Array, relations: Array, tails: Array) -> Array:
        """Inference-path batch triple scores (no graph)."""
        h = np.asarray(heads, dtype=np.int64)
        r = np.asarray(relations, dtype=np.int64)
        t = np.asarray(tails, dtype=np.int64)
        return np.asarray(
            [
                self.score_candidates(int(hi), int(ri), "tail", np.asarray([ti]))[0]
                for hi, ri, ti in zip(h, r, t)
            ]
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def _anchor_triples(
        self, anchor: int, relation: int, side: Side, entities: Array
    ) -> tuple[Array, Array, Array]:
        """Expand one query into arrays of (h, r, t) over ``entities``."""
        entities = np.asarray(entities, dtype=np.int64)
        anchors = np.full(entities.shape, anchor, dtype=np.int64)
        relations = np.full(entities.shape, relation, dtype=np.int64)
        if side == HEAD:
            return entities, relations, anchors
        return anchors, relations, entities

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|E|={self.num_entities}, |R|={self.num_relations}, "
            f"dim={self.dim}, params={self.num_parameters()})"
        )


def check_ids(values: Iterable[int], limit: int, what: str) -> Array:
    """Validate and convert an id array, raising a clear error on overflow."""
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.int64)
    if array.size and (array.min() < 0 or array.max() >= limit):
        raise IndexError(f"{what} ids must lie in [0, {limit}), got range [{array.min()}, {array.max()}]")
    return array
