"""Analytic kernel for TransE: ``score = -||h + r - t||_p``, p in {1, 2}.

L1 gradient: with ``s = sign(h + r - t)``,
``d score / d h = -s``, ``d/d r = -s``, ``d/d t = +s``.

L2 gradient: with ``m = sqrt(sum d^2 + 1e-12)`` (the engine's sqrt
epsilon), ``d score / d d = -d / m`` and the same +-routing as L1.
"""

from __future__ import annotations

import numpy as np

from repro.models.kernels.base import AnalyticKernel, Array, RowGrad


class TransEKernel(AnalyticKernel):
    """Fused TransE scoring: negative translation distance ``-||h + r - t||``."""

    model_name = "transe"

    def score(self, model, heads: Array, relations: Array, tails: Array):
        h = model.entity.data[heads]
        r = model.relation.data[relations]
        t = model.entity.data[tails]
        diff = (h + r) - t
        if model.norm == 1:
            scores = -np.abs(diff).sum(axis=-1)
            cache = (heads, relations, tails, np.sign(diff), None)
        else:
            norm = np.sqrt((diff**2).sum(axis=-1) + 1e-12)
            scores = -norm
            cache = (heads, relations, tails, diff, norm)
        return scores, cache

    def backward(self, model, cache, dscore: Array) -> list[RowGrad]:
        heads, relations, tails, direction, norm = cache
        if norm is not None:  # L2: direction is the raw diff
            direction = direction / norm[:, None]
        g = -dscore[:, None] * direction
        return [
            ("entity", heads, g),
            ("relation", relations, g),
            ("entity", tails, -g),
        ]

    def score_corrupted(self, model, heads, relations, tails, corrupted, corrupt_head):
        h = model.entity.data[heads]
        r = model.relation.data[relations]
        t = model.entity.data[tails]
        candidates = model.entity.data[corrupted]  # (b, k, d)
        tc = np.flatnonzero(~corrupt_head)
        hc = np.flatnonzero(corrupt_head)
        # Tail-corrupt rows: diff = (h + r) - candidate; head-corrupt rows:
        # diff = candidate + (r - t).  ``sign`` is the per-candidate offset
        # added to q: -1 for tail candidates, +1 for head candidates.
        q = np.empty_like(h)
        q[tc] = h[tc] + r[tc]
        q[hc] = r[hc] - t[hc]
        sign = np.where(corrupt_head, 1.0, -1.0).astype(h.dtype)[:, None, None]
        diff_pos = np.empty_like(h)
        diff_pos[tc] = q[tc] - t[tc]
        diff_pos[hc] = h[hc] + q[hc]
        diff_neg = q[:, None, :] + sign * candidates
        if model.norm == 1:
            positive = -np.abs(diff_pos).sum(axis=-1)
            negative = -np.abs(diff_neg).sum(axis=-1)
            dir_pos, dir_neg = np.sign(diff_pos), np.sign(diff_neg)
        else:
            norm_pos = np.sqrt((diff_pos**2).sum(axis=-1) + 1e-12)
            norm_neg = np.sqrt((diff_neg**2).sum(axis=-1) + 1e-12)
            positive, negative = -norm_pos, -norm_neg
            dir_pos = diff_pos / norm_pos[:, None]
            dir_neg = diff_neg / norm_neg[..., None]
        cache = (heads, relations, tails, corrupted, tc, hc, sign, dir_pos, dir_neg)
        return positive, negative, cache

    def backward_corrupted(self, model, cache, d_pos, d_neg) -> list[RowGrad]:
        heads, relations, tails, corrupted, tc, hc, sign, dir_pos, dir_neg = cache
        g_pos = -d_pos[:, None] * dir_pos  # d loss / d diff_pos
        g_neg = -d_neg[..., None] * dir_neg  # d loss / d diff_neg
        grad_q = g_pos + g_neg.sum(axis=1)
        grad_candidates = sign * g_neg
        grad_h = np.empty_like(dir_pos)
        grad_r = grad_q  # q depends on r with coefficient +1 on both sides
        grad_t = np.empty_like(dir_pos)
        grad_h[tc] = grad_q[tc]
        grad_t[tc] = -g_pos[tc]
        grad_h[hc] = g_pos[hc]
        grad_t[hc] = -grad_q[hc]
        return [
            ("entity", heads, grad_h),
            ("relation", relations, grad_r),
            ("entity", tails, grad_t),
            ("entity", corrupted, grad_candidates),
        ]
