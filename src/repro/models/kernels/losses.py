"""Fused loss-gradient forms of the training losses.

Each function mirrors one loss in :mod:`repro.models.losses` but computes
the loss *value* and its gradients w.r.t. the positive ``(b,)`` and
negative ``(b, k)`` score arrays in one numpy pass — no graph, no Tensor.
The formulas replicate the autodiff ops exactly (same relu mask convention,
same clipped sigmoid, same stable softplus), so float64 gradients agree
with the engine to accumulation-order rounding (~1e-16 relative), far
inside the 1e-9 equivalence bound the kernel tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.models.kernels.base import Array, LossGrad

_FUSED_LOSSES: dict[str, LossGrad] = {}


def register_fused_loss(name: str):
    """Registry decorator keyed by the :mod:`repro.models.losses` name."""

    def wrap(fn: LossGrad) -> LossGrad:
        _FUSED_LOSSES[name] = fn
        return fn

    return wrap


def available_fused_losses() -> list[str]:
    """Names with a fused gradient implementation, sorted."""
    return sorted(_FUSED_LOSSES)


def get_fused_loss(name: str) -> LossGrad | None:
    """The fused gradient for ``name``, or None (caller falls back)."""
    return _FUSED_LOSSES.get(name)


def _sigmoid(x: Array) -> Array:
    # Clipped exactly like repro.autodiff.engine.sigmoid / softplus.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


def _softplus(x: Array) -> Array:
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


@register_fused_loss("margin")
def margin_grad(positive: Array, negative: Array, margin: float = 1.0):
    """``mean(relu(margin - pos + neg))`` and its score gradients."""
    slack = (negative - positive[:, None]) + margin
    mask = slack > 0.0
    n = slack.size
    loss = float(np.where(mask, slack, 0.0).sum() / n)
    d_neg = mask.astype(positive.dtype) / n
    d_pos = -d_neg.sum(axis=1)
    return loss, d_pos, d_neg


@register_fused_loss("bce")
def bce_grad(positive: Array, negative: Array, margin: float = 0.0):
    """Binary cross-entropy with logits (per-block means, as in losses)."""
    del margin
    loss = float(_softplus(-positive).mean() + _softplus(negative).mean())
    d_pos = -_sigmoid(-positive) / positive.shape[0]
    d_neg = _sigmoid(negative) / negative.size
    return loss, d_pos, d_neg


@register_fused_loss("softplus")
def softplus_grad(positive: Array, negative: Array, margin: float = 0.0):
    """Logistic loss of Trouillon et al. — same blocks as ``bce``."""
    return bce_grad(positive, negative)
