"""Fused analytic training kernels for the bilinear/translational family.

The pure-Python autodiff engine is a correctness substrate, not a training
engine: it builds a graph node per op and materialises *dense* gradients
for full embedding tables on every batch.  The kernels here replace that
path for the models whose gradients have closed forms — TransE, DistMult,
ComplEx, RESCAL, RotatE — computing the loss gradient w.r.t. only the
embedding rows a batch touches, in one vectorized numpy pass, with no
graph construction.  Models without a kernel (ConvE, TuckER) train through
the autodiff fallback unchanged.

Dispatch is by :attr:`KGEModel.name` via :func:`get_kernel`; the trainer
takes the fast path automatically whenever both the model's kernel and the
configured loss's fused gradient (:func:`get_fused_loss`) exist, and
``TrainingConfig(use_fused=False)`` (CLI ``--no-fused``) forces the
autodiff path for debugging or A/B timing.

In float64 the analytic gradients match autodiff to ~1e-9 on every
registered (model, loss) pair — asserted by ``tests/models/test_kernels.py``
and re-asserted, together with a >= 4x epoch-throughput floor, by
``benchmarks/bench_training.py``.
"""

from __future__ import annotations

from repro.models.base import KGEModel
from repro.models.kernels.base import (
    AnalyticKernel,
    RowGrad,
    autodiff_gradients,
    fused_gradients,
    fused_step,
)
from repro.models.kernels.complex_ import ComplExKernel
from repro.models.kernels.distmult import DistMultKernel
from repro.models.kernels.losses import (
    available_fused_losses,
    get_fused_loss,
    register_fused_loss,
)
from repro.models.kernels.rescal import RESCALKernel
from repro.models.kernels.rotate import RotatEKernel
from repro.models.kernels.transe import TransEKernel

_KERNELS: dict[str, AnalyticKernel] = {}


def register_kernel(kernel_cls: type[AnalyticKernel]) -> type[AnalyticKernel]:
    """Register (and instantiate) a kernel under its ``model_name``."""
    kernel = kernel_cls()
    if not kernel.model_name:
        raise ValueError(f"{kernel_cls.__name__} must set model_name")
    _KERNELS[kernel.model_name] = kernel
    return kernel_cls


for _cls in (TransEKernel, DistMultKernel, ComplExKernel, RESCALKernel, RotatEKernel):
    register_kernel(_cls)


def available_kernels() -> list[str]:
    """Model names with a registered analytic kernel."""
    return sorted(_KERNELS)


def get_kernel(model: KGEModel | str) -> AnalyticKernel | None:
    """The kernel for a model (or model name), or None -> autodiff fallback.

    A model *instance* must also still score with the registered class's
    ``score_triples`` — a subclass that overrides the scoring rule while
    inheriting the name falls back to autodiff instead of silently
    training with the base model's analytic gradients.
    """
    name = model if isinstance(model, str) else getattr(model, "name", "")
    kernel = _KERNELS.get(name)
    if kernel is None or isinstance(model, str):
        return kernel
    from repro.models import MODEL_REGISTRY  # local import: avoids a cycle

    registered = MODEL_REGISTRY.get(name)
    if (
        registered is not None
        and type(model).score_triples is not registered.score_triples
    ):
        return None
    return kernel


def has_kernel(model: KGEModel | str) -> bool:
    """True when a fused analytic kernel exists for ``model``."""
    return get_kernel(model) is not None


__all__ = [
    "AnalyticKernel",
    "ComplExKernel",
    "DistMultKernel",
    "RESCALKernel",
    "RotatEKernel",
    "RowGrad",
    "TransEKernel",
    "autodiff_gradients",
    "available_fused_losses",
    "available_kernels",
    "fused_gradients",
    "fused_step",
    "get_fused_loss",
    "get_kernel",
    "has_kernel",
    "register_fused_loss",
    "register_kernel",
]
