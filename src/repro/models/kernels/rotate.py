"""Analytic kernel for RotatE: ``score = -sum_d |h_d e^{i theta_d} - t_d|``.

With ``rot = h * e^{i theta}`` (componentwise complex rotation), the
residual ``delta = rot - t`` has modulus ``m = sqrt(delta_re^2 +
delta_im^2 + 1e-12)`` (the engine's sqrt epsilon).  Each modulus pulls
``-delta / m`` back through the rotation::

    d score / d delta      = -delta / m
    d rot / d theta        = i * rot          (rotate by 90 degrees)
    d score / d theta      = (delta_re rot_im - delta_im rot_re) / m
    d score / d h          = conj-rotation of d score / d rot
    d score / d t          = +delta / m
"""

from __future__ import annotations

import numpy as np

from repro.models.kernels.base import AnalyticKernel, Array, RowGrad


class RotatEKernel(AnalyticKernel):
    """Fused RotatE scoring: relation-phase rotation distance in the complex plane."""

    model_name = "rotate"

    def score(self, model, heads: Array, relations: Array, tails: Array):
        d = model.dim
        h = model.entity.data[heads]
        t = model.entity.data[tails]
        theta = model.phase.data[relations]
        h_re, h_im = h[:, :d], h[:, d:]
        t_re, t_im = t[:, :d], t[:, d:]
        c, s = np.cos(theta), np.sin(theta)
        rot_re = h_re * c - h_im * s
        rot_im = h_re * s + h_im * c
        delta_re = rot_re - t_re
        delta_im = rot_im - t_im
        modulus = np.sqrt(delta_re**2 + delta_im**2 + 1e-12)
        scores = -modulus.sum(axis=-1)
        cache = (heads, relations, tails, c, s, rot_re, rot_im, delta_re, delta_im, modulus)
        return scores, cache

    def backward(self, model, cache, dscore: Array) -> list[RowGrad]:
        heads, relations, tails, c, s, rot_re, rot_im, delta_re, delta_im, modulus = cache
        g = dscore[:, None]
        # Upstream-weighted gradient w.r.t. the residual components.
        gd_re = -g * (delta_re / modulus)
        gd_im = -g * (delta_im / modulus)
        grad_h = np.concatenate(
            [gd_re * c + gd_im * s, -gd_re * s + gd_im * c], axis=1
        )
        grad_t = np.concatenate([-gd_re, -gd_im], axis=1)
        grad_theta = gd_im * rot_re - gd_re * rot_im
        return [
            ("entity", heads, grad_h),
            ("phase", relations, grad_theta),
            ("entity", tails, grad_t),
        ]
