"""Analytic kernel for RESCAL: ``score = h^T W_r t``.

The bilinear form's gradients are ``d/d h = W t``, ``d/d t = W^T h`` and
``d/d W = h t^T`` (a rank-one outer product per triple).  The relation
gradient is the heavy one — ``(n, dim, dim)`` — which is exactly why the
sparse row update matters most for RESCAL.
"""

from __future__ import annotations

import numpy as np

from repro.models.kernels.base import AnalyticKernel, Array, RowGrad


class RESCALKernel(AnalyticKernel):
    """Fused RESCAL scoring: the bilinear form ``h^T R t`` per relation matrix."""

    model_name = "rescal"

    def score(self, model, heads: Array, relations: Array, tails: Array):
        h = model.entity.data[heads]
        w = model.relation.data[relations]
        t = model.entity.data[tails]
        hw = np.einsum("bi,bij->bj", h, w)
        scores = (hw * t).sum(axis=-1)
        return scores, (heads, relations, tails, h, w, t, hw)

    def backward(self, model, cache, dscore: Array) -> list[RowGrad]:
        heads, relations, tails, h, w, t, hw = cache
        g = dscore[:, None]
        grad_h = g * np.einsum("bij,bj->bi", w, t)
        grad_w = dscore[:, None, None] * (h[:, :, None] * t[:, None, :])
        grad_t = g * hw
        return [
            ("entity", heads, grad_h),
            ("relation", relations, grad_w),
            ("entity", tails, grad_t),
        ]

    def score_corrupted(self, model, heads, relations, tails, corrupted, corrupt_head):
        h = model.entity.data[heads]
        w = model.relation.data[relations]  # (b, d, d)
        t = model.entity.data[tails]
        candidates = model.entity.data[corrupted]  # (b, k, d)
        tc = np.flatnonzero(~corrupt_head)
        hc = np.flatnonzero(corrupt_head)
        # q is the vector the corrupted side is dotted with: h W for tail
        # candidates, W t for head candidates; `other` is the positive's
        # uncorrupted entity row.
        q = np.empty_like(h)
        q[tc] = np.einsum("bi,bij->bj", h[tc], w[tc])
        q[hc] = np.einsum("bij,bj->bi", w[hc], t[hc])
        other = np.empty_like(h)
        other[tc] = t[tc]
        other[hc] = h[hc]
        positive = (q * other).sum(axis=-1)
        negative = np.einsum("bkd,bd->bk", candidates, q)
        cache = (heads, relations, tails, corrupted, tc, hc, h, w, t, candidates, q, other)
        return positive, negative, cache

    def backward_corrupted(self, model, cache, d_pos, d_neg) -> list[RowGrad]:
        heads, relations, tails, corrupted, tc, hc, h, w, t, candidates, q, other = cache
        grad_q = d_pos[:, None] * other + np.einsum("bk,bkd->bd", d_neg, candidates)
        grad_candidates = d_neg[:, :, None] * q[:, None, :]
        grad_h = np.empty_like(h)
        grad_t = np.empty_like(t)
        grad_w = np.empty_like(w)
        # Tail-corrupt rows: q = h W, so W's gradient is h (x) grad_q.
        grad_h[tc] = np.einsum("bij,bj->bi", w[tc], grad_q[tc])
        grad_w[tc] = h[tc][:, :, None] * grad_q[tc][:, None, :]
        grad_t[tc] = d_pos[tc, None] * q[tc]
        # Head-corrupt rows: q = W t, so W's gradient is grad_q (x) t.
        grad_t[hc] = np.einsum("bij,bi->bj", w[hc], grad_q[hc])
        grad_w[hc] = grad_q[hc][:, :, None] * t[hc][:, None, :]
        grad_h[hc] = d_pos[hc, None] * q[hc]
        return [
            ("entity", heads, grad_h),
            ("relation", relations, grad_w),
            ("entity", tails, grad_t),
            ("entity", corrupted, grad_candidates),
        ]
