"""Analytic kernel for DistMult: ``score = sum_d h_d r_d t_d``.

The trilinear form's gradients are the complementary products:
``d/d h = r * t``, ``d/d r = h * t``, ``d/d t = h * r``.

The structured path exploits the score's linearity in the corrupted side:
all ``k`` corruptions of a positive are dotted against one query vector
``q`` (``h * r`` for tail corruption, ``r * t`` for head corruption —
DistMult is symmetric), and the query's own gradient arrives pre-summed
over the ``k`` negatives.
"""

from __future__ import annotations

import numpy as np

from repro.models.kernels.base import AnalyticKernel, Array, RowGrad


class DistMultKernel(AnalyticKernel):
    """Fused DistMult scoring: the trilinear product ``sum(h * r * t)``."""

    model_name = "distmult"

    def score(self, model, heads: Array, relations: Array, tails: Array):
        h = model.entity.data[heads]
        r = model.relation.data[relations]
        t = model.entity.data[tails]
        hr = h * r
        scores = (hr * t).sum(axis=-1)
        return scores, (heads, relations, tails, h, r, t, hr)

    def backward(self, model, cache, dscore: Array) -> list[RowGrad]:
        heads, relations, tails, h, r, t, hr = cache
        g = dscore[:, None]
        gt = g * t
        return [
            ("entity", heads, gt * r),
            ("relation", relations, gt * h),
            ("entity", tails, g * hr),
        ]

    def score_corrupted(self, model, heads, relations, tails, corrupted, corrupt_head):
        h = model.entity.data[heads]
        r = model.relation.data[relations]
        t = model.entity.data[tails]
        candidates = model.entity.data[corrupted]  # (b, k, d)
        tc = np.flatnonzero(~corrupt_head)
        hc = np.flatnonzero(corrupt_head)
        q = np.empty_like(h)  # the vector every corruption is dotted with
        q[tc] = h[tc] * r[tc]
        q[hc] = r[hc] * t[hc]
        other = np.empty_like(h)  # the positive's uncorrupted entity row
        other[tc] = t[tc]
        other[hc] = h[hc]
        positive = (q * other).sum(axis=-1)
        negative = np.einsum("bkd,bd->bk", candidates, q)
        cache = (heads, relations, tails, corrupted, tc, hc, h, r, t, candidates, q, other)
        return positive, negative, cache

    def backward_corrupted(self, model, cache, d_pos, d_neg) -> list[RowGrad]:
        heads, relations, tails, corrupted, tc, hc, h, r, t, candidates, q, other = cache
        grad_q = d_pos[:, None] * other + np.einsum("bk,bkd->bd", d_neg, candidates)
        grad_other = d_pos[:, None] * q
        grad_candidates = d_neg[:, :, None] * q[:, None, :]
        grad_h = np.empty_like(h)
        grad_r = np.empty_like(r)
        grad_t = np.empty_like(t)
        grad_h[tc] = grad_q[tc] * r[tc]
        grad_r[tc] = grad_q[tc] * h[tc]
        grad_t[tc] = grad_other[tc]
        grad_h[hc] = grad_other[hc]
        grad_r[hc] = grad_q[hc] * t[hc]
        grad_t[hc] = grad_q[hc] * r[hc]
        return [
            ("entity", heads, grad_h),
            ("relation", relations, grad_r),
            ("entity", tails, grad_t),
            ("entity", corrupted, grad_candidates),
        ]
