"""Shared machinery of the analytic training kernels.

An :class:`AnalyticKernel` is a hand-derived fused score+gradient rule for
one model family: ``score`` computes plain-numpy triple scores (no autodiff
graph), ``backward`` turns upstream per-triple score gradients into
*row-indexed* parameter gradients — only the embedding rows a batch
actually touches, never a dense table.  :func:`fused_step` glues a kernel
to a fused loss gradient (:mod:`repro.models.kernels.losses`) into the one
vectorized pass per batch the fast training path runs.

Correctness is enforced by construction rather than trusted:
:func:`autodiff_gradients` replays the same batch through the pure-Python
autodiff engine and :func:`fused_gradients` densifies a kernel's row
gradients, so tests (and ``benchmarks/bench_training.py``) can assert the
two agree to ~1e-9 in float64 for every registered (model, loss) pair.
"""

from __future__ import annotations

import abc
from typing import Callable

import numpy as np

from repro.models.base import KGEModel, check_ids

Array = np.ndarray

#: One kernel gradient contribution: (parameter name, row ids, row grads).
#: Row ids may repeat across and within contributions; accumulation is the
#: consumer's job (``repro.models.optim.coalesce_rows``).
RowGrad = tuple[str, Array, Array]

#: Fused loss gradient: (positive (b,), negative (b, k), margin) ->
#: (loss value, d loss / d positive, d loss / d negative).
LossGrad = Callable[[Array, Array, float], tuple[float, Array, Array]]


class AnalyticKernel(abc.ABC):
    """Fused score+gradient rule for one registered model name.

    Two surfaces:

    * the *generic* pair :meth:`score` / :meth:`backward` handles
      arbitrary flat triple batches — it is the reference the equivalence
      tests drive and the fallback for everything below;
    * the *structured* pair :meth:`score_corrupted` /
      :meth:`backward_corrupted` exploits the negative-sampling shape
      (every negative shares its positive's relation and uncorrupted
      side): kernels that override it score all ``k`` corruptions of a
      positive against one precomputed query vector instead of ``k``
      independent triples, and return the uncorrupted side's gradient as
      one pre-summed row instead of ``k`` duplicate rows.  The default
      implementation flattens to the generic pair.
    """

    #: The :attr:`KGEModel.name` this kernel implements.  Dispatch is by
    #: name, so a subclass overriding ``score_triples`` must re-register
    #: (or clear) its kernel under a new name.
    model_name: str = ""

    @abc.abstractmethod
    def score(
        self, model: KGEModel, heads: Array, relations: Array, tails: Array
    ) -> tuple[Array, object]:
        """``(n,)`` scores plus an opaque cache for :meth:`backward`.

        Must equal ``model.score_triples(...)`` values (same formula, same
        epsilons) — the parity the kernel tests assert.
        """

    @abc.abstractmethod
    def backward(self, model: KGEModel, cache: object, dscore: Array) -> list[RowGrad]:
        """Row gradients of ``sum(dscore * scores)`` w.r.t. the parameters."""

    def score_corrupted(
        self,
        model: KGEModel,
        heads: Array,
        relations: Array,
        tails: Array,
        corrupted: Array,
        corrupt_head: Array,
    ) -> tuple[Array, Array, object]:
        """``(b,)`` positive and ``(b, k)`` negative scores plus a cache.

        ``corrupted[i]`` holds the replacement entities of triple ``i``;
        ``corrupt_head[i]`` says which side they replace.
        """
        b, k = corrupted.shape
        neg_heads = np.where(corrupt_head[:, None], corrupted, heads[:, None])
        neg_tails = np.where(corrupt_head[:, None], tails[:, None], corrupted)
        all_heads = np.concatenate([heads, neg_heads.reshape(-1)])
        all_tails = np.concatenate([tails, neg_tails.reshape(-1)])
        all_relations = np.concatenate(
            [relations, np.repeat(relations, k)]
        )
        scores, cache = self.score(model, all_heads, all_relations, all_tails)
        return scores[:b], scores[b:].reshape(b, k), cache

    def backward_corrupted(
        self, model: KGEModel, cache: object, d_pos: Array, d_neg: Array
    ) -> list[RowGrad]:
        """Row gradients matching :meth:`score_corrupted`'s cache."""
        dscore = np.concatenate([d_pos, d_neg.reshape(-1)])
        return self.backward(model, cache, dscore)


def fused_step(
    model: KGEModel,
    kernel: AnalyticKernel,
    loss_grad: LossGrad,
    heads: Array,
    relations: Array,
    tails: Array,
    corrupted: Array,
    corrupt_head: Array,
    margin: float = 1.0,
) -> tuple[float, dict[str, tuple[Array, Array]]]:
    """One fused forward+backward pass over a batch and its corruptions.

    Positives and negatives are scored in one structured kernel call; the
    fused loss gradient then weights every score, and one backward call
    yields per-parameter ``(rows, grads)`` pairs (duplicate rows are the
    optimizer's to accumulate).  Returns
    ``(loss value, {param name: (rows, grads)})``.
    """
    heads = check_ids(heads, model.num_entities, "head")
    tails = check_ids(tails, model.num_entities, "tail")
    relations = check_ids(relations, model.num_relations, "relation")
    corrupted = check_ids(corrupted, model.num_entities, "corrupted entity")
    positive, negative, cache = kernel.score_corrupted(
        model, heads, relations, tails, corrupted, corrupt_head
    )
    loss, d_pos, d_neg = loss_grad(positive, negative, margin)
    dtype = positive.dtype
    merged: dict[str, tuple[list[Array], list[Array]]] = {}
    contributions = kernel.backward_corrupted(
        model,
        cache,
        d_pos.astype(dtype, copy=False),
        d_neg.astype(dtype, copy=False),
    )
    for name, rows, grads in contributions:
        rows_list, grads_list = merged.setdefault(name, ([], []))
        rows_list.append(rows.reshape(-1))
        grads_list.append(grads.reshape(rows.size, -1))
    return loss, {
        name: (
            np.concatenate(rows_list),
            np.concatenate(grads_list, axis=0).reshape(
                -1, *model.parameters[name].data.shape[1:]
            ),
        )
        for name, (rows_list, grads_list) in merged.items()
    }


# ----------------------------------------------------------------------
# Equivalence helpers (used by tests and benchmarks/bench_training.py)
# ----------------------------------------------------------------------
def _dense_from_rows(
    model: KGEModel, row_grads: dict[str, tuple[Array, Array]]
) -> dict[str, Array]:
    dense = {name: np.zeros_like(p.data) for name, p in model.parameters.items()}
    for name, (rows, grads) in row_grads.items():
        np.add.at(dense[name], rows, grads)
    return dense


def fused_gradients(
    model: KGEModel,
    loss_name: str,
    heads: Array,
    relations: Array,
    tails: Array,
    corrupted: Array,
    corrupt_head: Array,
    margin: float = 1.0,
) -> tuple[float, dict[str, Array]]:
    """The kernel path's gradients (structured entry point), densified."""
    from repro.models.kernels import get_kernel
    from repro.models.kernels.losses import get_fused_loss

    kernel = get_kernel(model)
    if kernel is None:
        raise KeyError(f"no analytic kernel registered for {model.name!r}")
    loss_grad = get_fused_loss(loss_name)
    if loss_grad is None:
        raise KeyError(f"no fused gradient for loss {loss_name!r}")
    loss, row_grads = fused_step(
        model,
        kernel,
        loss_grad,
        heads,
        relations,
        tails,
        corrupted,
        corrupt_head,
        margin=margin,
    )
    return loss, _dense_from_rows(model, row_grads)


def expand_corruptions(
    heads: Array, relations: Array, tails: Array, corrupted: Array, corrupt_head: Array
) -> tuple[Array, Array, Array]:
    """Materialise ``(neg_heads, neg_relations, neg_tails)`` triples."""
    k = corrupted.shape[1]
    neg_heads = np.where(corrupt_head[:, None], corrupted, heads[:, None])
    neg_tails = np.where(corrupt_head[:, None], tails[:, None], corrupted)
    neg_relations = np.repeat(relations[:, None], k, axis=1)
    return neg_heads, neg_relations, neg_tails


def autodiff_gradients(
    model: KGEModel,
    loss_name: str,
    heads: Array,
    relations: Array,
    tails: Array,
    corrupted: Array,
    corrupt_head: Array,
    margin: float = 1.0,
) -> tuple[float, dict[str, Array]]:
    """The reference gradients: the trainer's autodiff fallback, verbatim."""
    from repro.autodiff.engine import reshape
    from repro.models.losses import get_loss

    b, k = corrupted.shape
    neg_heads, neg_relations, neg_tails = expand_corruptions(
        heads, relations, tails, corrupted, corrupt_head
    )
    model.zero_grad()
    positive = model.score_triples(heads, relations, tails)
    negative_flat = model.score_triples(
        neg_heads.reshape(-1), neg_relations.reshape(-1), neg_tails.reshape(-1)
    )
    negative = reshape(negative_flat, (b, k))
    loss = get_loss(loss_name)(positive, negative, margin=margin)
    loss.backward()
    grads = {
        name: (np.zeros_like(p.data) if p.grad is None else p.grad.copy())
        for name, p in model.parameters.items()
    }
    model.zero_grad()
    return float(loss.data), grads
