"""Analytic kernel for ComplEx: ``score = Re(<h, r, conj(t)>)``.

With ``hr_re = h_re r_re - h_im r_im`` and ``hr_im = h_re r_im + h_im r_re``
the score is ``hr_re . t_re + hr_im . t_im``; differentiating the expanded
real form gives::

    d/d h_re = r_re t_re + r_im t_im      d/d h_im = r_re t_im - r_im t_re
    d/d r_re = h_re t_re + h_im t_im      d/d r_im = h_re t_im - h_im t_re
    d/d t_re = hr_re                      d/d t_im = hr_im

Rows store ``[re | im]`` halves concatenated, matching the model layout.
"""

from __future__ import annotations

import numpy as np

from repro.models.kernels.base import AnalyticKernel, Array, RowGrad


class ComplExKernel(AnalyticKernel):
    """Fused ComplEx scoring: Re(<h, r, conj(t)>) over split re/im halves."""

    model_name = "complex"

    def score(self, model, heads: Array, relations: Array, tails: Array):
        d = model.dim
        h = model.entity.data[heads]
        r = model.relation.data[relations]
        t = model.entity.data[tails]
        h_re, h_im = h[:, :d], h[:, d:]
        r_re, r_im = r[:, :d], r[:, d:]
        t_re, t_im = t[:, :d], t[:, d:]
        hr_re = h_re * r_re - h_im * r_im
        hr_im = h_re * r_im + h_im * r_re
        scores = (hr_re * t_re + hr_im * t_im).sum(axis=-1)
        cache = (heads, relations, tails, h_re, h_im, r_re, r_im, t_re, t_im, hr_re, hr_im)
        return scores, cache

    def backward(self, model, cache, dscore: Array) -> list[RowGrad]:
        heads, relations, tails, h_re, h_im, r_re, r_im, t_re, t_im, hr_re, hr_im = cache
        g = dscore[:, None]
        grad_h = np.concatenate(
            [g * (r_re * t_re + r_im * t_im), g * (r_re * t_im - r_im * t_re)], axis=1
        )
        grad_r = np.concatenate(
            [g * (h_re * t_re + h_im * t_im), g * (h_re * t_im - h_im * t_re)], axis=1
        )
        grad_t = np.concatenate([g * hr_re, g * hr_im], axis=1)
        return [
            ("entity", heads, grad_h),
            ("relation", relations, grad_r),
            ("entity", tails, grad_t),
        ]

    def score_corrupted(self, model, heads, relations, tails, corrupted, corrupt_head):
        d = model.dim
        h = model.entity.data[heads]
        r = model.relation.data[relations]
        t = model.entity.data[tails]
        candidates = model.entity.data[corrupted]  # (b, k, 2d)
        h_re, h_im = h[:, :d], h[:, d:]
        r_re, r_im = r[:, :d], r[:, d:]
        t_re, t_im = t[:, :d], t[:, d:]
        tc = np.flatnonzero(~corrupt_head)
        hc = np.flatnonzero(corrupt_head)
        # The score is linear in the corrupted side: candidate . q, with
        # q = h * r for tail candidates and q = conj(r) * t-side form for
        # head candidates (the score_all query vectors).
        q_re = np.empty_like(h_re)
        q_im = np.empty_like(h_im)
        q_re[tc] = h_re[tc] * r_re[tc] - h_im[tc] * r_im[tc]
        q_im[tc] = h_re[tc] * r_im[tc] + h_im[tc] * r_re[tc]
        q_re[hc] = r_re[hc] * t_re[hc] + r_im[hc] * t_im[hc]
        q_im[hc] = r_re[hc] * t_im[hc] - r_im[hc] * t_re[hc]
        other_re = np.empty_like(h_re)
        other_im = np.empty_like(h_im)
        other_re[tc], other_im[tc] = t_re[tc], t_im[tc]
        other_re[hc], other_im[hc] = h_re[hc], h_im[hc]
        positive = (q_re * other_re + q_im * other_im).sum(axis=-1)
        negative = np.einsum("bkd,bd->bk", candidates[:, :, :d], q_re) + np.einsum(
            "bkd,bd->bk", candidates[:, :, d:], q_im
        )
        cache = (
            heads, relations, tails, corrupted, tc, hc,
            h_re, h_im, r_re, r_im, t_re, t_im,
            candidates, q_re, q_im, other_re, other_im,
        )
        return positive, negative, cache

    def backward_corrupted(self, model, cache, d_pos, d_neg) -> list[RowGrad]:
        (
            heads, relations, tails, corrupted, tc, hc,
            h_re, h_im, r_re, r_im, t_re, t_im,
            candidates, q_re, q_im, other_re, other_im,
        ) = cache
        d = q_re.shape[1]
        g = d_pos[:, None]
        gq_re = g * other_re + np.einsum("bk,bkd->bd", d_neg, candidates[:, :, :d])
        gq_im = g * other_im + np.einsum("bk,bkd->bd", d_neg, candidates[:, :, d:])
        grad_candidates = np.concatenate(
            [d_neg[:, :, None] * q_re[:, None, :], d_neg[:, :, None] * q_im[:, None, :]],
            axis=2,
        )
        shape = (q_re.shape[0], 2 * d)
        grad_h = np.empty(shape, dtype=q_re.dtype)
        grad_r = np.empty(shape, dtype=q_re.dtype)
        grad_t = np.empty(shape, dtype=q_re.dtype)
        # Tail-corrupt rows: q = h x r (complex product).
        grad_h[tc, :d] = gq_re[tc] * r_re[tc] + gq_im[tc] * r_im[tc]
        grad_h[tc, d:] = -gq_re[tc] * r_im[tc] + gq_im[tc] * r_re[tc]
        grad_r[tc, :d] = gq_re[tc] * h_re[tc] + gq_im[tc] * h_im[tc]
        grad_r[tc, d:] = -gq_re[tc] * h_im[tc] + gq_im[tc] * h_re[tc]
        grad_t[tc, :d] = g[tc] * q_re[tc]
        grad_t[tc, d:] = g[tc] * q_im[tc]
        # Head-corrupt rows: q_re = r_re t_re + r_im t_im,
        #                    q_im = r_re t_im - r_im t_re.
        grad_r[hc, :d] = gq_re[hc] * t_re[hc] + gq_im[hc] * t_im[hc]
        grad_r[hc, d:] = gq_re[hc] * t_im[hc] - gq_im[hc] * t_re[hc]
        grad_t[hc, :d] = gq_re[hc] * r_re[hc] - gq_im[hc] * r_im[hc]
        grad_t[hc, d:] = gq_re[hc] * r_im[hc] + gq_im[hc] * r_re[hc]
        grad_h[hc, :d] = g[hc] * q_re[hc]
        grad_h[hc, d:] = g[hc] * q_im[hc]
        return [
            ("entity", heads, grad_h),
            ("relation", relations, grad_r),
            ("entity", tails, grad_t),
            ("entity", corrupted, grad_candidates),
        ]
